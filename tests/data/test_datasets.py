"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import ImageTask, SpeechTask, TranslationTask
from repro.data.translation import BOS_ID, EOS_ID, PAD_ID


class TestTranslationTask:
    def test_translation_is_deterministic(self):
        task = TranslationTask()
        src = [5, 10, 20]
        assert task.translate(src) == task.translate(src)

    def test_translation_is_reverse_and_shift(self):
        task = TranslationTask(vocab=64)
        src = [3, 4, 5]
        out = task.translate(src)
        assert len(out) == 3
        # reversal: the first output corresponds to the last input
        assert out[0] == (5 - 3 + 7) % 61 + 3

    def test_keyed_shift_varies_with_first_token(self):
        task = TranslationTask(keyed_shift=True)
        a = task.translate([3, 10, 11])
        b = task.translate([4, 10, 11])
        assert a[:2] != b[:2]

    def test_batch_layout(self):
        task = TranslationTask(seed=1)
        batch = next(task.batches(8, 1))
        assert batch.src.shape[0] == 8
        assert (batch.tgt_in[:, 0] == BOS_ID).all()
        # teacher forcing alignment: tgt_out = content + EOS; tgt_in = BOS
        # + content (the decoder never consumes EOS).
        for row_in, row_out in zip(batch.tgt_in, batch.tgt_out):
            content_len = int((row_out != PAD_ID).sum()) - 1  # minus EOS
            assert row_out[content_len] == EOS_ID
            np.testing.assert_array_equal(row_in[1:content_len + 1],
                                          row_out[:content_len])

    def test_eval_set_is_fixed(self):
        task = TranslationTask(seed=3)
        a = task.eval_set(16)
        b = task.eval_set(16)
        np.testing.assert_array_equal(a.src, b.src)

    def test_eval_disjoint_from_training(self):
        task = TranslationTask(seed=3)
        train = next(task.batches(64, 1))
        eval_batch = task.eval_set(64)
        assert not np.array_equal(train.src[:, :4], eval_batch.src[:, :4])

    def test_strip(self):
        ids = np.array([[5, 6, EOS_ID, PAD_ID], [7, PAD_ID, PAD_ID, PAD_ID]])
        assert TranslationTask.strip(ids) == [[5, 6], [7]]

    def test_vocab_validation(self):
        with pytest.raises(ValueError):
            TranslationTask(vocab=3)


class TestSpeechTask:
    def test_frames_match_transcript_lengths(self):
        task = SpeechTask(seed=2)
        rng = np.random.default_rng(0)
        utterances = task.sample_utterances(4, rng)
        for frames, tokens in utterances:
            assert 2 * len(tokens) <= len(frames) <= 3 * len(tokens)
            assert frames.shape[1] == task.feat_dim

    def test_batch_shapes(self):
        task = SpeechTask(seed=2)
        batch = next(task.batches(6, 1))
        assert batch.frames.shape[0] == 6
        assert batch.tgt_in.shape == batch.tgt_out.shape
        assert len(batch.refs) == 6

    def test_noise_controls_snr(self):
        clean = SpeechTask(noise=0.01, seed=1)
        noisy = SpeechTask(noise=1.0, seed=1)
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        f1, t1 = clean.sample_utterances(1, rng1)[0]
        f2, t2 = noisy.sample_utterances(1, rng2)[0]
        assert t1 == t2  # same token stream under same rng
        # the clean frames sit closer to their prototypes
        d1 = np.linalg.norm(f1[0] - clean._protos[t1[0]])
        d2 = np.linalg.norm(f2[0] - noisy._protos[t2[0]])
        assert d1 < d2

    def test_prototypes_unit_norm(self):
        task = SpeechTask()
        norms = np.linalg.norm(task._protos, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-5)


class TestImageTask:
    def test_batch_shapes_and_types(self):
        task = ImageTask()
        batch = task.sample(10, np.random.default_rng(0))
        assert batch.images.shape == (10, 3, 16, 16)
        assert batch.images.dtype == np.float32
        assert batch.labels.shape == (10,)

    def test_templates_are_smooth_and_normalized(self):
        task = ImageTask()
        t = task._templates
        assert t.shape == (10, 3, 16, 16)
        np.testing.assert_allclose(t.std(axis=(2, 3)), 1.0, atol=1e-4)

    def test_labels_cover_classes(self):
        task = ImageTask()
        batch = task.sample(500, np.random.default_rng(0))
        assert set(batch.labels) == set(range(10))

    def test_noise_scales_variance(self):
        quiet = ImageTask(noise=0.1).sample(50, np.random.default_rng(0))
        loud = ImageTask(noise=5.0).sample(50, np.random.default_rng(0))
        assert loud.images.std() > quiet.images.std() * 2

    def test_eval_set_reproducible(self):
        task = ImageTask(seed=9)
        np.testing.assert_array_equal(task.eval_set(32).images,
                                      task.eval_set(32).images)
