"""Trace spans: ids, recording, the ring, and the disabled path."""

import pytest

from repro.obs import ManualClock, Registry, Tracer, clock, new_trace_id


@pytest.fixture()
def tracer():
    return Tracer(Registry(), max_spans=8)


class TestTraceIds:
    def test_unique_and_prefixed(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        prefixes = {i.split("-")[0] for i in ids}
        assert len(prefixes) == 1   # one process -> one prefix


class TestRecording:
    def test_record_returns_span_and_feeds_histogram(self, tracer):
        span = tracer.record("phase", 1.0, 1.5, trace_id="t1", size=4)
        assert span.duration_s == pytest.approx(0.5)
        assert span.attrs == {"size": 4}
        family = tracer._seconds
        (labels, child), = family.children()
        assert labels == {"name": "phase"}
        assert child.count == 1

    def test_span_context_manager_times_on_obs_clock(self, tracer):
        manual = ManualClock()
        with clock.patched(manual):
            with tracer.span("work", trace_id="t2") as attrs:
                manual.advance(0.25)
                attrs["extra"] = True
        (span,) = tracer.recent()
        assert span.duration_s == pytest.approx(0.25)
        assert span.attrs["extra"] is True
        assert span.trace_id == "t2"

    def test_recent_filters_by_trace_id(self, tracer):
        tracer.record("a", 0.0, 1.0, trace_id="x")
        tracer.record("b", 0.0, 1.0, trace_id="y")
        tracer.record("c", 1.0, 2.0, trace_id="x")
        assert [s.name for s in tracer.recent(trace_id="x")] == ["a", "c"]
        assert [s.name for s in tracer.recent(n=1)] == ["c"]

    def test_ring_is_bounded(self, tracer):
        for i in range(20):
            tracer.record("s", 0.0, 1.0, trace_id=str(i))
        spans = tracer.recent()
        assert len(spans) == 8
        assert spans[-1].trace_id == "19"

    def test_snapshot_json_safe(self, tracer):
        import json
        tracer.record("s", 0.0, 1.0, trace_id="t", n=3)
        json.dumps(tracer.snapshot())


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        registry = Registry(enabled=False)
        tracer = Tracer(registry)
        assert tracer.record("s", 0.0, 1.0) is None
        assert tracer.recent() == []

    def test_bad_max_spans_rejected(self):
        with pytest.raises(ValueError):
            Tracer(Registry(), max_spans=0)
