"""Exposition: Prometheus rendering, JSON, and the validating parser."""

import json
import math

import pytest

from repro.obs import Registry, parse_prometheus, to_json, to_prometheus


@pytest.fixture()
def registry():
    reg = Registry()
    reg.counter("t_requests_total", "Requests.", ("event",)).labels(
        event="ok").inc(3)
    reg.gauge("t_depth", "Queue depth.").set(2)
    h = reg.histogram("t_seconds", "Latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestRender:
    def test_round_trip_through_validator(self, registry):
        families = parse_prometheus(to_prometheus(registry))
        assert families["t_requests_total"]["type"] == "counter"
        assert families["t_seconds"]["type"] == "histogram"
        samples = {(name, tuple(sorted(labels.items()))): value
                   for name, labels, value
                   in families["t_requests_total"]["samples"]}
        assert samples[("t_requests_total", (("event", "ok"),))] == 3.0

    def test_histogram_buckets_cumulative_with_inf(self, registry):
        families = parse_prometheus(to_prometheus(registry))
        buckets = {labels["le"]: value for name, labels, value
                   in families["t_seconds"]["samples"]
                   if name == "t_seconds_bucket"}
        assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 3.0}
        count = [value for name, _, value
                 in families["t_seconds"]["samples"]
                 if name == "t_seconds_count"]
        assert count == [3.0]

    def test_label_values_escaped(self):
        reg = Registry()
        reg.counter("t_total", "help", ("k",)).labels(
            k='a"b\\c\nd').inc()
        families = parse_prometheus(to_prometheus(reg))
        (_, labels, value), = families["t_total"]["samples"]
        assert labels["k"] == 'a"b\\c\nd'
        assert value == 1.0

    def test_json_export_loads(self, registry):
        data = json.loads(to_json(registry))
        assert data["t_depth"]["samples"][0]["value"] == 2.0
        assert data["t_seconds"]["buckets"] == [0.1, 1.0]


class TestParserRejects:
    def test_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            parse_prometheus("orphan_total 1\n")

    def test_malformed_type_line(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus("# TYPE t_total weird\nt_total 1\n")

    def test_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus("# TYPE t_total counter\n"
                             "# TYPE t_total counter\n")

    def test_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus("# TYPE t_total counter\n"
                             "t_total{k=unquoted} 1\n")

    def test_unparseable_sample(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus("# TYPE t_total counter\n"
                             "t_total one\n")

    def test_histogram_missing_inf_bucket(self):
        with pytest.raises(ValueError, match=r"missing \+Inf"):
            parse_prometheus(
                "# TYPE t_seconds histogram\n"
                't_seconds_bucket{le="1"} 1\n'
                "t_seconds_count 1\n")

    def test_histogram_non_cumulative(self):
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus(
                "# TYPE t_seconds histogram\n"
                't_seconds_bucket{le="1"} 5\n'
                't_seconds_bucket{le="+Inf"} 3\n')

    def test_histogram_count_disagrees(self):
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus(
                "# TYPE t_seconds histogram\n"
                't_seconds_bucket{le="1"} 1\n'
                't_seconds_bucket{le="+Inf"} 2\n'
                "t_seconds_count 9\n")

    def test_inf_values_parse(self):
        families = parse_prometheus("# TYPE t_depth gauge\n"
                                    "t_depth +Inf\n")
        (_, _, value), = families["t_depth"]["samples"]
        assert value == math.inf
