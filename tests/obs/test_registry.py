"""Registry semantics: families, labels, threading, the disabled path."""

import threading

import pytest

from repro.obs import (LATENCY_BUCKETS, MetricError, Registry, SIZE_BUCKETS)


@pytest.fixture()
def registry():
    return Registry()


class TestCounter:
    def test_unlabeled_inc(self, registry):
        c = registry.counter("t_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self, registry):
        c = registry.counter("t_total", "help")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labeled_children_independent(self, registry):
        c = registry.counter("t_total", "help", ("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="b").inc(4)
        by_label = {labels["kind"]: child.value
                    for labels, child in c.children()}
        assert by_label == {"a": 1.0, "b": 4.0}

    def test_wrong_labelnames_rejected(self, registry):
        c = registry.counter("t_total", "help", ("kind",))
        with pytest.raises(MetricError):
            c.labels(knd="a")
        with pytest.raises(MetricError):
            c.labels(kind="a", extra="b")

    def test_label_child_is_cached(self, registry):
        c = registry.counter("t_total", "help", ("kind",))
        assert c.labels(kind="a") is c.labels(kind="a")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("t_depth", "help")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value == 7.0

    def test_set_max_is_high_water_mark(self, registry):
        g = registry.gauge("t_peak", "help")
        g.set_max(5)
        g.set_max(3)
        assert g.value == 5.0
        g.set_max(9)
        assert g.value == 9.0


class TestHistogram:
    def test_bucket_assignment_le_semantics(self, registry):
        h = registry.histogram("t_seconds", "help", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(value)
        child = h._default
        # le=1.0 gets 0.5 and 1.0 (upper bounds are inclusive);
        # le=2.0 gets 1.5 and 2.0; +Inf overflow gets 99.0.
        assert child.counts == [2, 2, 1]
        assert child.count == 5
        assert child.sum == pytest.approx(104.0)

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("t_seconds", "help", buckets=())

    def test_non_increasing_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("t_seconds", "help", buckets=(1.0, 1.0))


class TestRegistry:
    def test_idempotent_same_signature(self, registry):
        a = registry.counter("t_total", "help", ("k",))
        b = registry.counter("t_total", "other help", ("k",))
        assert a is b

    def test_conflicting_redeclaration_rejected(self, registry):
        registry.counter("t_total", "help")
        with pytest.raises(MetricError):
            registry.gauge("t_total", "help")
        with pytest.raises(MetricError):
            registry.counter("t_total", "help", ("k",))

    def test_conflicting_histogram_buckets_rejected(self, registry):
        registry.histogram("t_seconds", "help", buckets=LATENCY_BUCKETS)
        with pytest.raises(MetricError):
            registry.histogram("t_seconds", "help", buckets=SIZE_BUCKETS)

    def test_bad_names_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("0bad", "help")
        with pytest.raises(MetricError):
            registry.counter("ok_total", "help", ("0bad",))
        with pytest.raises(MetricError):
            registry.counter("ok_total", "help", ("__reserved",))

    def test_snapshot_is_json_safe(self, registry):
        import json
        registry.counter("t_total", "help", ("k",)).labels(k="x").inc()
        registry.histogram("t_seconds", "help").observe(0.5)
        registry.gauge("t_depth", "help").set(3)
        json.dumps(registry.snapshot())

    def test_reset_zeroes_children(self, registry):
        c = registry.counter("t_total", "help")
        c.inc(5)
        registry.reset()
        assert c.value == 0.0

    def test_collector_runs_on_snapshot(self, registry):
        g = registry.gauge("t_external", "help")
        state = {"n": 7}
        registry.register_collector(lambda _reg: g.set(state["n"]))
        snap = registry.snapshot()
        assert snap["t_external"]["samples"][0]["value"] == 7.0

    def test_raising_collector_is_counted_and_skipped(self, registry):
        def bad(_reg):
            raise RuntimeError("boom")
        registry.register_collector(bad)
        registry.snapshot()   # must not raise
        assert registry.collector_errors == 1


class TestDisabled:
    def test_disabled_registry_mutates_nothing(self):
        registry = Registry(enabled=False)
        c = registry.counter("t_total", "help")
        g = registry.gauge("t_depth", "help")
        h = registry.histogram("t_seconds", "help")
        c.inc(100)
        g.set(5)
        g.set_max(9)
        h.observe(1.0)
        assert c.value == 0.0
        assert g.value == 0.0
        assert h._default.count == 0

    def test_reenable_records_again(self):
        registry = Registry(enabled=False)
        c = registry.counter("t_total", "help")
        c.inc()
        registry.enable()
        c.inc()
        assert c.value == 1.0


class TestConcurrency:
    """Lossless mutation from many threads (the lock-stripe contract)."""

    N_THREADS = 8
    PER_THREAD = 2_000

    def test_counter_increments_lossless(self, registry):
        c = registry.counter("t_total", "help", ("kind",))
        children = [c.labels(kind=str(i % 3)) for i in range(self.N_THREADS)]

        def worker(child):
            for _ in range(self.PER_THREAD):
                child.inc()

        threads = [threading.Thread(target=worker, args=(children[i],))
                   for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(child.value for _, child in c.children())
        assert total == self.N_THREADS * self.PER_THREAD

    def test_histogram_observations_lossless(self, registry):
        h = registry.histogram("t_seconds", "help", buckets=(0.5,))

        def worker():
            for i in range(self.PER_THREAD):
                h.observe(0.25 if i % 2 else 0.75)

        threads = [threading.Thread(target=worker)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        child = h._default
        expected = self.N_THREADS * self.PER_THREAD
        assert child.count == expected
        assert sum(child.counts) == expected
        assert child.counts[0] == expected // 2

    def test_concurrent_family_creation_single_instance(self, registry):
        results = []
        barrier = threading.Barrier(self.N_THREADS)

        def worker():
            barrier.wait()
            results.append(registry.counter("t_total", "help"))

        threads = [threading.Thread(target=worker)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, results))) == 1
