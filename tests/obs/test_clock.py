"""The single clock domain: seam behavior plus the regression guards
that keep serving/resilience timing off raw ``time.monotonic()`` /
``time.perf_counter()`` (whose epochs are unrelated — mixing their
absolute readings in deadline math was the original bug)."""

import ast
import pathlib
import threading

import pytest

from repro.obs import ManualClock, clock

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: Modules whose *absolute* timestamps flow into shared arithmetic
#: (deadlines, flush timing, breaker dwell, scrub durations).  Raw
#: stdlib clock calls are banned here; everything reads
#: ``repro.obs.clock.now()``.
SINGLE_CLOCK_MODULES = [
    SRC / "serve" / "engine.py",
    SRC / "serve" / "resilient.py",
    SRC / "serve" / "stats.py",
    SRC / "serve" / "pool.py",
    SRC / "resilience" / "scrub.py",
    SRC / "resilience" / "campaign.py",
]


class TestManualClock:
    def test_starts_at_zero_and_advances(self):
        manual = ManualClock()
        assert manual() == 0.0
        manual.advance(1.5)
        assert manual() == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-0.1)


class TestSeam:
    def test_patched_swaps_and_restores(self):
        manual = ManualClock()
        manual.advance(42.0)
        before = clock.now()
        with clock.patched(manual):
            assert clock.now() == 42.0
        assert clock.now() >= before

    def test_set_source_rejects_non_callable(self):
        with pytest.raises(TypeError):
            clock.set_source(3.0)

    def test_default_source_is_monotonic(self):
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestSingleClockDomain:
    """Source-scan regression: no raw stdlib clock reads in the modules
    whose timestamps participate in cross-module arithmetic."""

    @pytest.mark.parametrize("path", SINGLE_CLOCK_MODULES,
                             ids=lambda p: p.name)
    def test_no_raw_clock_calls(self, path):
        tree = ast.parse(path.read_text())
        offenders = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                    and func.attr in ("monotonic", "perf_counter", "time",
                                      "monotonic_ns", "perf_counter_ns")):
                offenders.append(f"{path.name}:{node.lineno} "
                                 f"time.{func.attr}()")
        assert not offenders, (
            "raw stdlib clock calls in single-clock-domain modules "
            f"(use repro.obs.clock.now()): {offenders}")


class TestDeadlineArithmetic:
    """Functional proof that deadline/dwell math runs on the one clock."""

    def test_pending_deadline_expires_on_obs_clock(self):
        import numpy as np

        from repro.serve.engine import _Pending
        from repro.serve.batching import Request

        manual = ManualClock()
        with clock.patched(manual):
            pending = _Pending(
                Request("classify", np.zeros((3, 4, 4), dtype="float32")),
                deadline_s=2.0)
            assert pending.t_submit == 0.0
            assert not pending.expired(clock.now())
            manual.advance(1.9)
            assert not pending.expired(clock.now())
            manual.advance(0.2)
            assert pending.expired(clock.now())

    def test_breaker_dwell_on_obs_clock(self):
        from repro.serve.resilient import CircuitBreaker

        manual = ManualClock()
        with clock.patched(manual):
            breaker = CircuitBreaker(threshold=1, reset_s=5.0)
            breaker.record_uncorrectable()
            assert breaker.state == "open"
            assert not breaker.allow()
            manual.advance(4.9)
            assert breaker.state == "open"
            manual.advance(0.2)                 # dwell elapsed on the seam
            assert breaker.state == "half-open"
            assert breaker.allow()
            breaker.record_success()
            assert breaker.state == "closed"

    def test_drain_timeout_on_obs_clock(self):
        """drain(timeout) compares against the same clock _Pending uses;
        with a frozen manual clock a zero in-flight server returns
        immediately and a timed-out wait is computed on the seam."""
        from repro.serve.engine import InferenceServer

        manual = ManualClock()
        with clock.patched(manual):
            server = InferenceServer()
            # No started threads needed: drain() with nothing in flight
            # returns True without waiting, reading only the seam clock.
            assert server.drain(timeout=0.0) is True
            # A fake in-flight count must time out at once: the deadline
            # (now + 0) is already reached on the frozen clock.
            server._inflight = 1

            result = {}

            def waiter():
                result["drained"] = server.drain(timeout=0.0)

            thread = threading.Thread(target=waiter)
            thread.start()
            thread.join(timeout=10.0)
            assert result.get("drained") is False
            server._inflight = 0
