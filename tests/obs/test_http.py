"""Exposition endpoint: scrape /metrics like Prometheus would."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (MetricsServer, PROMETHEUS_CONTENT_TYPE, Registry,
                       parse_prometheus)

#: Families the instrumented packages must register on import — the
#: same names the CI ``obs-smoke`` job asserts on a live scrape.
REQUIRED_FAMILIES = [
    "repro_serve_requests_total",
    "repro_serve_latency_seconds",
    "repro_serve_queue_depth",
    "repro_span_seconds",
    "repro_weight_quant_cache_total",
    "repro_codebook_cache",
    "repro_decode_lut_cache",
    "repro_scrub_passes_total",
]


@pytest.fixture()
def server():
    registry = Registry()
    registry.counter("t_requests_total", "Requests.", ("event",)).labels(
        event="ok").inc(2)
    registry.histogram("t_seconds", "Latency.",
                       buckets=(0.1, 1.0)).observe(0.5)
    srv = MetricsServer(registry)
    yield srv
    srv.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.headers.get("Content-Type"), resp.read().decode()


class TestMetricsServer:
    def test_metrics_parses_as_prometheus(self, server):
        content_type, body = _get(server.url)
        assert content_type == PROMETHEUS_CONTENT_TYPE
        families = parse_prometheus(body)
        assert families["t_requests_total"]["type"] == "counter"
        assert families["t_seconds"]["type"] == "histogram"

    def test_root_serves_prometheus_too(self, server):
        _, body = _get(f"http://{server.host}:{server.port}/")
        assert "# TYPE t_requests_total counter" in body

    def test_metrics_json(self, server):
        content_type, body = _get(
            f"http://{server.host}:{server.port}/metrics.json")
        assert content_type == "application/json"
        data = json.loads(body)
        assert data["t_requests_total"]["samples"][0]["value"] == 2.0

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(f"http://{server.host}:{server.port}/nope")
        assert exc.value.code == 404

    def test_close_is_idempotent_via_context_manager(self):
        with MetricsServer(Registry()) as srv:
            _get(srv.url)
        # closed on __exit__; a fresh scrape must now fail
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(srv.url)


class TestGlobalRegistryExposition:
    def test_required_families_scrapable(self):
        """Importing the instrumented packages registers every family the
        obs-smoke job scrapes for, on the process-global registry."""
        import repro.nn.quantize        # noqa: F401
        import repro.resilience.scrub   # noqa: F401
        import repro.serve.stats        # noqa: F401
        from repro import obs

        with MetricsServer(obs.REGISTRY) as srv:
            _, body = _get(srv.url)
        families = parse_prometheus(body)
        missing = [name for name in REQUIRED_FAMILIES
                   if name not in families]
        assert not missing, f"families absent from scrape: {missing}"
