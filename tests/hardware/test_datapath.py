"""Bit-accurate datapath tests: the PEs must compute what the paper's
quantization algebra says they compute."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import AdaptivFloat, Uniform
from repro.hardware import HFIntVectorMac, IntVectorMac, RequantParams


class TestRequantParams:
    def test_encoding_precision(self):
        for scale in (0.0123, 1.0, 3.7, 1e-4):
            rq = RequantParams.from_scale(scale, 16)
            assert rq.value == pytest.approx(scale, rel=2 ** -14)
            assert rq.multiplier < 2 ** 16

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RequantParams.from_scale(0.0, 16)


class TestIntVectorMac:
    def _quantize(self, x, bits):
        q = Uniform(bits)
        params = q.fit(x)
        levels = np.rint(q.quantize_with_params(x, params) / params["scale"])
        return levels.astype(np.int64), params["scale"]

    def test_matches_float_reference(self):
        rng = np.random.default_rng(0)
        mac = IntVectorMac(bits=8, accum_length=256)
        w = rng.normal(size=(16, 200))
        a = rng.normal(size=200)
        w_lvl, s_w = self._quantize(w, 8)
        a_lvl, s_a = self._quantize(a, 8)
        reference = (w_lvl * s_w) @ (a_lvl * s_a)
        s_out = np.abs(reference).max() / 127
        rq = RequantParams.from_scale(s_w * s_a / s_out, 16)
        out = mac.matvec(w_lvl, a_lvl, rq)
        np.testing.assert_allclose(out * s_out, reference,
                                   atol=s_out * 0.75)  # <= 1 output LSB

    def test_accumulator_width_never_overflows(self):
        """The 2n + log2(H) width (paper Section 5.1) is exactly enough:
        the worst-case sum 256 * 127 * 127 fits without saturation."""
        mac = IntVectorMac(bits=8, accum_length=256)
        w = np.full((1, 256), 127, dtype=np.int64)
        a = np.full(256, 127, dtype=np.int64)
        acc = mac.accumulate(w, a)
        assert acc[0] == 256 * 127 * 127 < 2 ** 23 - 1

    def test_rejects_wide_operands(self):
        mac = IntVectorMac(bits=8)
        with pytest.raises(ValueError):
            mac.accumulate(np.array([[300]]), np.array([1]))

    def test_rejects_long_reduction(self):
        mac = IntVectorMac(bits=8, accum_length=64)
        with pytest.raises(ValueError):
            mac.accumulate(np.zeros((1, 65), dtype=np.int64),
                           np.zeros(65, dtype=np.int64))

    def test_activation_on_integer_grid(self):
        mac = IntVectorMac(bits=8)
        w = np.array([[10, -10], [5, 5]], dtype=np.int64)
        a = np.array([3, 3], dtype=np.int64)
        rq = RequantParams.from_scale(1.0, 16)
        out = mac.matvec(w, a, rq, activation=lambda x: np.maximum(x, 0))
        np.testing.assert_array_equal(out, [0, 30])


class TestHFIntVectorMac:
    def test_width_formula(self):
        assert HFIntVectorMac(bits=8, exp_bits=3).acc_width == 30
        assert HFIntVectorMac(bits=4, exp_bits=3).acc_width == 22

    def test_accumulate_matches_exact_dot(self):
        """Quantized AdaptivFloat dot products are exact in the integer
        accumulator (before output truncation) when no saturation occurs."""
        rng = np.random.default_rng(1)
        mac = HFIntVectorMac(bits=8, exp_bits=3)
        fmt = AdaptivFloat(8, 3)
        w = rng.normal(size=(8, 64)) * 0.5
        a = rng.normal(size=64) * 0.5
        bw = int(fmt.fit(w)["exp_bias"])
        ba = int(fmt.fit(a)["exp_bias"])
        wq = fmt.quantize_with_params(w, {"exp_bias": bw})
        aq = fmt.quantize_with_params(a, {"exp_bias": ba})
        acc = mac.accumulate(fmt.encode(wq, bw), fmt.encode(aq, ba))
        reference = wq @ aq
        unit = 2.0 ** (bw + ba - 2 * mac.mant_bits)
        np.testing.assert_allclose(acc * unit, reference, rtol=1e-12)

    def test_zero_words_contribute_nothing(self):
        mac = HFIntVectorMac(bits=8, exp_bits=3)
        fmt = AdaptivFloat(8, 3)
        w = np.array([[2.0, 0.0]])
        a = np.array([2.0, 2.0])
        acc = mac.accumulate(fmt.encode(w, 0), fmt.encode(a, 0))
        assert acc[0] * 2.0 ** (0 + 0 - 8) == pytest.approx(4.0)

    def test_sacrificed_min_rejected_by_encoder(self):
        # 2**exp_bias would alias the zero codepoint; the encoder must
        # refuse rather than silently emit zero (paper Fig. 2).
        fmt = AdaptivFloat(8, 3)
        with pytest.raises(ValueError):
            fmt.encode(np.array([1.0]), exp_bias=0)

    def test_full_pipeline_close_to_float(self):
        rng = np.random.default_rng(2)
        mac = HFIntVectorMac(bits=8, exp_bits=3)
        fmt = AdaptivFloat(8, 3)
        w = rng.normal(size=(32, 128)) * 0.3
        a = rng.normal(size=128)
        bw = int(fmt.fit(w)["exp_bias"])
        ba = int(fmt.fit(a)["exp_bias"])
        wq = fmt.quantize_with_params(w, {"exp_bias": bw})
        aq = fmt.quantize_with_params(a, {"exp_bias": ba})
        reference = np.tanh(wq @ aq)
        out_bias = int(fmt.fit(reference)["exp_bias"])
        shift = mac.output_shift_for(np.abs(wq @ aq).max(), bw, ba)
        _, values = mac.matvec(fmt.encode(wq, bw), bw, fmt.encode(aq, ba), ba,
                               out_bias, shift, activation=np.tanh)
        # Error budget: one truncation LSB through tanh (slope <= 1) plus
        # one output-quantization step.
        trunc_step = 2.0 ** (bw + ba - 2 * mac.mant_bits + shift)
        _, vmax = fmt.range_for_bias(out_bias)
        out_step = float(vmax) * 2.0 ** -mac.mant_bits
        tol = trunc_step + out_step
        np.testing.assert_allclose(values, reference, atol=tol)

    def test_output_words_decode_to_values(self):
        rng = np.random.default_rng(3)
        mac = HFIntVectorMac(bits=8, exp_bits=3)
        fmt = AdaptivFloat(8, 3)
        w = rng.normal(size=(8, 32)) * 0.2
        a = rng.normal(size=32)
        bw, ba = -8, -7
        wq = fmt.quantize_with_params(w, {"exp_bias": bw})
        aq = fmt.quantize_with_params(a, {"exp_bias": ba})
        words, values = mac.matvec(fmt.encode(wq, bw), bw,
                                   fmt.encode(aq, ba), ba,
                                   out_bias=-8, shift=0)
        np.testing.assert_allclose(fmt.decode(words, -8), values)

    def test_saturation_on_adversarial_input(self):
        mac = HFIntVectorMac(bits=8, exp_bits=3)
        fmt = AdaptivFloat(8, 3)
        big = np.full(256, 1.9)         # near value_max for bias -7... scaled
        bw = int(fmt.fit(big)["exp_bias"])
        q = fmt.quantize_with_params(big, {"exp_bias": bw})
        words = fmt.encode(q, bw)
        acc = mac.accumulate(words.reshape(1, -1), words)
        assert acc[0] == 2 ** (mac.acc_width - 1) - 1  # clipped, not wrapped


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=2, max_value=64),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_hfint_dot_product_exactness_property(length, seed):
    """Property: for in-range data the HFINT accumulator is *exact* —
    the co-design's numerical guarantee."""
    rng = np.random.default_rng(seed)
    mac = HFIntVectorMac(bits=8, exp_bits=3)
    fmt = AdaptivFloat(8, 3)
    w = rng.normal(size=(4, length))
    a = rng.normal(size=length)
    bw = int(fmt.fit(w)["exp_bias"])
    ba = int(fmt.fit(a)["exp_bias"])
    wq = fmt.quantize_with_params(w, {"exp_bias": bw})
    aq = fmt.quantize_with_params(a, {"exp_bias": ba})
    acc = mac.accumulate(fmt.encode(wq, bw), fmt.encode(aq, ba))
    unit = 2.0 ** (bw + ba - 2 * mac.mant_bits)
    np.testing.assert_allclose(acc * unit, wq @ aq, rtol=1e-10, atol=1e-300)


# --------------------------------------------------- vectorized fast path
def _sequential_saturating_sum(terms, width):
    """Reference: the hardware's cycle-by-cycle saturating loop."""
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    out = np.zeros(terms.shape[0], dtype=np.int64)
    for i, row in enumerate(terms):
        acc = 0
        for t in row:
            acc = min(max(acc + int(t), lo), hi)
        out[i] = acc
    return out


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=1, max_value=64),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_int_accumulate_matches_sequential_reference(rows, length, seed):
    rng = np.random.default_rng(seed)
    mac = IntVectorMac(bits=8, accum_length=64)
    w = rng.integers(-127, 128, size=(rows, length))
    a = rng.integers(-127, 128, size=length)
    terms = np.asarray(w, dtype=np.int64) * np.asarray(a, dtype=np.int64)
    np.testing.assert_array_equal(
        mac.accumulate(w, a),
        _sequential_saturating_sum(terms, mac.acc_width))


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_int_accumulate_saturating_rows_exact(rows, length, seed):
    """Narrow accumulator: rows that saturate mid-reduction must take
    the exact sequential fallback, not the cumulative-sum fast path."""
    rng = np.random.default_rng(seed)
    mac = IntVectorMac(bits=4, accum_length=4)
    w = rng.integers(-7, 8, size=(rows, length))
    a = rng.integers(-7, 8, size=length)
    terms = np.asarray(w, dtype=np.int64) * np.asarray(a, dtype=np.int64)
    np.testing.assert_array_equal(
        mac.accumulate(w, a),
        _sequential_saturating_sum(terms, mac.acc_width))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=64),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_hfint_accumulate_matches_sequential_reference(rows, length, seed):
    rng = np.random.default_rng(seed)
    mac = HFIntVectorMac(bits=8, exp_bits=3, accum_length=64)
    w_words = rng.integers(0, 256, size=(rows, length))
    a_words = rng.integers(0, 256, size=length)
    ws, we, wm = mac._fields(w_words)
    as_, ae, am = mac._fields(a_words)
    terms = ((ws * wm) * (as_ * am)[None, :]) << (we + ae[None, :])
    np.testing.assert_array_equal(
        mac.accumulate(w_words, a_words),
        _sequential_saturating_sum(terms, mac.acc_width))


def test_empty_reduction_is_zero():
    mac = IntVectorMac(bits=8, accum_length=16)
    out = mac.accumulate(np.zeros((3, 0), dtype=np.int64),
                         np.zeros(0, dtype=np.int64))
    np.testing.assert_array_equal(out, np.zeros(3, dtype=np.int64))


# ------------------------------------------------------------ width specs
class TestMacWidthSpec:
    def test_int_spec_exact_values(self):
        from repro.hardware.datapath import int_width_spec
        spec = int_width_spec(8, 256)
        assert spec.acc_width == 24
        assert spec.term_max == 127 * 127
        assert spec.sum_max == 256 * 127 * 127
        assert spec.window_max == 2 ** 23 - 1
        assert spec.presat_bits == 23
        assert spec.overflow_free and spec.fast_path_exact

    def test_hfint_spec_exact_values(self):
        from repro.hardware.datapath import hfint_width_spec
        spec = hfint_width_spec(8, 3, 256)
        assert spec.acc_width == 30
        assert spec.exp_shift_max == 14
        assert spec.term_max == 31 * 31 * 2 ** 14  # (2**(m+1)-1)**2 << 2(2**e-1)
        assert spec.sum_max == 256 * spec.term_max
        assert not spec.overflow_free       # the clamp is reachable...
        assert spec.fast_path_exact          # ...but int64 sums are exact

    def test_macs_expose_their_spec(self):
        assert IntVectorMac(8, 256).width_spec.pe == "int"
        assert HFIntVectorMac(8, 3).width_spec.pe == "hfint"

    def test_fast_path_gate_is_exact_not_width_based(self):
        """Regression: the old gate compared acc_width against a fixed
        62-bit threshold, which mislabels wide-exponent HFINT configs —
        (17, e=4, H=256) has acc_width == 62 yet its unsaturated prefix
        sums overflow int64, so cumsum-based row classification would
        silently wrap."""
        from repro.hardware.datapath import hfint_width_spec
        spec = hfint_width_spec(17, 4, 256)
        assert spec.acc_width == 62
        assert spec.sum_max > 2 ** 63 - 1
        assert not spec.fast_path_exact
        assert spec.cycle_max <= 2 ** 63 - 1  # sequential path still exact

    def test_wide_config_takes_sequential_path_exactly(self):
        mac = HFIntVectorMac(bits=17, exp_bits=4, accum_length=256)
        assert not mac.width_spec.fast_path_exact
        word = (0xF << 12) | 0xFFF          # max magnitude, sign 0
        w = np.full((1, 256), word, dtype=np.int64)
        a = np.full(256, word, dtype=np.int64)
        acc = mac.accumulate(w, a)
        assert acc[0] == 2 ** (mac.acc_width - 1) - 1  # clamped, no wrap

    def test_unsimulatable_config_rejected_at_construction(self):
        # (20, e=4): even one saturate-per-cycle step exceeds int64
        with pytest.raises(ValueError):
            HFIntVectorMac(bits=20, exp_bits=4, accum_length=256)
