"""Tests for the hardware-program compiler + interpreter."""

import numpy as np
import pytest

from repro.formats import AdaptivFloat
from repro.hardware.program import HardwareProgram, compile_linear_stack
from repro.nn.models import MLP


def small_stack(seed=0):
    rng = np.random.default_rng(seed)
    w0 = rng.normal(size=(24, 16)) * 0.4
    b0 = rng.normal(size=24) * 0.1
    w1 = rng.normal(size=(10, 24)) * 0.4
    calib = rng.normal(size=(64, 16))
    return [w0, w1], [b0, None], ["relu", "identity"], calib


class TestCompile:
    def test_compiles_and_runs(self):
        weights, biases, acts, calib = small_stack()
        prog = compile_linear_stack(weights, biases, acts, calib)
        out = prog.run(calib[0])
        assert out.shape == (10,)

    def test_batch_execution(self):
        weights, biases, acts, calib = small_stack()
        prog = compile_linear_stack(weights, biases, acts, calib)
        out = prog.run(calib[:5])
        assert out.shape == (5, 10)
        np.testing.assert_array_equal(out[0], prog.run(calib[0]))

    def test_matches_software_quantized_reference(self):
        """The compiled program on the bit-accurate datapath must track
        the software AdaptivFloat fake-quant inference closely."""
        weights, biases, acts, calib = small_stack()
        prog = compile_linear_stack(weights, biases, acts, calib,
                                    bits=8, exp_bits=3)
        fmt = AdaptivFloat(8, 3)

        def software(x):
            act = fmt.quantize(x)
            for w, b, name in zip(weights, biases, acts):
                w_q = fmt.quantize(w)
                pre = w_q @ act + (b if b is not None else 0.0)
                if name == "relu":
                    pre = np.maximum(pre, 0.0)
                act = fmt.quantize(pre)
            return act

        x = calib[7]
        hw = prog.run(x)
        sw = software(x)
        # Correlated within truncation noise (both live on 8-bit grids
        # with independently-derived per-tensor biases).
        assert np.corrcoef(hw, sw)[0, 1] > 0.99
        assert np.abs(hw - sw).max() < 0.35 * np.abs(sw).max() + 0.1

    def test_classification_agreement_on_mlp(self):
        """Hardware-program argmax matches software fake-quant argmax on
        most inputs — deployable quantized inference."""
        rng = np.random.default_rng(3)
        model = MLP([16, 32, 4], rng=rng)
        weights = [model.layers[0].weight.data, model.layers[1].weight.data]
        biases = [model.layers[0].bias.data, model.layers[1].bias.data]
        calib = rng.normal(size=(128, 16)).astype(np.float32)
        prog = compile_linear_stack(weights, biases, ["relu", "identity"],
                                    calib)
        test = rng.normal(size=(64, 16)).astype(np.float32)
        hw_pred = prog.run(test).argmax(axis=-1)
        sw_pred = model(test).data.argmax(axis=-1)
        assert (hw_pred == sw_pred).mean() > 0.85

    def test_validation(self):
        weights, biases, acts, calib = small_stack()
        with pytest.raises(ValueError):
            compile_linear_stack(weights, biases[:1], acts, calib)
        with pytest.raises(ValueError):
            compile_linear_stack(weights, biases, ["relu", "softplus"], calib)


class TestSerialization:
    def test_manifest_roundtrip(self):
        weights, biases, acts, calib = small_stack()
        prog = compile_linear_stack(weights, biases, acts, calib)
        manifest, blob = prog.to_manifest()
        import json
        manifest = json.loads(json.dumps(manifest))  # must be JSON-able
        restored = HardwareProgram.from_manifest(manifest, blob)
        x = calib[3]
        np.testing.assert_array_equal(prog.run(x), restored.run(x))

    def test_weight_stream_is_n_bits(self):
        weights, biases, acts, calib = small_stack()
        prog = compile_linear_stack(weights, biases, acts, calib, bits=6)
        layer = prog.layers[0]
        expected = (24 * 16 * 6 + 7) // 8
        assert len(layer.weight_stream) == expected


class TestTiling:
    def test_wide_layer_tiles(self):
        rng = np.random.default_rng(4)
        w = rng.normal(size=(8, 600)) * 0.1  # wider than H=256
        calib = rng.normal(size=(16, 600))
        prog = compile_linear_stack([w], [None], ["identity"], calib)
        out = prog.run(calib[0])
        w_q = AdaptivFloat(8, 3).quantize(w)
        x_q = AdaptivFloat(8, 3).quantize(calib[0])
        reference = w_q @ x_q
        assert np.corrcoef(out, reference)[0, 1] > 0.99
