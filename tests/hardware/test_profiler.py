"""Tests for MAC counting and the inference cost estimator."""

import numpy as np
import pytest

from repro.hardware import count_macs, estimate_inference_cost
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.models import MLP, ResNet, ResNetConfig


class TestMacCounting:
    def test_linear_macs(self):
        model = MLP([16, 32, 8])
        with count_macs() as counter:
            model(np.zeros((4, 16), dtype=np.float32))
        assert counter.total == 4 * (16 * 32 + 32 * 8)

    def test_batched_matmul(self):
        a = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        b = Tensor(np.zeros((2, 4, 5), dtype=np.float32))
        with count_macs() as counter:
            a @ b
        assert counter.matmul_macs == 2 * 3 * 4 * 5

    def test_conv_macs(self):
        x = Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32))
        w = Tensor(np.zeros((4, 3, 3, 3), dtype=np.float32))
        with count_macs() as counter:
            F.conv2d(x, w, None, stride=1, padding=1)
        assert counter.conv_macs == 1 * 4 * 3 * 3 * 3 * 8 * 8

    def test_counting_disabled_outside_context(self):
        with count_macs() as counter:
            pass
        a = Tensor(np.zeros((2, 2), dtype=np.float32))
        a @ a  # outside the context
        assert counter.total == 0

    def test_nested_counters(self):
        a = Tensor(np.zeros((2, 2), dtype=np.float32))
        with count_macs() as outer:
            a @ a
            with count_macs() as inner:
                a @ a
        assert inner.total == 8
        assert outer.total == 16

    def test_resnet_inference_counts(self):
        model = ResNet(ResNetConfig(blocks_per_stage=1)).eval()
        with count_macs() as counter:
            model.predict(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert counter.conv_macs > counter.matmul_macs > 0


class TestCostEstimator:
    def test_scaling(self):
        small = estimate_inference_cost(1_000_000, "int")
        big = estimate_inference_cost(10_000_000, "int")
        assert big.energy_uj == pytest.approx(10 * small.energy_uj)
        assert big.cycles >= 10 * small.cycles - 10

    def test_hfint_cheaper_energy_at_8bit(self):
        macs = 50_000_000
        int_cost = estimate_inference_cost(macs, "int", bits=8)
        hf_cost = estimate_inference_cost(macs, "hfint", bits=8)
        assert hf_cost.energy_uj < int_cost.energy_uj
        assert hf_cost.cycles == int_cost.cycles  # same throughput

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_inference_cost(-1)
        with pytest.raises(ValueError):
            estimate_inference_cost(10, utilization=0.0)

    def test_zero_macs(self):
        cost = estimate_inference_cost(0)
        assert cost.cycles == 0 and cost.energy_uj == 0.0
