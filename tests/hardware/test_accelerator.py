"""Tests of the 4-PE accelerator system model (paper Fig. 6 / Table 4)."""

import pytest

from repro.hardware import (Accelerator, AcceleratorConfig, LSTMWorkload,
                            PAPER_WORKLOAD, paper_accelerator)


class TestWorkload:
    def test_paper_workload_counts(self):
        w = PAPER_WORKLOAD
        assert w.macs_per_step == 4 * 256 * 512 == 524_288
        assert w.total_ops == 2 * w.macs_per_step * 100
        assert w.weight_count * 8 // 8 // 1024 == 512  # 512 KiB at 8-bit

    def test_invalid_workload(self):
        with pytest.raises(ValueError):
            LSTMWorkload(timesteps=0)


class TestSchedule:
    def test_compute_cycles_exact(self):
        acc = paper_accelerator("int")
        cycles = acc.cycles_per_step(PAPER_WORKLOAD)
        # 524288 MACs / (4 PEs * 256 MACs/cycle) = 512
        assert cycles["compute"] == 512

    def test_runtime_matches_paper(self):
        for kind in ("int", "hfint"):
            acc = paper_accelerator(kind)
            assert acc.runtime_us(PAPER_WORKLOAD) == pytest.approx(81.2, rel=0.01)

    def test_identical_latency_across_kinds(self):
        # Paper Table 4: "both accelerators achieve the same compute time".
        assert (paper_accelerator("int").total_cycles(PAPER_WORKLOAD)
                == paper_accelerator("hfint").total_cycles(PAPER_WORKLOAD))

    def test_more_pes_reduce_compute(self):
        small = Accelerator(AcceleratorConfig(num_pes=2))
        big = Accelerator(AcceleratorConfig(num_pes=8))
        assert (big.cycles_per_step(PAPER_WORKLOAD)["compute"]
                < small.cycles_per_step(PAPER_WORKLOAD)["compute"])

    def test_runtime_scales_with_timesteps(self):
        acc = paper_accelerator("int")
        half = LSTMWorkload(timesteps=50, hidden=256, input_dim=256)
        assert acc.runtime_us(half) == pytest.approx(
            acc.runtime_us(PAPER_WORKLOAD) / 2)


class TestPowerArea:
    def test_power_near_paper(self):
        assert paper_accelerator("int").power_mw(PAPER_WORKLOAD) \
            == pytest.approx(61.38, rel=0.10)
        assert paper_accelerator("hfint").power_mw(PAPER_WORKLOAD) \
            == pytest.approx(56.22, rel=0.10)

    def test_hfint_lower_power_higher_area(self):
        int_acc = paper_accelerator("int")
        hf_acc = paper_accelerator("hfint")
        assert hf_acc.power_mw(PAPER_WORKLOAD) < int_acc.power_mw(PAPER_WORKLOAD)
        assert hf_acc.area_mm2() > int_acc.area_mm2()

    def test_energy_breakdown_positive(self):
        breakdown = paper_accelerator("int").dynamic_energy_fj(PAPER_WORKLOAD)
        assert set(breakdown) == {"datapath", "global_buffer", "crossbar",
                                  "activation_unit"}
        assert all(v > 0 for v in breakdown.values())
        # Datapath dominates in a MAC-bound workload.
        assert breakdown["datapath"] > breakdown["global_buffer"]

    def test_sram_dominates_area(self):
        acc = paper_accelerator("int")
        assert acc.sram_area() > acc.logic_area()

    def test_report_contents(self):
        report = paper_accelerator("hfint").report()
        assert "HFINT8/30" in report["name"]
        assert report["power_mw"] > 0 and report["area_mm2"] > 0
