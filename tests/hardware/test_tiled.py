"""Tests for tiled (longer-than-H) reductions in the INT datapath."""

import numpy as np
import pytest

from repro.hardware import IntVectorMac, RequantParams


class TestTiledAccumulation:
    def test_tiled_matches_untiled_for_short_reduction(self):
        rng = np.random.default_rng(0)
        mac = IntVectorMac(bits=8, accum_length=256)
        w = rng.integers(-100, 100, size=(4, 100)).astype(np.int64)
        a = rng.integers(-100, 100, size=100).astype(np.int64)
        np.testing.assert_array_equal(mac.accumulate_tiled(w, a),
                                      mac.accumulate(w, a))

    def test_long_reduction_exact(self):
        """A 512-wide reduction (the paper's LSTM gate width) through
        H=256 tiles must equal the exact integer dot product."""
        rng = np.random.default_rng(1)
        mac = IntVectorMac(bits=8, accum_length=256)
        w = rng.integers(-127, 128, size=(8, 512)).astype(np.int64)
        a = rng.integers(-127, 128, size=512).astype(np.int64)
        np.testing.assert_array_equal(mac.accumulate_tiled(w, a), w @ a)

    def test_matvec_auto_tiles(self):
        rng = np.random.default_rng(2)
        mac = IntVectorMac(bits=8, accum_length=64)
        w = rng.integers(-50, 50, size=(4, 200)).astype(np.int64)
        a = rng.integers(-50, 50, size=200).astype(np.int64)
        exact = w @ a
        s_out = max(np.abs(exact).max() / 127.0, 1e-9)
        rq = RequantParams.from_scale(1.0 / s_out, 16)
        out = mac.matvec(w, a, rq)
        np.testing.assert_allclose(out * s_out, exact, atol=s_out)

    def test_extended_register_guards_overflow(self):
        # Worst-case 1024-long reduction: 4 tiles of the 2^23-1 maximum
        # partial sum must not wrap in the extended register.
        mac = IntVectorMac(bits=8, accum_length=256)
        w = np.full((1, 1024), 127, dtype=np.int64)
        a = np.full(1024, 127, dtype=np.int64)
        out = mac.accumulate_tiled(w, a)
        assert out[0] == 1024 * 127 * 127
