"""Tests for the LSTM-cell hardware program (the Table 4 workload kernel)."""

import numpy as np
import pytest

from repro.hardware.lstm_program import compile_lstm_cell


def _fp32_lstm(weight_ih, weight_hh, bias, frames):
    hidden = weight_hh.shape[1]
    h = np.zeros(hidden)
    c = np.zeros(hidden)
    outs = []
    for x in frames:
        gates = weight_ih @ x + weight_hh @ h + bias
        sig = lambda v: 1.0 / (1.0 + np.exp(-v))
        i, f = sig(gates[:hidden]), sig(gates[hidden:2 * hidden])
        g = np.tanh(gates[2 * hidden:3 * hidden])
        o = sig(gates[3 * hidden:])
        c = f * c + i * g
        h = o * np.tanh(c)
        outs.append(h)
    return np.stack(outs)


def make_cell(hidden=16, inputs=12, seed=0):
    rng = np.random.default_rng(seed)
    weight_ih = rng.normal(size=(4 * hidden, inputs)) * 0.3
    weight_hh = rng.normal(size=(4 * hidden, hidden)) * 0.3
    bias = np.zeros(4 * hidden)
    bias[hidden:2 * hidden] = 1.0
    frames = rng.normal(size=(12, inputs))
    return weight_ih, weight_hh, bias, frames


class TestCompileLstm:
    def test_shapes_and_biases(self):
        wih, whh, b, frames = make_cell()
        prog = compile_lstm_cell(wih, whh, b, frames)
        assert prog.hidden == 16 and prog.input_size == 12
        # h in (-1,1): its register anchors at exp_max(1.0)=0 -> bias -7
        assert prog.h_bias == 0 - (2 ** 3 - 1)

    def test_rejects_bad_shapes(self):
        wih, whh, b, frames = make_cell()
        with pytest.raises(ValueError):
            compile_lstm_cell(wih[:-1], whh, b, frames)

    def test_hardware_tracks_fp32_cell(self):
        wih, whh, b, frames = make_cell(seed=1)
        prog = compile_lstm_cell(wih, whh, b, frames)
        hw = prog.run(frames)
        fp = _fp32_lstm(wih, whh, b, frames)
        # 8-bit weights/states: the trajectories stay close over 12 steps.
        assert np.corrcoef(hw.ravel(), fp.ravel())[0, 1] > 0.98
        assert np.abs(hw - fp).mean() < 0.08

    def test_state_stays_in_range(self):
        wih, whh, b, frames = make_cell(seed=2)
        prog = compile_lstm_cell(wih, whh, b, frames)
        hw = prog.run(frames)
        assert np.abs(hw).max() <= 1.0 + 1e-9  # h = o * tanh(c)

    def test_deterministic(self):
        wih, whh, b, frames = make_cell(seed=3)
        prog = compile_lstm_cell(wih, whh, b, frames)
        np.testing.assert_array_equal(prog.run(frames), prog.run(frames))

    def test_zero_input_zero_state_fixed_point(self):
        wih, whh, b, frames = make_cell(seed=4)
        b = np.zeros_like(b)  # no forget bias
        prog = compile_lstm_cell(wih, whh, b, frames)
        h, c = prog.step(np.zeros(12))
        # gates at 0 -> i=f=o=0.5, g=0 -> c=0, h=0
        np.testing.assert_allclose(h, 0.0, atol=1e-9)
        np.testing.assert_allclose(c, 0.0, atol=1e-9)

    def test_paper_workload_dimensions_compile(self):
        """The exact Table 4 kernel (256 hidden, 512-wide reductions)
        compiles and steps — reductions tile across H=256."""
        rng = np.random.default_rng(5)
        hidden, inputs = 64, 64  # scaled to keep the test fast
        wih = rng.normal(size=(4 * hidden, inputs)) * 0.2
        whh = rng.normal(size=(4 * hidden, hidden)) * 0.2
        bias = np.zeros(4 * hidden)
        frames = rng.normal(size=(3, inputs))
        prog = compile_lstm_cell(wih, whh, bias, frames, accum_length=32)
        out = prog.run(frames)
        assert out.shape == (3, hidden)
        assert np.isfinite(out).all()
