"""Cross-validation: the event simulator must agree with the analytical
schedule model (and therefore with Table 4's latency), and its
closed-form ``run`` must reproduce the cycle-loop ``run_reference``
trace exactly."""

import pytest

from repro.hardware import AcceleratorConfig, LSTMWorkload, PAPER_WORKLOAD
from repro.hardware.accelerator import Accelerator
from repro.hardware.simulator import EventSimulator


class TestCrossValidation:
    def test_matches_analytical_cycle_counts(self):
        config = AcceleratorConfig()
        sim = EventSimulator(config).run(PAPER_WORKLOAD)
        analytical = Accelerator(config).cycles_per_step(PAPER_WORKLOAD)
        simulated = {phase: total // PAPER_WORKLOAD.timesteps
                     for phase, total in sim.cycles_by_phase().items()}
        assert simulated == analytical

    def test_runtime_is_paper_latency(self):
        trace = EventSimulator().run(PAPER_WORKLOAD)
        assert trace.runtime_us == pytest.approx(81.2, rel=0.01)

    @pytest.mark.parametrize("num_pes,vector", [(2, 8), (4, 16), (8, 16)])
    def test_agreement_across_configs(self, num_pes, vector):
        config = AcceleratorConfig(num_pes=num_pes, vector_size=vector)
        workload = LSTMWorkload(timesteps=7, hidden=128, input_dim=64)
        sim = EventSimulator(config).run(workload)
        analytical = Accelerator(config).total_cycles(workload)
        assert sim.total_cycles == analytical


class TestTraceStructure:
    def test_phases_are_contiguous(self):
        trace = EventSimulator().run(LSTMWorkload(timesteps=3))
        for prev, nxt in zip(trace.phases, trace.phases[1:]):
            assert prev.end_cycle == nxt.start_cycle

    def test_phase_sequence_per_step(self):
        trace = EventSimulator().run(LSTMWorkload(timesteps=2))
        names = [p.phase for p in trace.phases if p.step == 0]
        assert names == ["compute", "activation", "collect", "broadcast",
                         "pipeline"]

    def test_mac_utilization_matches_schedule(self):
        # 512 of 812 cycles per step are MAC-busy on all 4 PEs.
        trace = EventSimulator().run(PAPER_WORKLOAD)
        assert trace.mac_utilization() == pytest.approx(4 * 512 / 812, rel=1e-3)

    def test_wider_crossbar_shrinks_transfers(self):
        fast = EventSimulator(AcceleratorConfig(crossbar_lanes=16)).run(
            LSTMWorkload(timesteps=2))
        slow = EventSimulator(AcceleratorConfig(crossbar_lanes=4)).run(
            LSTMWorkload(timesteps=2))
        assert fast.cycles_by_phase()["collect"] \
            < slow.cycles_by_phase()["collect"]


class TestClosedFormEqualsReference:
    """The ceil-arithmetic ``run`` against the per-cycle state machines."""

    def _assert_identical(self, config, workload):
        sim = EventSimulator(config)
        fast = sim.run(workload)
        reference = sim.run_reference(workload)
        assert fast.phases == reference.phases
        assert fast.total_cycles == reference.total_cycles
        assert fast.busy_mac_cycles == reference.busy_mac_cycles

    def test_paper_workload(self):
        self._assert_identical(AcceleratorConfig(), PAPER_WORKLOAD)

    @pytest.mark.parametrize(
        "config",
        [AcceleratorConfig(num_pes=2, vector_size=8),
         AcceleratorConfig(num_pes=8, vector_size=16),
         AcceleratorConfig(crossbar_lanes=4),
         AcceleratorConfig(crossbar_lanes=64),
         AcceleratorConfig(pipeline_ramp_cycles=0)])
    def test_config_sweep(self, config):
        self._assert_identical(
            config, LSTMWorkload(timesteps=5, hidden=96, input_dim=48))

    @pytest.mark.parametrize(
        "workload",
        [LSTMWorkload(timesteps=1),
         LSTMWorkload(timesteps=3, hidden=1, input_dim=1),
         LSTMWorkload(timesteps=2, hidden=17, input_dim=5),
         LSTMWorkload(timesteps=4, hidden=255, input_dim=33)])
    def test_ragged_workloads(self, workload):
        """Work sizes that do not divide the rates: the ceil boundaries."""
        self._assert_identical(AcceleratorConfig(), workload)

    def test_closed_form_skips_cycle_loops(self):
        # the point of the refactor: record count scales with timesteps,
        # not with total cycles, and both paths still agree at size
        trace = EventSimulator().run(LSTMWorkload(timesteps=64))
        assert len(trace.phases) == 64 * 5
        assert trace.total_cycles > len(trace.phases)
