"""Cross-validation: the event simulator must agree with the analytical
schedule model (and therefore with Table 4's latency)."""

import pytest

from repro.hardware import AcceleratorConfig, LSTMWorkload, PAPER_WORKLOAD
from repro.hardware.accelerator import Accelerator
from repro.hardware.simulator import EventSimulator


class TestCrossValidation:
    def test_matches_analytical_cycle_counts(self):
        config = AcceleratorConfig()
        sim = EventSimulator(config).run(PAPER_WORKLOAD)
        analytical = Accelerator(config).cycles_per_step(PAPER_WORKLOAD)
        simulated = {phase: total // PAPER_WORKLOAD.timesteps
                     for phase, total in sim.cycles_by_phase().items()}
        assert simulated == analytical

    def test_runtime_is_paper_latency(self):
        trace = EventSimulator().run(PAPER_WORKLOAD)
        assert trace.runtime_us == pytest.approx(81.2, rel=0.01)

    @pytest.mark.parametrize("num_pes,vector", [(2, 8), (4, 16), (8, 16)])
    def test_agreement_across_configs(self, num_pes, vector):
        config = AcceleratorConfig(num_pes=num_pes, vector_size=vector)
        workload = LSTMWorkload(timesteps=7, hidden=128, input_dim=64)
        sim = EventSimulator(config).run(workload)
        analytical = Accelerator(config).total_cycles(workload)
        assert sim.total_cycles == analytical


class TestTraceStructure:
    def test_phases_are_contiguous(self):
        trace = EventSimulator().run(LSTMWorkload(timesteps=3))
        for prev, nxt in zip(trace.phases, trace.phases[1:]):
            assert prev.end_cycle == nxt.start_cycle

    def test_phase_sequence_per_step(self):
        trace = EventSimulator().run(LSTMWorkload(timesteps=2))
        names = [p.phase for p in trace.phases if p.step == 0]
        assert names == ["compute", "activation", "collect", "broadcast",
                         "pipeline"]

    def test_mac_utilization_matches_schedule(self):
        # 512 of 812 cycles per step are MAC-busy on all 4 PEs.
        trace = EventSimulator().run(PAPER_WORKLOAD)
        assert trace.mac_utilization() == pytest.approx(4 * 512 / 812, rel=1e-3)

    def test_wider_crossbar_shrinks_transfers(self):
        fast = EventSimulator(AcceleratorConfig(crossbar_lanes=16)).run(
            LSTMWorkload(timesteps=2))
        slow = EventSimulator(AcceleratorConfig(crossbar_lanes=4)).run(
            LSTMWorkload(timesteps=2))
        assert fast.cycles_by_phase()["collect"] \
            < slow.cycles_by_phase()["collect"]
