"""INT-PE counterpart of the HFINT end-to-end test: a two-layer network
through the NVDLA-like integer pipeline (paper Fig. 5a) must match the
software uniform-quantized reference within requantization error."""

import numpy as np
import pytest

from repro.formats import Uniform
from repro.hardware import IntVectorMac, RequantParams


def _levels(x, quantizer):
    params = quantizer.fit(x)
    q = quantizer.quantize_with_params(x, params)
    return np.rint(q / params["scale"]).astype(np.int64), params["scale"]


@pytest.mark.parametrize("seed", [0, 1])
def test_int_pipeline_matches_software_quantization(seed):
    rng = np.random.default_rng(seed)
    quantizer = Uniform(8)
    mac = IntVectorMac(bits=8, accum_length=256)

    w0 = rng.normal(size=(24, 16)) * 0.4
    w1 = rng.normal(size=(8, 24)) * 0.4
    x = rng.normal(size=16)

    # --- software reference: uniform weights and activations
    w0_lvl, s_w0 = _levels(w0, quantizer)
    w1_lvl, s_w1 = _levels(w1, quantizer)
    x_lvl, s_x = _levels(x, quantizer)
    h_ref = np.maximum((w0_lvl * s_w0) @ (x_lvl * s_x), 0.0)
    s_h = np.abs(h_ref).max() / 127.0
    h_lvl_ref = np.rint(h_ref / s_h).astype(np.int64)
    out_ref = (w1_lvl * s_w1) @ (h_lvl_ref * s_h)
    s_out = np.abs(out_ref).max() / 127.0

    # --- hardware: integer MACs + S-bit requant between layers
    rq0 = RequantParams.from_scale(s_w0 * s_x / s_h, 16)
    h_lvl = mac.matvec(w0_lvl, x_lvl, rq0,
                       activation=lambda v: np.maximum(v, 0))
    rq1 = RequantParams.from_scale(s_w1 * s_h / s_out, 16)
    out_lvl = mac.matvec(w1_lvl, h_lvl, rq1)

    # One requant LSB per layer, propagated through |W1| levels.
    tol = s_out + s_h * np.abs(w1_lvl * s_w1).sum(axis=1)
    assert np.all(np.abs(out_lvl * s_out - out_ref) <= tol + 1e-9)
    assert np.corrcoef(out_lvl * s_out, out_ref)[0, 1] > 0.999


def test_int_and_hfint_agree_on_the_same_network():
    """Both datapaths, fed the same FP32 layer, produce outputs that
    agree with each other at 8-bit — the formats differ, the function
    does not."""
    from repro.formats import AdaptivFloat
    from repro.hardware import HFIntVectorMac

    rng = np.random.default_rng(7)
    w = rng.normal(size=(16, 32)) * 0.3
    x = rng.normal(size=32)
    reference = w @ x

    # INT path
    uq = Uniform(8)
    w_lvl, s_w = _levels(w, uq)
    x_lvl, s_x = _levels(x, uq)
    s_out = np.abs(reference).max() / 127.0
    imac = IntVectorMac(bits=8)
    int_out = imac.matvec(w_lvl, x_lvl,
                          RequantParams.from_scale(s_w * s_x / s_out, 16))

    # HFINT path
    fmt = AdaptivFloat(8, 3)
    bw = int(fmt.fit(w)["exp_bias"])
    bx = int(fmt.fit(x)["exp_bias"])
    w_q = fmt.quantize_with_params(w, {"exp_bias": bw})
    x_q = fmt.quantize_with_params(x, {"exp_bias": bx})
    hmac = HFIntVectorMac(bits=8, exp_bits=3)
    out_bias = int(fmt.fit(reference)["exp_bias"])
    shift = hmac.output_shift_for(np.abs(w_q @ x_q).max(), bw, bx)
    _, hf_out = hmac.matvec(fmt.encode(w_q, bw), bw, fmt.encode(x_q, bx), bx,
                            out_bias, shift)

    assert np.corrcoef(int_out * s_out, hf_out)[0, 1] > 0.995
    np.testing.assert_allclose(int_out * s_out, hf_out,
                               atol=0.08 * np.abs(reference).max())
