"""Algorithm/hardware consistency: quantized inference through the
bit-accurate HFINT datapath must match the software fake-quant model.

This is the co-design contract of the paper: the AdaptivFloat quantizer
used at training time (Algorithm 1) and the HFINT PE pipeline (Fig. 5b)
describe the *same* arithmetic.  We run a two-layer ReLU network
end-to-end both ways and require agreement up to the PE's documented
truncation error.
"""

import numpy as np
import pytest

from repro.formats import AdaptivFloat
from repro.hardware import HFIntVectorMac


BITS, EXP_BITS = 8, 3


def software_reference(x, weights, fmt, biases):
    """Fake-quant inference: AF weights, AF activations between layers."""
    act = fmt.quantize_with_params(x, {"exp_bias": biases["x"]})
    for i, w in enumerate(weights):
        w_q = fmt.quantize_with_params(w, {"exp_bias": biases[f"w{i}"]})
        pre = w_q @ act
        if i < len(weights) - 1:
            pre = np.maximum(pre, 0.0)
        act = fmt.quantize_with_params(pre, {"exp_bias": biases[f"a{i}"]})
    return act


def hardware_pipeline(x, weights, fmt, biases, mac):
    """The same network through the bit-accurate HFINT MAC pipeline."""
    act_q = fmt.quantize_with_params(x, {"exp_bias": biases["x"]})
    act_words = fmt.encode(act_q, biases["x"])
    act_bias = biases["x"]
    values = None
    for i, w in enumerate(weights):
        w_q = fmt.quantize_with_params(w, {"exp_bias": biases[f"w{i}"]})
        w_words = fmt.encode(w_q, biases[f"w{i}"])
        pre_max = np.abs(w_q @ fmt.decode(act_words, act_bias)).max()
        shift = mac.output_shift_for(pre_max, biases[f"w{i}"], act_bias)
        activation = (lambda v: np.maximum(v, 0.0)) \
            if i < len(weights) - 1 else None
        words, values = mac.matvec(w_words, biases[f"w{i}"],
                                   act_words, act_bias,
                                   out_bias=biases[f"a{i}"], shift=shift,
                                   activation=activation)
        act_words, act_bias = words, biases[f"a{i}"]
    return values, [
        2.0 ** (biases[f"w{i}"] + b - 2 * mac.mant_bits)
        for i, b in enumerate([biases["x"], biases["a0"]])
    ]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_hfint_pipeline_matches_software_quantization(seed):
    rng = np.random.default_rng(seed)
    fmt = AdaptivFloat(BITS, EXP_BITS)
    mac = HFIntVectorMac(bits=BITS, exp_bits=EXP_BITS)

    w0 = rng.normal(size=(24, 16)) * 0.4
    w1 = rng.normal(size=(8, 24)) * 0.4
    x = rng.normal(size=16)

    # Calibrate every tensor's exp_bias offline (paper Section 5.2).
    h0 = np.maximum(w0 @ x, 0.0)
    out = w1 @ h0
    biases = {
        "x": int(fmt.fit(x)["exp_bias"]),
        "w0": int(fmt.fit(w0)["exp_bias"]),
        "w1": int(fmt.fit(w1)["exp_bias"]),
        "a0": int(fmt.fit(h0)["exp_bias"]),
        "a1": int(fmt.fit(out)["exp_bias"]),
    }

    reference = software_reference(x, [w0, w1], fmt, biases)
    hardware, _ = hardware_pipeline(x, [w0, w1], fmt, mac=mac, biases=biases)

    # Tolerance: one truncation LSB per layer propagated through the
    # second layer's weights, plus one output quantization step.
    _, vmax1 = fmt.range_for_bias(biases["a1"])
    w1_q = fmt.quantize_with_params(w1, {"exp_bias": biases["w1"]})
    trunc0 = 2.0 ** (biases["w0"] + biases["x"] - 2 * mac.mant_bits)
    trunc1 = 2.0 ** (biases["w1"] + biases["a0"] - 2 * mac.mant_bits)
    # shifts enlarge the step; bound generously with the observed shifts
    tol = (np.abs(w1_q).sum(axis=1) * trunc0 * 2 ** 8
           + trunc1 * 2 ** 8
           + float(vmax1) * 2.0 ** -mac.mant_bits)
    assert np.all(np.abs(hardware - reference) <= tol)
    # And the result must be strongly correlated with the exact FP path.
    corr = np.corrcoef(hardware, out)[0, 1]
    assert corr > 0.98
