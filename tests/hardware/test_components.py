"""Tests for the primitive component energy/area models."""

import pytest

from repro.hardware import constants
from repro.hardware import components as comp


class TestEnergyModel:
    def test_multiplier_scales_quadratically(self):
        assert comp.multiplier_energy(8, 8) == pytest.approx(
            4 * comp.multiplier_energy(4, 4))

    def test_asymmetric_multiplier(self):
        # mantissa (5x5) vs full (8x8): the HFINT advantage at 8-bit.
        assert comp.multiplier_energy(5, 5) < comp.multiplier_energy(8, 8) / 2

    def test_linear_components(self):
        for fn in (comp.adder_energy, comp.shifter_energy,
                   comp.register_energy, comp.sram_read_energy):
            assert fn(16) == pytest.approx(2 * fn(8))

    def test_all_positive(self):
        coef = constants.ENERGY_16NM
        assert min(coef.mult_per_bit2, coef.add_per_bit, coef.shift_per_bit,
                   coef.reg_per_bit, coef.sram_read_per_bit,
                   coef.ctrl_per_cycle) > 0


class TestSramModel:
    def test_area_scales_with_capacity(self):
        assert comp.sram_area(1024) == pytest.approx(2 * comp.sram_area(512))

    def test_macro_energies(self):
        assert comp.sram_write_energy_macro(8) > comp.sram_read_energy_macro(8) * 0.5
        assert comp.sram_leakage_mw(1024) == pytest.approx(
            constants.SRAM_16NM.leakage_mw_per_mib)

    def test_1mb_area_plausible(self):
        # 16nm SRAM macro ~1-2 mm^2 per MiB.
        assert 1.0 < comp.sram_area(1024) < 2.0


class TestCoefficientProvenance:
    def test_clock_is_1ghz(self):
        assert constants.CLOCK_HZ == 1e9

    def test_mult_energy_plausible_at_8bit(self):
        # 16nm 8x8 multiplier: tens of fJ.
        energy = comp.multiplier_energy(8, 8)
        assert 10 < energy < 100
