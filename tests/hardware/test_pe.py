"""Tests of the analytical PE PPA models (paper Fig. 5/7 contracts)."""

import numpy as np
import pytest

from repro.hardware import PEConfig, make_pe


class TestWidths:
    """Accumulator-width formulas from paper Section 5 (DESIGN.md §6)."""

    def test_int_pe_names_match_paper(self):
        assert make_pe("int", 8, 16).name == "INT8/24/40"
        assert make_pe("int", 4, 4).name == "INT4/16/24"

    def test_hfint_pe_names_match_paper(self):
        assert make_pe("hfint", 8, 16).name == "HFINT8/30"
        assert make_pe("hfint", 4, 4).name == "HFINT4/22"

    def test_int_accumulator_formula(self):
        # 2n + log2(H)
        pe = make_pe("int", 8, 16, accum_length=256)
        assert pe.accumulator_width == 24
        pe = make_pe("int", 8, 16, accum_length=1024)
        assert pe.accumulator_width == 26

    def test_hfint_accumulator_formula(self):
        # 2(2^e - 1) + 2m + log2(H), e=3
        pe = make_pe("hfint", 8, 16)
        assert pe.mant_bits == 4
        assert pe.accumulator_width == 2 * 7 + 2 * 4 + 8 == 30

    def test_throughput_formula(self):
        # Paper Section 6.2: single PE throughput = K^2 * 2 * 1e9 OPS.
        pe = make_pe("int", 8, 16)
        assert pe.throughput_ops() == pytest.approx(16 * 16 * 2e9)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PEConfig(bits=1)
        with pytest.raises(ValueError):
            PEConfig(accum_length=100)  # not a power of two
        with pytest.raises(ValueError):
            make_pe("bogus", 8, 16)


# Paper Fig. 7 reference points.
PAPER_ENERGY = {
    ("int", 4): {4: 127.00, 8: 59.75, 16: 30.36},
    ("hfint", 4): {4: 123.12, 8: 56.39, 16: 27.77},
    ("int", 8): {4: 227.61, 8: 105.80, 16: 52.21},
    ("hfint", 8): {4: 205.27, 8: 98.38, 16: 46.88},
}
PAPER_PERF_AREA = {
    ("int", 4): {4: 1.31, 8: 2.28, 16: 3.90},
    ("hfint", 4): {4: 1.26, 8: 2.10, 16: 3.42},
    ("int", 8): {4: 1.11, 8: 1.59, 16: 2.25},
    ("hfint", 8): {4: 1.02, 8: 1.39, 16: 1.86},
}


class TestFig7Calibration:
    @pytest.mark.parametrize("kind,bits", list(PAPER_ENERGY))
    def test_energy_within_calibration_band(self, kind, bits):
        for k, paper in PAPER_ENERGY[(kind, bits)].items():
            model = make_pe(kind, bits, k).energy_per_op()
            assert model == pytest.approx(paper, rel=0.15), (kind, bits, k)

    @pytest.mark.parametrize("kind,bits", list(PAPER_PERF_AREA))
    def test_perf_area_within_calibration_band(self, kind, bits):
        for k, paper in PAPER_PERF_AREA[(kind, bits)].items():
            model = make_pe(kind, bits, k).perf_per_area()
            assert model == pytest.approx(paper, rel=0.25), (kind, bits, k)

    def test_hfint_energy_ratio_shrinks(self):
        """Paper Section 6.2: HFINT per-op energy goes from 0.97x of INT
        (4-bit, K=4) to 0.90x (8-bit, K=16)."""
        ratio_small = (make_pe("hfint", 4, 4).energy_per_op()
                       / make_pe("int", 4, 4).energy_per_op())
        ratio_large = (make_pe("hfint", 8, 16).energy_per_op()
                       / make_pe("int", 8, 16).energy_per_op())
        assert ratio_large < ratio_small < 1.0
        assert ratio_small == pytest.approx(0.97, abs=0.03)
        assert ratio_large == pytest.approx(0.90, abs=0.04)

    def test_int_always_wins_perf_per_area(self):
        """Paper: INT PEs exhibit 1.04x-1.21x higher TOPS/mm^2."""
        for bits in (4, 8):
            for k in (4, 8, 16):
                ratio = (make_pe("int", bits, k).perf_per_area()
                         / make_pe("hfint", bits, k).perf_per_area())
                assert 1.0 < ratio < 1.35, (bits, k, ratio)

    def test_energy_improves_with_vector_size(self):
        """Paper: larger vector sizes amortize overheads (both PEs)."""
        for kind in ("int", "hfint"):
            energies = [make_pe(kind, 8, k).energy_per_op()
                        for k in (4, 8, 16)]
            assert energies[0] > energies[1] > energies[2]


class TestModelStructure:
    def test_breakdown_sums_to_total(self):
        pe = make_pe("hfint", 8, 16)
        assert sum(pe.breakdown().values()) == pytest.approx(pe.energy_per_op())

    def test_hfint_mac_cheaper_at_8bit(self):
        """The HFINT vector MAC has smaller mantissa multipliers (paper
        Section 6.2) — its per-MAC energy must be below INT's at 8-bit."""
        assert (make_pe("hfint", 8, 16).breakdown()["mac"]
                < make_pe("int", 8, 16).breakdown()["mac"])

    def test_hfint_area_larger(self):
        for bits in (4, 8):
            for k in (4, 8, 16):
                assert (make_pe("hfint", bits, k).area()
                        > make_pe("int", bits, k).area())

    def test_longer_accumulation_widens_registers(self):
        narrow = make_pe("int", 8, 16, accum_length=64)
        wide = make_pe("int", 8, 16, accum_length=4096)
        assert wide.accumulator_width > narrow.accumulator_width
        # Wider accumulators cost more per-lane energy (the post-proc
        # amortization moves the per-op total the other way).
        assert wide._lane_energy() > narrow._lane_energy()

    def test_exp_bits_affect_hfint_width(self):
        pe2 = make_pe("hfint", 8, 16, exp_bits=2)
        pe4 = make_pe("hfint", 8, 16, exp_bits=4)
        assert pe2.accumulator_width < pe4.accumulator_width
