"""Self-healing serving: closed-loop fault recovery, quarantine policy,
deadlines, and the degradation circuit breaker.

The headline scenario from the issue: flip one stored exponent bit in a
pooled model's weight *while the server is live* and require the server
to detect it, restore from the golden copy, retry the quarantined
micro-batch, and return token-identical results with zero failed
requests.
"""

import time

import numpy as np
import pytest

from repro.nn import deterministic_matmul
from repro.resilience.inject import flip_float_register
from repro.serve import (CircuitBreaker, DeadlineExceeded, InferenceServer,
                         ModelPool, ResilienceConfig, ServerDegraded)
from repro.serve.batching import serial_reference
from repro.serve.bench import build_requests

TARGET = "encoder.0.ffn.fc1.weight"


@pytest.fixture(scope="module")
def pool():
    pool = ModelPool()
    pool.get("transformer")
    return pool


def flip_weight(model, name, element=7, bit_index=1):
    """Flip one stored float32 register bit of a live parameter
    (bit 1 = the exponent MSB, the catastrophic SDC bit)."""
    param = model.get_parameter(name)
    data = param.data.copy()
    data.flat[element] = flip_float_register(data.flat[element], bit_index)
    model.swap_parameter(name, data)


def quiet_config(**overrides):
    """Resilience without the periodic daemon: deterministic tests rely
    on the per-batch verify/probe alone."""
    defaults = dict(scrub_interval_s=None, verify_batches=True, probe=True)
    defaults.update(overrides)
    return ResilienceConfig(**defaults)


class TestClosedLoop:
    def test_mid_serve_exponent_flip_recovers_token_identical(self, pool):
        entry = pool.get("transformer")
        requests = build_requests("transformer", 8, seed=3, max_len=8)
        with deterministic_matmul():
            expected = serial_reference(entry, requests)

        server = InferenceServer(pool, max_batch=4, max_wait_ms=5.0,
                                 deterministic=True,
                                 resilience=quiet_config())
        with server:
            first = [server.submit(r.kind, r.payload, max_len=r.max_len)
                     for r in requests[:4]]
            assert server.drain(timeout=60.0)
            flip_weight(entry.model, TARGET)       # the upset, mid-serve
            second = [server.submit(r.kind, r.payload, max_len=r.max_len)
                      for r in requests[4:]]
            assert server.drain(timeout=60.0)

        results = [f.result(timeout=0) for f in first + second]
        assert results == expected                 # bit-identical recovery
        snap = server.stats.snapshot()
        res = snap["resilience"]
        assert snap["requests"]["failed"] == 0
        assert snap["requests"]["completed"] == len(requests)
        assert snap["queue"]["depth"] == 0
        assert res["faults_detected"] >= 1
        assert res["restores"] >= 1
        assert res["retries"] >= 1
        assert res["recovered_batches"] >= 1
        assert res["uncorrectable"] == 0
        assert res["degradation"] == "ok"

    def test_silent_finite_corruption_caught_by_crc(self, pool):
        # A sign flip produces finite-but-wrong outputs no numeric probe
        # flags; the per-batch CRC verify is the detector of record.
        entry = pool.get("transformer")
        requests = build_requests("transformer", 3, seed=5, max_len=6)
        with deterministic_matmul():
            expected = serial_reference(entry, requests)

        server = InferenceServer(pool, max_batch=4, max_wait_ms=2.0,
                                 deterministic=True,
                                 resilience=quiet_config(probe=False))
        with server:
            flip_weight(entry.model, TARGET, element=2, bit_index=0)
            futures = [server.submit(r.kind, r.payload, max_len=r.max_len)
                       for r in requests]
            assert server.drain(timeout=60.0)

        assert [f.result(timeout=0) for f in futures] == expected
        res = server.stats.snapshot()["resilience"]
        assert res["fault_kinds"].get("crc", 0) >= 1
        assert res["restores"] >= 1

    def test_periodic_daemon_scrubs_without_traffic(self, pool):
        server = InferenceServer(
            pool, resilience=quiet_config(scrub_interval_s=0.02))
        with server:
            time.sleep(0.15)
        res = server.stats.snapshot()["resilience"]
        assert res["scrubs"] >= 2                  # the daemon swept
        assert res["faults_detected"] == 0         # and found nothing


class TestDeadlines:
    def test_expired_request_fails_typed_and_leaks_nothing(self, pool):
        # deadline far shorter than the scheduler's flush wait: the
        # batch reaches a worker only after the deadline passed
        server = InferenceServer(pool, max_wait_ms=100.0,
                                 resilience=quiet_config())
        with server:
            future = server.submit("translate", [3, 4, 5], max_len=4,
                                   deadline_s=0.01)
            assert server.drain(timeout=30.0)
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=0)
        snap = server.stats.snapshot()
        assert snap["resilience"]["deadline_expired"] == 1
        assert snap["requests"]["failed"] == 1
        assert snap["queue"]["depth"] == 0

    def test_config_default_deadline_applies(self, pool):
        cfg = quiet_config(request_deadline_s=0.01)
        server = InferenceServer(pool, max_wait_ms=100.0, resilience=cfg)
        with server:
            future = server.submit("translate", [3, 4, 5], max_len=4)
            assert server.drain(timeout=30.0)
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=0)


class TestDegradation:
    def _poison_golden(self, scrubber, name):
        """Corrupt the golden stream (double fault: restore must refuse)."""
        golden = scrubber._golden[name]
        bad = bytearray(golden.stream)
        bad[0] ^= 0x80
        object.__setattr__(golden, "stream", bytes(bad))
        return golden

    def test_uncorrectable_fault_degrades_and_sheds(self):
        pool = ModelPool()
        cfg = quiet_config(probe=False, breaker_threshold=1,
                           breaker_reset_s=30.0)
        server = InferenceServer(pool, max_wait_ms=1.0, resilience=cfg)
        with server:
            entry = pool.get("transformer")
            self._poison_golden(entry.scrubber, TARGET)
            flip_weight(entry.model, TARGET, element=0, bit_index=0)
            doomed = server.submit("translate", [3, 4, 5], max_len=4)
            assert server.drain(timeout=30.0)
            with pytest.raises(ServerDegraded, match="uncorrectable"):
                doomed.result(timeout=0)
            # breaker open: later submits are shed before taking a slot
            with pytest.raises(ServerDegraded, match="circuit breaker"):
                server.submit("translate", [3, 4, 5], max_len=4)
        snap = server.stats.snapshot()
        res = snap["resilience"]
        assert res["uncorrectable"] >= 1
        assert res["degradation"] == "open"
        assert res["degraded_rejections"] == 1
        assert snap["queue"]["depth"] == 0

    def test_retries_exhausted_is_uncorrectable(self):
        # A fault the scrubber cannot clear (the golden itself poisoned,
        # restore refused) persists across retries -> typed degradation.
        pool = ModelPool()
        cfg = quiet_config(probe=False, max_retries=1,
                           retry_backoff_s=0.0)
        server = InferenceServer(pool, max_wait_ms=1.0, resilience=cfg)
        with server:
            entry = pool.get("transformer")
            self._poison_golden(entry.scrubber, TARGET)
            flip_weight(entry.model, TARGET, element=0, bit_index=0)
            future = server.submit("translate", [3, 4, 5], max_len=4)
            assert server.drain(timeout=30.0)
        with pytest.raises(ServerDegraded):
            future.result(timeout=0)
        assert server.stats.snapshot()["queue"]["depth"] == 0


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive(self):
        breaker = CircuitBreaker(threshold=3, reset_s=60.0)
        breaker.record_uncorrectable()
        breaker.record_uncorrectable()
        assert breaker.allow()                     # below threshold
        breaker.record_uncorrectable()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, reset_s=60.0)
        breaker.record_uncorrectable()
        breaker.record_success()
        breaker.record_uncorrectable()
        assert breaker.state == "closed"           # streak was broken

    def test_half_open_trial_then_close_or_reopen(self):
        breaker = CircuitBreaker(threshold=1, reset_s=0.02)
        breaker.record_uncorrectable()
        assert breaker.state == "open"
        time.sleep(0.03)
        assert breaker.state == "half-open"
        assert breaker.allow()                     # one trial allowed
        breaker.record_uncorrectable()             # trial failed
        assert breaker.state == "open"
        time.sleep(0.03)
        assert breaker.allow()
        breaker.record_success()                   # trial succeeded
        assert breaker.state == "closed"


class TestConfig:
    def test_validation(self):
        for kwargs in ({"scrub_interval_s": 0.0}, {"max_retries": -1},
                       {"retry_backoff_s": -1.0},
                       {"request_deadline_s": 0.0},
                       {"breaker_threshold": 0}, {"breaker_reset_s": -1.0}):
            with pytest.raises(ValueError):
                ResilienceConfig(**kwargs)

    def test_backoff_is_capped_exponential(self):
        cfg = ResilienceConfig(retry_backoff_s=0.01,
                               retry_backoff_max_s=0.05)
        assert cfg.backoff(0) == pytest.approx(0.01)
        assert cfg.backoff(1) == pytest.approx(0.02)
        assert cfg.backoff(10) == pytest.approx(0.05)  # capped

    def test_resilient_server_exposes_scrubbers(self, pool):
        server = InferenceServer(pool, resilience=quiet_config())
        entry = pool.get("transformer")
        assert entry.scrubber is not None          # pool scrubbing enabled
        assert "transformer" in server.pool.scrubbers()


class TestFaultRecoveryBench:
    def test_bench_record_shape_and_verdicts(self):
        from repro.serve.bench import run_fault_recovery

        record = run_fault_recovery(num_requests=6, max_batch=3, seed=0,
                                    max_len=6)
        assert record["token_identical"] is True
        assert record["failed_requests"] == 0
        assert record["detected"] and record["restored"]
        assert record["retried"]
        assert record["injected"]["bit_index"] == 1
        assert record["resilience"]["degradation"] == "ok"
