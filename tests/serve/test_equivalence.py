"""Property test: micro-batched padded decode == serial decode, tokens.

The serving engine's correctness bar (ISSUE acceptance): for *any*
ragged mix of transformer and seq2seq requests, the coalesced padded
micro-batches must produce exactly the token ids the one-request-at-a-
time reference produces.  Hypothesis drives random mixes — lengths,
kind interleavings, batch knobs — through a ``deterministic=True``
server so every mismatch is a real batching bug, not BLAS
shape-dependent rounding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import deterministic_matmul
from repro.rng import fresh_rng
from repro.serve import InferenceServer, ModelPool, Request
from repro.serve.batching import run_microbatch
from repro.serve.bench import _submit_all, check_equivalence

MAX_LEN = 8


@pytest.fixture(scope="module")
def pool():
    pool = ModelPool()
    pool.get("transformer")
    pool.get("seq2seq")
    return pool


def _build_mix(kinds, seed):
    """Seeded ragged requests for a drawn kind interleaving."""
    requests = []
    for i, kind in enumerate(kinds):
        rng = fresh_rng([seed, i])
        length = int(rng.integers(2, 9))
        if kind == "translate":
            payload = rng.integers(3, 64, size=length).tolist()
        else:
            payload = rng.standard_normal((length, 16)).astype(np.float32)
        requests.append(Request(kind, payload, max_len=MAX_LEN))
    return requests


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000),
       st.lists(st.sampled_from(["translate", "transcribe"]),
                min_size=2, max_size=10),
       st.integers(1, 4),
       st.integers(1, 2))
def test_ragged_mix_token_identity(pool, seed, kinds, max_batch, workers):
    requests = _build_mix(kinds, seed)
    with deterministic_matmul():
        expected = [run_microbatch(pool.get(r.model_name), [r])[0]
                    for r in requests]
    server = InferenceServer(pool, max_batch=max_batch, max_wait_ms=10.0,
                             workers=workers, deterministic=True)
    with server:
        actual = _submit_all(server, requests, concurrency=3)
    assert actual == expected
    snap = server.stats.snapshot()
    assert snap["requests"]["completed"] == len(requests)
    assert snap["requests"]["failed"] == 0


@settings(max_examples=4, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 8))
def test_translate_batch_is_pad_inert(pool, seed, count):
    """Any padded translate batch decodes each row exactly as alone."""
    rng = fresh_rng(seed)
    requests = [Request("translate",
                        rng.integers(3, 64,
                                     size=int(rng.integers(2, 12))).tolist(),
                        max_len=MAX_LEN)
                for _ in range(count)]
    entry = pool.get("transformer")
    with deterministic_matmul():
        alone = [run_microbatch(entry, [r])[0] for r in requests]
        together = run_microbatch(entry, requests)
    assert together == alone


def test_all_families_equivalent():
    """The acceptance check the benchmark record gates on, in-tree."""
    verdicts = check_equivalence(num_requests=9, concurrency=3,
                                 max_batch=3, seed=1, max_len=10)
    assert verdicts == {"transformer": True, "seq2seq": True,
                        "resnet": True}
