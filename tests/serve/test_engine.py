"""InferenceServer: lifecycle, coalescing, backpressure, error paths."""

import threading

import pytest

from repro.serve import (InferenceServer, ModelPool, ServerClosed,
                         ServerSaturated)

SRC = [3, 4, 5, 6]


@pytest.fixture(scope="module")
def pool():
    pool = ModelPool()
    pool.get("transformer")  # warm once for the whole module
    return pool


class _GatedPool(ModelPool):
    """A pool whose ``get`` blocks until the gate opens — lets tests
    hold worker threads mid-batch to observe backpressure and drain."""

    def __init__(self, inner, gate):
        super().__init__(warmup=False)
        self._inner = inner
        self._gate = gate

    def get(self, name):
        self._gate.wait()
        return self._inner.get(name)


class TestLifecycle:
    def test_submit_before_start_raises(self, pool):
        server = InferenceServer(pool)
        with pytest.raises(ServerClosed, match="not started"):
            server.submit("translate", SRC, max_len=4)

    def test_submit_after_shutdown_raises(self, pool):
        with InferenceServer(pool) as server:
            pass
        with pytest.raises(ServerClosed, match="shut down"):
            server.submit("translate", SRC, max_len=4)

    def test_shutdown_is_idempotent(self, pool):
        server = InferenceServer(pool).start()
        server.shutdown()
        server.shutdown()  # must not raise or hang

    def test_context_manager_drains(self, pool):
        with InferenceServer(pool, max_wait_ms=1.0) as server:
            future = server.submit("translate", SRC, max_len=4)
        # __exit__ drained: the future is already resolved
        assert future.done()
        assert isinstance(future.result(timeout=0), list)

    def test_invalid_knobs_raise(self, pool):
        for kwargs in ({"max_batch": 0}, {"max_wait_ms": -1.0},
                       {"max_queue": 0}, {"workers": 0},
                       {"length_bucket": 0}):
            with pytest.raises(ValueError):
                InferenceServer(pool, **kwargs)


class TestCoalescing:
    def test_full_bucket_dispatches_one_batch(self, pool):
        # 4 identical requests, max_batch=4, generous max_wait: the
        # scheduler must coalesce them into a single micro-batch.
        server = InferenceServer(pool, max_batch=4, max_wait_ms=1000.0)
        with server:
            futures = [server.submit("translate", SRC, max_len=4)
                       for _ in range(4)]
            server.drain()
        results = [f.result(timeout=0) for f in futures]
        assert all(r == results[0] for r in results)
        snap = server.stats.snapshot()
        assert snap["batches"]["count"] == 1
        assert snap["batches"]["histogram"] == {"4": 1}
        assert snap["requests"]["completed"] == 4

    def test_partial_bucket_flushes_on_max_wait(self, pool):
        server = InferenceServer(pool, max_batch=16, max_wait_ms=5.0)
        with server:
            future = server.submit("translate", SRC, max_len=4)
            assert server.drain(timeout=30.0)
        assert future.done()
        assert server.stats.snapshot()["batches"]["count"] == 1

    def test_incompatible_requests_get_separate_batches(self, pool):
        import numpy as np

        pool.get("seq2seq")
        server = InferenceServer(pool, max_batch=8, max_wait_ms=2.0)
        frames = np.zeros((3, 16), dtype=np.float32)
        with server:
            t = server.submit("translate", SRC, max_len=4)
            s = server.submit("transcribe", frames, max_len=4)
            server.drain()
        assert t.result(timeout=0) is not None
        assert s.result(timeout=0) is not None
        assert server.stats.snapshot()["batches"]["count"] == 2


class TestBackpressure:
    def test_nonblocking_submit_raises_when_saturated(self, pool):
        gate = threading.Event()
        gated = _GatedPool(pool, gate)
        server = InferenceServer(gated, max_queue=2, max_batch=1,
                                 max_wait_ms=0.0)
        with server:
            first = server.submit("translate", SRC, max_len=4)
            second = server.submit("translate", SRC, max_len=4)
            with pytest.raises(ServerSaturated):
                server.submit("translate", SRC, max_len=4, block=False)
            with pytest.raises(ServerSaturated):
                server.submit("translate", SRC, max_len=4, block=True,
                              timeout=0.01)
            assert server.stats.rejected == 2
            gate.set()                       # release the workers
            server.drain()
            # slots freed: a new submit succeeds again
            third = server.submit("translate", SRC, max_len=4)
            server.drain()
        assert first.result(timeout=0) == second.result(timeout=0)
        assert third.result(timeout=0) == first.result(timeout=0)

    def test_drain_timeout_reports_inflight_work(self, pool):
        gate = threading.Event()
        gated = _GatedPool(pool, gate)
        server = InferenceServer(gated, max_wait_ms=0.0)
        with server:
            server.submit("translate", SRC, max_len=4)
            assert server.drain(timeout=0.05) is False
            gate.set()
            assert server.drain(timeout=30.0) is True


class TestErrorPaths:
    def test_worker_error_resolves_future_with_exception(self, pool):
        class _BrokenPool(ModelPool):
            def get(self, name):
                raise RuntimeError("model store offline")

        server = InferenceServer(_BrokenPool(warmup=False),
                                 max_wait_ms=0.0)
        with server:
            future = server.submit("translate", SRC, max_len=4)
            server.drain()
            # the worker survives a failed batch and serves the next one
            second = server.submit("translate", SRC, max_len=4)
            server.drain()
        with pytest.raises(RuntimeError, match="model store offline"):
            future.result(timeout=0)
        with pytest.raises(RuntimeError, match="model store offline"):
            second.result(timeout=0)
        snap = server.stats.snapshot()
        assert snap["requests"]["failed"] == 2
        assert snap["requests"]["completed"] == 0

    def test_invalid_request_rejected_at_submit(self, pool):
        with InferenceServer(pool) as server:
            with pytest.raises(ValueError, match="unknown request kind"):
                server.submit("summarize", SRC)
            with pytest.raises(ValueError, match=">= 1 source token"):
                server.submit("translate", [])
        # nothing was accepted, so nothing is in flight
        assert server.stats.snapshot()["requests"]["submitted"] == 0

    def test_scheduler_survives_bucket_key_error(self, pool, monkeypatch):
        # A request that blows up inside bucket_key must fail its own
        # future without killing the scheduler thread or leaking its
        # queue-depth slot (either would hang every later drain()).
        import repro.serve.engine as engine_mod

        real_key = engine_mod.bucket_key
        poison = [99, 98, 97]

        def flaky_key(request, length_bucket):
            if request.payload == poison:
                raise RuntimeError("bucketing exploded")
            return real_key(request, length_bucket)

        monkeypatch.setattr(engine_mod, "bucket_key", flaky_key)
        server = InferenceServer(pool, max_wait_ms=1.0)
        with server:
            bad = server.submit("translate", poison, max_len=4)
            good = server.submit("translate", SRC, max_len=4)
            assert server.drain(timeout=30.0)      # would hang on a leak
        with pytest.raises(RuntimeError, match="bucketing exploded"):
            bad.result(timeout=0)
        assert isinstance(good.result(timeout=0), list)
        snap = server.stats.snapshot()
        assert snap["requests"] == {"submitted": 2, "completed": 1,
                                    "failed": 1, "rejected": 0}
        assert snap["queue"]["depth"] == 0


class TestQueueDepthAccounting:
    """Every request path must return queue depth to zero after drain:
    a leaked slot is a permanent backpressure loss and a hung drain."""

    def _depth(self, server):
        return server.stats.snapshot()["queue"]["depth"]

    def test_success_path_returns_to_zero(self, pool):
        server = InferenceServer(pool, max_batch=2, max_wait_ms=1.0)
        with server:
            futures = [server.submit("translate", SRC, max_len=4)
                       for _ in range(5)]
            assert server.drain(timeout=30.0)
            assert self._depth(server) == 0
        assert all(f.done() for f in futures)

    def test_error_path_returns_to_zero(self, pool):
        class _BrokenPool(ModelPool):
            def get(self, name):
                raise RuntimeError("model store offline")

        server = InferenceServer(_BrokenPool(warmup=False), max_wait_ms=0.0)
        with server:
            future = server.submit("translate", SRC, max_len=4)
            assert server.drain(timeout=30.0)
            assert self._depth(server) == 0
        assert future.exception(timeout=0) is not None

    def test_abandoned_requests_fail_but_do_not_leak(self, pool):
        # shutdown(drain=False) must resolve every accepted request
        # (result or ServerClosed) and release every depth slot
        gate = threading.Event()
        gated = _GatedPool(pool, gate)
        server = InferenceServer(gated, max_wait_ms=0.0).start()
        futures = [server.submit("translate", SRC, max_len=4)
                   for _ in range(3)]
        gate.set()
        server.shutdown(drain=False)
        for future in futures:
            assert future.done()
        assert self._depth(server) == 0

    def test_cancelled_future_does_not_leak_depth(self, pool):
        # a client cancelling its future must not break demux for the
        # rest of the batch or leak the cancelled request's slot
        gate = threading.Event()
        gated = _GatedPool(pool, gate)
        server = InferenceServer(gated, max_batch=4, max_wait_ms=0.0)
        with server:
            futures = [server.submit("translate", SRC, max_len=4)
                       for _ in range(3)]
            futures[0].cancel()
            gate.set()
            assert server.drain(timeout=30.0)
            assert self._depth(server) == 0
        assert futures[1].result(timeout=0) == futures[2].result(timeout=0)
