"""Serving metrics: latency ring buffer and the aggregated counters."""

from repro.serve import LatencyRecorder, ServerStats


class TestLatencyRecorder:
    def test_empty_summary_is_none(self):
        assert LatencyRecorder().summary() is None

    def test_summary_fields(self):
        rec = LatencyRecorder()
        for value in (0.010, 0.020, 0.030):
            rec.record(value)
        summary = rec.summary()
        assert summary["count"] == 3
        assert summary["mean_ms"] == 20.0
        assert summary["p50_ms"] == 20.0
        assert summary["max_ms"] == 30.0
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]

    def test_ring_buffer_overwrites_oldest(self):
        rec = LatencyRecorder(cap=4)
        for value in range(8):
            rec.record(float(value))
        # count/total track everything; the window holds the last 4
        assert rec.count == 8
        assert rec.total == float(sum(range(8)))
        assert sorted(rec._samples) == [4.0, 5.0, 6.0, 7.0]
        assert rec.summary()["max_ms"] == 7000.0


class TestServerStats:
    def test_lifecycle_counters(self):
        stats = ServerStats()
        for _ in range(3):
            stats.record_submit()
        stats.record_reject()
        stats.record_batch(2)
        stats.record_batch(1)
        stats.record_done(0.05, 0.01)
        stats.record_done(0.07, 0.02)
        stats.record_done(0.09, 0.03, failed=True)

        snap = stats.snapshot()
        assert snap["requests"] == {"submitted": 3, "completed": 2,
                                    "failed": 1, "rejected": 1}
        assert snap["queue"] == {"depth": 0, "depth_peak": 3}
        assert snap["batches"]["count"] == 2
        assert snap["batches"]["mean_size"] == 1.5
        assert snap["batches"]["histogram"] == {"1": 1, "2": 1}
        # failed requests are not latency samples
        assert snap["latency"]["count"] == 2
        assert snap["queue_wait"]["count"] == 2

    def test_snapshot_is_json_safe(self):
        import json

        stats = ServerStats()
        stats.record_submit()
        stats.record_batch(1)
        stats.record_done(0.01, 0.001)
        json.dumps(stats.snapshot())  # must not raise
