"""Serving metrics: latency ring buffer and the aggregated counters."""

import pytest

from repro.serve import LatencyRecorder, ServerStats


class TestLatencyRecorder:
    def test_empty_summary_is_none(self):
        assert LatencyRecorder().summary() is None

    @pytest.mark.parametrize("cap", [0, -1, -100])
    def test_non_positive_cap_rejected(self, cap):
        # Regression: cap=0 used to build an empty ring and crash with
        # ZeroDivisionError on the first record()'s index modulo.
        with pytest.raises(ValueError, match="cap"):
            LatencyRecorder(cap=cap)

    def test_single_sample_summary_well_defined(self):
        rec = LatencyRecorder(cap=1)
        rec.record(0.040)
        summary = rec.summary()
        assert summary["window"] == 1
        # with one sample every order statistic IS that sample
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"):
            assert summary[key] == pytest.approx(40.0), key

    def test_summary_fields(self):
        rec = LatencyRecorder()
        for value in (0.010, 0.020, 0.030):
            rec.record(value)
        summary = rec.summary()
        assert summary["window"] == 3
        assert summary["count_lifetime"] == 3
        assert summary["mean_ms"] == 20.0
        assert summary["p50_ms"] == 20.0
        assert summary["max_ms"] == 30.0
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]

    def test_ring_buffer_overwrites_oldest(self):
        rec = LatencyRecorder(cap=4)
        for value in range(8):
            rec.record(float(value))
        # count/total track everything; the window holds the last 4
        assert rec.count == 8
        assert rec.total == float(sum(range(8)))
        assert sorted(rec._samples) == [4.0, 5.0, 6.0, 7.0]
        assert rec.summary()["max_ms"] == 7000.0

    def test_summary_is_windowed_after_wraparound(self):
        # Regression: the mean used to be lifetime (total/count) while
        # the percentiles were windowed, so after the ring wrapped a
        # latency regression moved p50 but a long calm history pinned
        # the mean.  Every statistic must describe the ring window.
        rec = LatencyRecorder(cap=4)
        for _ in range(100):
            rec.record(0.001)           # long calm history...
        for _ in range(4):
            rec.record(1.0)             # ...then a regression fills the ring
        summary = rec.summary()
        assert summary["window"] == 4
        assert summary["count_lifetime"] == 104
        # windowed mean agrees with the windowed percentiles
        assert summary["mean_ms"] == pytest.approx(1000.0)
        assert summary["p50_ms"] == pytest.approx(1000.0)
        # the old buggy lifetime mean would have been ~39ms
        assert summary["mean_ms"] > 900.0


class TestServerStats:
    def test_lifecycle_counters(self):
        stats = ServerStats()
        for _ in range(3):
            stats.record_submit()
        stats.record_reject()
        stats.record_batch(2)
        stats.record_batch(1)
        stats.record_done(0.05, 0.01)
        stats.record_done(0.07, 0.02)
        stats.record_done(0.09, 0.03, failed=True)

        snap = stats.snapshot()
        assert snap["requests"] == {"submitted": 3, "completed": 2,
                                    "failed": 1, "rejected": 1}
        assert snap["queue"] == {"depth": 0, "depth_peak": 3}
        assert snap["batches"]["count"] == 2
        assert snap["batches"]["mean_size"] == 1.5
        assert snap["batches"]["histogram"] == {"1": 1, "2": 1}
        # failed requests are not latency samples
        assert snap["latency"]["window"] == 2
        assert snap["latency"]["count_lifetime"] == 2
        assert snap["queue_wait"]["window"] == 2

    def test_resilience_counters(self):
        stats = ServerStats()
        snap = stats.snapshot()
        assert snap["resilience"]["degradation"] == "ok"
        assert snap["resilience"]["scrubs"] == 0

        stats.record_scrub(checked=88, restored=1, uncorrectable=0,
                           duration_s=0.002)
        stats.record_fault("probe")
        stats.record_fault("crc")
        stats.record_fault("probe")
        stats.record_retry()
        stats.record_recovered()
        stats.record_deadline()
        stats.record_degraded_rejection()
        stats.set_degradation("open")

        res = stats.snapshot()["resilience"]
        assert res["scrubs"] == 1
        assert res["scrub_tensors"] == 88
        assert res["restores"] == 1
        assert res["faults_detected"] == 3
        assert res["fault_kinds"] == {"crc": 1, "probe": 2}
        assert res["retries"] == 1
        assert res["recovered_batches"] == 1
        assert res["deadline_expired"] == 1
        assert res["degraded_rejections"] == 1
        assert res["degradation"] == "open"

    def test_snapshot_is_json_safe(self):
        import json

        stats = ServerStats()
        stats.record_submit()
        stats.record_batch(1)
        stats.record_done(0.01, 0.001)
        stats.record_scrub(1, 0, 0, 0.001)
        stats.record_fault("crc")
        json.dumps(stats.snapshot())  # must not raise

    def test_snapshot_embeds_obs_registry(self):
        stats = ServerStats()
        stats.record_submit()
        snap = stats.snapshot()
        # the registry dump rides along so BENCH_serve.json carries it
        assert "obs" in snap
        assert "repro_serve_requests_total" in snap["obs"]
