"""Micro-batch assembly: request validation, bucket keys, demux."""

import numpy as np
import pytest

from repro.nn import deterministic_matmul
from repro.rng import fresh_rng
from repro.serve import ModelPool, Request, bucket_key, run_microbatch
from repro.serve.batching import serial_reference


@pytest.fixture(scope="module")
def pool():
    return ModelPool()


# ----------------------------------------------------------- validation
class TestRequestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            Request("summarize", [1, 2, 3])

    def test_translate_empty_source(self):
        with pytest.raises(ValueError, match=">= 1 source token"):
            Request("translate", [])

    def test_translate_coerces_tokens_to_int(self):
        req = Request("translate", np.array([3, 4, 5]))
        assert req.payload == [3, 4, 5]
        assert all(isinstance(t, int) for t in req.payload)

    def test_transcribe_needs_2d_frames(self):
        with pytest.raises(ValueError, match=r"\(T, feat\) frames"):
            Request("transcribe", np.zeros((2, 3, 4), dtype=np.float32))
        with pytest.raises(ValueError, match=r"\(T, feat\) frames"):
            Request("transcribe", np.zeros((0, 16), dtype=np.float32))

    def test_classify_needs_3d_image(self):
        with pytest.raises(ValueError, match=r"\(C, H, W\)"):
            Request("classify", np.zeros((16, 16), dtype=np.float32))

    def test_model_name_mapping(self):
        assert Request("translate", [3]).model_name == "transformer"
        frames = np.zeros((2, 16), dtype=np.float32)
        assert Request("transcribe", frames).model_name == "seq2seq"
        image = np.zeros((3, 16, 16), dtype=np.float32)
        assert Request("classify", image).model_name == "resnet"


# ----------------------------------------------------------- bucket keys
class TestBucketKey:
    def test_translate_groups_by_length_granule(self):
        short_a = Request("translate", [3] * 4)
        short_b = Request("translate", [5] * 6)
        longer = Request("translate", [3] * 20)
        assert bucket_key(short_a, 8) == bucket_key(short_b, 8)
        assert bucket_key(short_a, 8) != bucket_key(longer, 8)

    def test_decode_options_split_buckets(self):
        plain = Request("translate", [3, 4, 5])
        capped = Request("translate", [3, 4, 5], max_len=8)
        beam = Request("translate", [3, 4, 5], beam_size=2)
        keys = {bucket_key(r, 8) for r in (plain, capped, beam)}
        assert len(keys) == 3

    def test_transcribe_buckets_by_exact_frame_count(self):
        a = Request("transcribe", np.zeros((5, 16), dtype=np.float32))
        b = Request("transcribe", np.zeros((5, 16), dtype=np.float32))
        c = Request("transcribe", np.zeros((6, 16), dtype=np.float32))
        assert bucket_key(a, 8) == bucket_key(b, 8)
        assert bucket_key(a, 8) != bucket_key(c, 8)

    def test_classify_buckets_by_image_shape(self):
        a = Request("classify", np.zeros((3, 16, 16), dtype=np.float32))
        b = Request("classify", np.zeros((3, 16, 16), dtype=np.float32))
        c = Request("classify", np.zeros((3, 8, 8), dtype=np.float32))
        assert bucket_key(a, 8) == bucket_key(b, 8)
        assert bucket_key(a, 8) != bucket_key(c, 8)

    def test_bad_length_bucket(self):
        with pytest.raises(ValueError, match="length_bucket"):
            bucket_key(Request("translate", [3]), 0)


# ---------------------------------------------------------------- demux
class TestRunMicrobatch:
    def test_empty_batch_raises(self, pool):
        with pytest.raises(ValueError, match="empty micro-batch"):
            run_microbatch(pool.get("resnet"), [])

    def test_translate_padded_batch_matches_serial(self, pool):
        entry = pool.get("transformer")
        rng = fresh_rng(11)
        requests = [Request("translate",
                            rng.integers(3, 64, size=n).tolist(),
                            max_len=12)
                    for n in (4, 7, 5, 7)]
        with deterministic_matmul():
            batched = run_microbatch(entry, requests)
            serial = serial_reference(entry, requests)
        assert batched == serial
        assert all(isinstance(ids, list) for ids in batched)

    def test_transcribe_batch_matches_serial(self, pool):
        entry = pool.get("seq2seq")
        rng = fresh_rng(12)
        requests = [Request("transcribe",
                            rng.standard_normal((5, 16)).astype(np.float32),
                            max_len=10)
                    for _ in range(3)]
        with deterministic_matmul():
            batched = run_microbatch(entry, requests)
            serial = serial_reference(entry, requests)
        assert batched == serial

    def test_classify_batch_matches_serial(self, pool):
        entry = pool.get("resnet")
        rng = fresh_rng(13)
        requests = [Request("classify",
                            rng.standard_normal((3, 16, 16)
                                                ).astype(np.float32))
                    for _ in range(4)]
        with deterministic_matmul():
            batched = run_microbatch(entry, requests)
            serial = serial_reference(entry, requests)
        assert batched == serial
        assert all(isinstance(label, int) for label in batched)
