"""Warm-model pool: lazy build, sharing, quantizer attachment, warmup."""

import threading

import pytest

from repro.nn.quantize import QuantSpec
from repro.serve import ModelPool


@pytest.fixture(scope="module")
def pool():
    return ModelPool()


def test_get_builds_once_and_shares(pool):
    first = pool.get("transformer")
    second = pool.get("transformer")
    assert first is second
    assert first.model is second.model
    assert first.name == "transformer"
    assert first.profile is None
    assert first.fp32_score is None  # untrained seeded weights


def test_warm_models_lists_resolved_families(pool):
    pool.get("transformer")
    assert "transformer" in pool.warm_models()


def test_unknown_model_raises(pool):
    with pytest.raises(ValueError, match="unknown model"):
        pool.get("not-a-model")


def test_model_is_in_eval_mode(pool):
    assert pool.get("transformer").model.training is False


def test_quant_tuple_becomes_spec():
    quant_pool = ModelPool(quant=("adaptivfloat", 8), warmup=False)
    assert quant_pool.quant == QuantSpec("adaptivfloat", 8)


def test_weight_cache_stats_empty_without_quant(pool):
    pool.get("transformer")
    assert pool.weight_cache_stats() == {}


def test_warmup_primes_weight_quant_memo():
    quant_pool = ModelPool(quant=("adaptivfloat", 8))
    quant_pool.get("resnet")  # resnet has the cheapest warmup forward
    stats = quant_pool.weight_cache_stats()["resnet"]
    assert stats["misses"] > 0          # every weight quantized once
    # a second forward is all hits: frozen weights never re-quantize
    import numpy as np

    from repro.nn import no_grad
    from repro.rng import fresh_rng

    entry = quant_pool.get("resnet")
    cfg = entry.model.config
    images = fresh_rng(7).standard_normal(
        (1, cfg.in_channels, cfg.image_size, cfg.image_size)
    ).astype(np.float32)
    with no_grad():
        entry.model(images)
    after = quant_pool.weight_cache_stats()["resnet"]
    assert after["misses"] == stats["misses"]
    assert after["hits"] > stats["hits"]


def test_build_failure_caches_nothing_and_retry_succeeds(monkeypatch):
    # Regression guard: a quantizer dying mid-attach must leave the
    # pool empty (no poisoned half-built entry), propagate the error to
    # the caller, and let a later get() rebuild cleanly.
    import repro.serve.pool as pool_mod

    real_attach = pool_mod.attach_weight_quantizers
    calls = {"n": 0}

    def flaky_attach(model, spec):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("quantizer died mid-attach")
        return real_attach(model, spec)

    monkeypatch.setattr(pool_mod, "attach_weight_quantizers", flaky_attach)
    pool = ModelPool(quant=("adaptivfloat", 8), warmup=False)
    with pytest.raises(RuntimeError, match="died mid-attach"):
        pool.get("transformer")
    assert pool.warm_models() == ()          # nothing half-built cached
    entry = pool.get("transformer")          # retry rebuilds from scratch
    assert entry.name == "transformer"
    assert pool.warm_models() == ("transformer",)
    assert calls["n"] == 2


def test_enable_scrubbing_snapshots_built_models():
    pool = ModelPool(warmup=False)
    pool.get("transformer")
    assert pool.get("transformer").scrubber is None
    pool.enable_scrubbing()
    scrubber = pool.get("transformer").scrubber
    assert scrubber is not None
    assert scrubber.verify() == []           # snapshot taken, weights clean
    pool.enable_scrubbing()                  # idempotent
    assert pool.get("transformer").scrubber is scrubber
    assert "transformer" in pool.scrub_counters()


def test_concurrent_first_gets_build_one_instance():
    pool = ModelPool(warmup=False)
    results = []
    barrier = threading.Barrier(4)

    def grab():
        barrier.wait()
        results.append(pool.get("transformer"))

    threads = [threading.Thread(target=grab) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 4
    assert all(entry is results[0] for entry in results)
