"""Framework tests: suppression, baseline workflow, CLI, and the
repo-clean invariant (the committed tree lints clean)."""

import json
import pathlib
import textwrap

import pytest

from repro.lint import (all_rules, lint_source, load_baseline, run_lint,
                        save_baseline)
from repro.lint.cli import DEFAULT_BASELINE, find_repo_root, main
from repro.lint.core import Finding, iter_python_files

REPO_ROOT = find_repo_root(pathlib.Path(__file__).resolve().parent)

BAD_SNIPPET = textwrap.dedent("""
    import numpy as np
    x = np.random.randn(4)
""")


# -------------------------------------------------------------- suppression
class TestInlineSuppression:
    PATH = "src/repro/data/streams.py"

    def test_named_suppression(self):
        src = ("import numpy as np\n"
               "x = np.random.randn(4)  # reprocheck: disable=ND001\n")
        found, suppressed = lint_source(src, self.PATH)
        assert found == []
        assert [f.rule for f in suppressed] == ["ND001"]

    def test_bare_suppression_silences_all_rules(self):
        src = ("import numpy as np\n"
               "x = np.random.randn(4)  # reprocheck: disable\n")
        found, suppressed = lint_source(src, self.PATH)
        assert found == [] and len(suppressed) == 1

    def test_wrong_rule_id_does_not_suppress(self):
        src = ("import numpy as np\n"
               "x = np.random.randn(4)  # reprocheck: disable=DT001\n")
        found, _ = lint_source(src, self.PATH)
        assert [f.rule for f in found] == ["ND001"]

    def test_marker_in_string_literal_is_inert(self):
        src = ("import numpy as np\n"
               "note = '# reprocheck: disable'\n"
               "x = np.random.randn(4)\n")
        found, _ = lint_source(src, self.PATH)
        assert [f.rule for f in found] == ["ND001"]

    def test_mixed_case_and_whitespace_rule_list(self):
        src = ("import numpy as np\n"
               "x = np.random.randn(4)  # RePrOcHeCk: Disable = nd001 , DT001\n")
        found, suppressed = lint_source(src, self.PATH)
        assert found == []
        assert [f.rule for f in suppressed] == ["ND001"]

    def test_first_line_of_multiline_statement(self):
        # findings anchor on the statement's first line, so that is
        # where the marker must sit — not on a continuation line
        src = ("import numpy as np\n"
               "x = np.random.randn(  # reprocheck: disable=ND001\n"
               "    4)\n")
        found, suppressed = lint_source(src, self.PATH)
        assert found == [] and len(suppressed) == 1

    def test_continuation_line_marker_does_not_suppress(self):
        src = ("import numpy as np\n"
               "x = np.random.randn(\n"
               "    4)  # reprocheck: disable=ND001\n")
        found, _ = lint_source(src, self.PATH)
        assert [f.rule for f in found] == ["ND001"]

    def test_decorated_def_suppression_on_def_line(self):
        # CB001 anchors on the `def` line (not the decorator), so the
        # marker goes there even for decorated entry points
        src = textwrap.dedent("""
            from .base import Quantizer

            class MyFormat(Quantizer):
                @staticmethod
                def quantize(x):  # reprocheck: disable=CB001
                    return x
        """)
        found, suppressed = lint_source(src, "src/repro/formats/custom.py")
        assert [f.rule for f in found] == []
        assert [f.rule for f in suppressed] == ["CB001"]

    def test_decorated_def_fires_without_marker(self):
        src = textwrap.dedent("""
            from .base import Quantizer

            class MyFormat(Quantizer):
                @staticmethod
                def quantize(x):
                    return x
        """)
        found, _ = lint_source(src, "src/repro/formats/custom.py")
        assert [f.rule for f in found] == ["CB001"]


# ----------------------------------------------------------------- baseline
@pytest.fixture
def fake_repo(tmp_path):
    """A minimal repo tree with one ND001 violation in src/."""
    pkg = tmp_path / "src" / "repro" / "data"
    pkg.mkdir(parents=True)
    (pkg / "streams.py").write_text(BAD_SNIPPET, encoding="utf-8")
    (tmp_path / "pyproject.toml").write_text("[project]\n", encoding="utf-8")
    return tmp_path


class TestBaseline:
    def test_roundtrip_and_matching(self, fake_repo):
        report = run_lint(fake_repo)
        assert len(report.findings) == 1
        baseline = fake_repo / DEFAULT_BASELINE
        save_baseline(baseline, report.findings)
        assert load_baseline(baseline) != []

        again = run_lint(fake_repo, baseline_path=baseline)
        assert again.findings == [] and len(again.baselined) == 1
        assert again.exit_code == 0

    def test_baseline_survives_line_moves(self, fake_repo):
        baseline = fake_repo / DEFAULT_BASELINE
        save_baseline(baseline, run_lint(fake_repo).findings)
        target = fake_repo / "src" / "repro" / "data" / "streams.py"
        target.write_text("# a new comment shifts every line\n"
                          + target.read_text(encoding="utf-8"),
                          encoding="utf-8")
        report = run_lint(fake_repo, baseline_path=baseline)
        assert report.findings == [] and len(report.baselined) == 1

    def test_stale_entries_reported(self, fake_repo):
        baseline = fake_repo / DEFAULT_BASELINE
        save_baseline(baseline, run_lint(fake_repo).findings)
        target = fake_repo / "src" / "repro" / "data" / "streams.py"
        target.write_text("import numpy as np\n", encoding="utf-8")
        report = run_lint(fake_repo, baseline_path=baseline)
        assert report.findings == [] and len(report.stale_baseline) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_new_finding_not_masked_by_baseline(self, fake_repo):
        baseline = fake_repo / DEFAULT_BASELINE
        save_baseline(baseline, run_lint(fake_repo).findings)
        extra = fake_repo / "src" / "repro" / "data" / "extra.py"
        extra.write_text("import random\nrandom.seed(1)\n", encoding="utf-8")
        report = run_lint(fake_repo, baseline_path=baseline)
        assert len(report.findings) == 1
        assert report.findings[0].path.endswith("extra.py")


class TestBaselineMultiset:
    """Identical findings are matched as a multiset: N occurrences need
    N baseline entries, so a freshly-introduced duplicate still surfaces."""

    DUPLICATED = ("import numpy as np\n"
                  "x = np.random.randn(4)\n"
                  "y = np.random.randn(4)\n")

    @pytest.fixture
    def dup_repo(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "data"
        pkg.mkdir(parents=True)
        (pkg / "streams.py").write_text(self.DUPLICATED, encoding="utf-8")
        (tmp_path / "pyproject.toml").write_text("[project]\n",
                                                 encoding="utf-8")
        return tmp_path

    def test_duplicate_not_absorbed_by_single_entry(self, dup_repo):
        report = run_lint(dup_repo)
        assert len(report.findings) == 2
        keys = {f.baseline_key for f in report.findings}
        assert len(keys) == 1  # same (rule, path, message) twice

        baseline = dup_repo / DEFAULT_BASELINE
        save_baseline(baseline, report.findings[:1])  # only ONE entry
        again = run_lint(dup_repo, baseline_path=baseline)
        assert len(again.baselined) == 1
        assert len(again.findings) == 1  # the duplicate still surfaces

    def test_two_entries_absorb_both(self, dup_repo):
        baseline = dup_repo / DEFAULT_BASELINE
        save_baseline(baseline, run_lint(dup_repo).findings)
        assert len(load_baseline(baseline)) == 2
        again = run_lint(dup_repo, baseline_path=baseline)
        assert again.findings == [] and len(again.baselined) == 2

    def test_excess_entries_go_stale_individually(self, dup_repo):
        baseline = dup_repo / DEFAULT_BASELINE
        save_baseline(baseline, run_lint(dup_repo).findings)  # 2 entries
        target = dup_repo / "src" / "repro" / "data" / "streams.py"
        target.write_text("import numpy as np\nx = np.random.randn(4)\n",
                          encoding="utf-8")  # one occurrence fixed
        report = run_lint(dup_repo, baseline_path=baseline)
        assert report.findings == []
        assert len(report.baselined) == 1
        assert len(report.stale_baseline) == 1


# ------------------------------------------------------------ file walking
class TestIterPythonFiles:
    def test_skips_caches_artifacts_and_hidden_dirs(self, tmp_path):
        src = tmp_path / "src"
        keep = src / "repro" / "ok.py"
        skipped = [
            src / "repro" / "__pycache__" / "ok.cpython-39.py",
            src / "repro" / "artifacts" / "generated.py",
            src / "repro" / ".hidden" / "secret.py",
            src / "__pycache__" / "stale.py",
            src / ".venv" / "lib" / "site.py",
        ]
        for path in [keep] + skipped:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("x = 1\n", encoding="utf-8")
        found = list(iter_python_files(tmp_path, targets=("src",)))
        assert found == [keep]

    def test_nested_skip_dirs(self, tmp_path):
        deep = tmp_path / "tests" / "lint" / "__pycache__" / "sub" / "x.py"
        deep.parent.mkdir(parents=True)
        deep.write_text("x = 1\n", encoding="utf-8")
        ok = tmp_path / "tests" / "lint" / "test_ok.py"
        ok.write_text("x = 1\n", encoding="utf-8")
        found = list(iter_python_files(tmp_path, targets=("tests",)))
        assert found == [ok]

    def test_single_file_target(self, tmp_path):
        single = tmp_path / "tools" / "reprocheck.py"
        single.parent.mkdir()
        single.write_text("x = 1\n", encoding="utf-8")
        assert list(iter_python_files(
            tmp_path, targets=("tools/reprocheck.py",))) == [single]


# ---------------------------------------------------------------------- CLI
class TestCli:
    def test_exit_one_on_findings(self, fake_repo, capsys):
        assert main(["--root", str(fake_repo)]) == 1
        out = capsys.readouterr().out
        assert "ND001" in out and "1 finding(s)" in out

    def test_json_format(self, fake_repo, capsys):
        main(["--root", str(fake_repo), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule"] == "ND001"

    def test_write_baseline_then_clean(self, fake_repo, capsys):
        assert main(["--root", str(fake_repo), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["--root", str(fake_repo)]) == 0

    def test_rule_selection(self, fake_repo):
        assert main(["--root", str(fake_repo), "--rules", "DT001"]) == 0
        assert main(["--root", str(fake_repo), "--rules", "ND001",
                     "--no-baseline"]) == 1

    def test_unknown_rule_is_usage_error(self, fake_repo, capsys):
        assert main(["--root", str(fake_repo), "--rules", "XX999"]) == 2

    def test_all_unknown_rules_reported_at_once(self, fake_repo, capsys):
        assert main(["--root", str(fake_repo),
                     "--rules", "BOGUS,ND001,NOPE"]) == 2
        err = capsys.readouterr().err
        assert "BOGUS" in err and "NOPE" in err and "known:" in err

    def test_sarif_format(self, fake_repo, capsys):
        assert main(["--root", str(fake_repo), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprocheck"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"ND001", "HW001"} <= rule_ids
        results = run["results"]
        assert results[0]["ruleId"] == "ND001"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("streams.py")
        assert location["region"]["startLine"] >= 1
        assert run["invocations"][0]["executionSuccessful"]

    def test_sarif_clean_tree_has_empty_results(self, fake_repo, capsys):
        assert main(["--root", str(fake_repo), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["--root", str(fake_repo), "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []

    def test_hw_table(self, capsys):
        assert main(["--hw-table"]) == 0
        out = capsys.readouterr().out
        assert "adaptivfloat" in out and "PROVED" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_parse_error_is_exit_two(self, fake_repo, capsys):
        bad = fake_repo / "src" / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        assert main(["--root", str(fake_repo)]) == 2


# --------------------------------------------------------------- invariants
class TestRepoClean:
    def test_committed_tree_lints_clean(self):
        """The acceptance gate: the real repo has zero actionable findings."""
        report = run_lint(REPO_ROOT,
                          baseline_path=REPO_ROOT / DEFAULT_BASELINE)
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], rendered
        assert report.parse_errors == []
        assert report.files_checked > 100

    def test_baseline_within_budget(self):
        """ISSUE acceptance: committed baseline carries <= 5 suppressions."""
        entries = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
        assert len(entries) <= 5

    def test_finding_render_shape(self):
        f = Finding(rule="ND001", path="src/x.py", line=3, col=4, message="m")
        assert f.render() == "src/x.py:3:5: ND001 m"
        assert f.baseline_key == ("ND001", "src/x.py", "m")
