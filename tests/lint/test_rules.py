"""Per-rule tests: each rule fires on a bad snippet and stays quiet once
the snippet is fixed (or moved out of the rule's scope)."""

import textwrap

from repro.lint import lint_source


def findings(src, path, rule=None):
    found, _ = lint_source(textwrap.dedent(src), path)
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


# ------------------------------------------------------------------- ND001
class TestUnseededRandom:
    PATH = "src/repro/data/streams.py"

    def test_fires_on_unseeded_default_rng(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        # (ND002 also fires on this snippet — module-scope Generator born
        # outside repro.rng — which is covered by its own test class)
        assert [f.rule for f in findings(src, self.PATH, "ND001")] == ["ND001"]

    def test_fires_on_legacy_numpy_global(self):
        src = """
        import numpy as np
        x = np.random.randn(3)
        np.random.seed(0)
        """
        assert len(findings(src, self.PATH, "ND001")) == 2

    def test_fires_on_stdlib_random(self):
        src = """
        import random
        x = random.random()
        """
        assert len(findings(src, self.PATH, "ND001")) == 1

    def test_fires_on_from_import(self):
        src = """
        from random import shuffle
        shuffle([1, 2])
        """
        assert len(findings(src, self.PATH, "ND001")) == 1

    def test_quiet_on_seeded_generator(self):
        src = """
        import numpy as np
        from repro.rng import default_rng, fresh_rng
        a = np.random.default_rng(42)
        b = default_rng(None)
        c = fresh_rng(7)
        """
        assert findings(src, self.PATH, "ND001") == []

    def test_quiet_inside_rng_helper_module(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert findings(src, "src/repro/rng.py", "ND001") == []

    def test_handles_import_alias(self):
        src = """
        import numpy as xp
        x = xp.random.rand(3)
        """
        assert len(findings(src, self.PATH, "ND001")) == 1


# ------------------------------------------------------------------- DT001
class TestDtypeDrift:
    PATH = "src/repro/formats/newfmt.py"

    def test_fires_without_dtype(self):
        src = """
        import numpy as np
        x = np.zeros(4)
        y = np.arange(10)
        """
        assert len(findings(src, self.PATH, "DT001")) == 2

    def test_quiet_with_dtype_keyword(self):
        src = """
        import numpy as np
        x = np.zeros(4, dtype=np.float64)
        """
        assert findings(src, self.PATH, "DT001") == []

    def test_quiet_with_positional_dtype(self):
        src = """
        import numpy as np
        x = np.zeros(4, np.float64)
        y = np.full((2, 2), 0.5, np.float32)
        """
        assert findings(src, self.PATH, "DT001") == []

    def test_quiet_outside_hot_paths(self):
        src = """
        import numpy as np
        x = np.zeros(4)
        """
        assert findings(src, "src/repro/analysis/tables.py", "DT001") == []


# ------------------------------------------------------------------- AG001
class TestAutogradMutation:
    PATH = "src/repro/experiments/table9.py"

    def test_fires_on_data_write(self):
        src = "w.data = w.data * 2\n"
        assert len(findings(src, self.PATH, "AG001")) == 1

    def test_fires_on_grad_subscript_and_augassign(self):
        src = """
        w.grad[0] = 1.0
        w.data += 1.0
        """
        assert len(findings(src, self.PATH, "AG001")) == 2

    def test_quiet_in_whitelisted_module(self):
        src = "param.data = value\n"
        assert findings(src, "src/repro/nn/optim.py", "AG001") == []

    def test_quiet_in_tests(self):
        src = "w.data = 0\n"
        assert findings(src, "tests/nn/test_foo.py", "AG001") == []

    def test_quiet_on_reads(self):
        src = "x = w.data * 2 + w.grad.sum()\n"
        assert findings(src, self.PATH, "AG001") == []


# ------------------------------------------------------------------- PK001
class TestPicklability:
    PATH = "src/repro/experiments/tableX.py"

    def test_fires_on_lambda(self):
        src = "scores = run_cells(lambda c: c, cells, jobs=4)\n"
        assert len(findings(src, self.PATH, "PK001")) == 1

    def test_fires_on_nested_function(self):
        src = """
        def run():
            def cell_fn(c):
                return c
            return run_cells(cell_fn, [])
        """
        assert len(findings(src, self.PATH, "PK001")) == 1

    def test_fires_on_callable_built_at_call_site(self):
        src = "scores = run_cells(make_fn(), cells)\n"
        assert len(findings(src, self.PATH, "PK001")) == 1

    def test_quiet_on_module_level_function(self):
        src = """
        def run_cell(c):
            return c

        def run():
            return run_cells(run_cell, [])
        """
        assert findings(src, self.PATH, "PK001") == []


# ------------------------------------------------------------------ API001
class TestPublicApiDrift:
    PATH = "src/repro/widgets.py"

    def test_fires_on_phantom_export(self):
        src = """
        __all__ = ["missing_thing"]
        """
        found = findings(src, self.PATH, "API001")
        assert len(found) == 1 and "missing_thing" in found[0].message

    def test_fires_on_undeclared_public_def(self):
        src = """
        __all__ = []

        def shiny():
            pass
        """
        found = findings(src, self.PATH, "API001")
        assert len(found) == 1 and "shiny" in found[0].message

    def test_quiet_when_in_sync(self):
        src = """
        __all__ = ["shiny", "CONST"]

        CONST = 1

        def shiny():
            pass

        def _private():
            pass
        """
        assert findings(src, self.PATH, "API001") == []

    def test_quiet_without_all_declaration(self):
        src = "def anything():\n    pass\n"
        assert findings(src, self.PATH, "API001") == []

    def test_quiet_outside_src(self):
        src = "__all__ = [\"ghost\"]\n"
        assert findings(src, "tools/helper.py", "API001") == []

    def test_conditional_bindings_count(self):
        src = """
        __all__ = ["maybe"]

        try:
            from fastlib import maybe
        except ImportError:
            maybe = None
        """
        assert findings(src, self.PATH, "API001") == []


# ------------------------------------------------------------------- CB001
class TestCodebookBypass:
    PATH = "src/repro/formats/custom.py"

    def test_fires_on_quantize_override(self):
        src = """
        from .base import Quantizer

        class MyFormat(Quantizer):
            def quantize(self, x):
                return x
        """
        assert len(findings(src, self.PATH, "CB001")) == 1

    def test_fires_on_quantize_with_params_override(self):
        src = """
        from .base import AdaptiveQuantizer

        class MyFormat(AdaptiveQuantizer):
            def quantize_with_params(self, x, params):
                return x
        """
        assert len(findings(src, self.PATH, "CB001")) == 1

    def test_quiet_on_analytic_hooks(self):
        src = """
        from .base import Quantizer

        class MyFormat(Quantizer):
            def _quantize_analytic(self, x):
                return x

            def _codebook_key(self, params):
                return None

            def codepoints(self):
                return []
        """
        assert findings(src, self.PATH, "CB001") == []

    def test_quiet_on_unrelated_base(self):
        src = """
        class MyFormat(SomethingElse):
            def quantize(self, x):
                return x
        """
        assert findings(src, self.PATH, "CB001") == []
