"""Cross-module rule tests (ND002 / DT002 / PK002 / CK001) driven
through ``lint_sources`` — several in-memory files linted as one
project, exactly how the rules see the real tree."""

import textwrap

from repro.lint import lint_sources


def findings(files, rule):
    found, _ = lint_sources({path: textwrap.dedent(text)
                             for path, text in files.items()})
    return [f for f in found if f.rule == rule]


RNG_MODULE = {
    "src/repro/rng.py": """
        import numpy as np

        def default_rng(seed):
            return np.random.default_rng(seed)

        def fresh_rng(seed):
            return np.random.default_rng(seed)
    """,
}


# ------------------------------------------------------------------- ND002
class TestSeedTaint:
    def test_fires_on_module_scope_generator(self):
        files = dict(RNG_MODULE)
        files["src/repro/data/foo.py"] = """
            from ..rng import fresh_rng
            RNG = fresh_rng(0)
        """
        found = findings(files, "ND002")
        assert len(found) == 1 and "module scope" in found[0].message
        assert found[0].path == "src/repro/data/foo.py"

    def test_fires_on_direct_external_construction(self):
        files = {"src/repro/data/foo.py": """
            import numpy as np

            def sample(seed):
                return np.random.default_rng(seed).normal()
        """}
        found = findings(files, "ND002")
        assert len(found) == 1 and "repro.rng" in found[0].message

    def test_fires_on_hash_seed_through_intermediates(self):
        files = dict(RNG_MODULE)
        files["src/repro/data/foo.py"] = """
            from ..rng import fresh_rng

            def sample(name, seed):
                offset = hash(name) % 65536
                return fresh_rng(seed + offset)
        """
        found = findings(files, "ND002")
        assert len(found) == 1 and "'hash'" in found[0].message

    def test_fires_on_time_seed(self):
        files = dict(RNG_MODULE)
        files["src/repro/data/foo.py"] = """
            import time
            from ..rng import fresh_rng

            def sample():
                return fresh_rng(int(time.time()))
        """
        assert len(findings(files, "ND002")) == 1

    def test_quiet_on_pure_seed_per_use(self):
        files = dict(RNG_MODULE)
        files["src/repro/data/foo.py"] = """
            import zlib
            from ..rng import fresh_rng

            def sample(name, seed):
                rng = fresh_rng(seed + zlib.crc32(name.encode()) % 65536)
                return rng.normal()
        """
        assert findings(files, "ND002") == []

    def test_quiet_inside_rng_module_itself(self):
        assert findings(dict(RNG_MODULE), "ND002") == []

    def test_quiet_outside_src(self):
        files = {"tests/data/test_foo.py": """
            import numpy as np
            RNG = np.random.default_rng(0)
        """}
        assert findings(files, "ND002") == []

    def test_local_hash_shadow_is_not_taint(self):
        files = dict(RNG_MODULE)
        files["src/repro/data/foo.py"] = """
            from ..rng import fresh_rng

            def hash(x):
                return 7

            def sample(name):
                return fresh_rng(hash(name))
        """
        assert findings(files, "ND002") == []


# ------------------------------------------------------------------- DT002
class TestDtypeFlow:
    PATH = "src/repro/formats/newfmt.py"

    def test_fires_on_mixed_arithmetic(self):
        files = {self.PATH: """
            import numpy as np

            def mix(n):
                a = np.zeros(n, dtype=np.float32)
                b = np.ones(n, dtype=np.float64)
                return a * b
        """}
        found = findings(files, "DT002")
        assert len(found) == 1 and "float32 and float64" in found[0].message

    def test_fires_through_astype(self):
        files = {self.PATH: """
            import numpy as np

            def mix(n):
                a = np.zeros(n, dtype=np.float32)
                c = a.astype(np.float64)
                return a + c
        """}
        assert len(findings(files, "DT002")) == 1

    def test_fires_on_string_dtype_literals(self):
        files = {self.PATH: """
            import numpy as np

            def mix(n):
                a = np.zeros(n, dtype="float32")
                b = np.zeros(n, dtype="float64")
                return a - b
        """}
        assert len(findings(files, "DT002")) == 1

    def test_quiet_on_consistent_dtypes(self):
        files = {self.PATH: """
            import numpy as np

            def ok(n):
                a = np.zeros(n, dtype=np.float32)
                b = np.ones(n, dtype=np.float32)
                return a * b
        """}
        assert findings(files, "DT002") == []

    def test_quiet_outside_hot_paths(self):
        files = {"src/repro/analysis/tables.py": """
            import numpy as np

            def mix(n):
                a = np.zeros(n, dtype=np.float32)
                b = np.ones(n, dtype=np.float64)
                return a * b
        """}
        assert findings(files, "DT002") == []


# ------------------------------------------------------------------- PK002
RUNNER_MODULE = {
    "src/repro/experiments/runner.py": """
        def run_cells(fn, cells, jobs=1):
            return [fn(c) for c in cells]
    """,
}


class TestCallGraphPicklability:
    def test_fires_on_imported_lambda_alias(self):
        files = dict(RUNNER_MODULE)
        files["src/repro/experiments/cells.py"] = """
            square = lambda c: c["n"] ** 2
        """
        files["src/repro/experiments/table2.py"] = """
            from .cells import square
            from .runner import run_cells

            def sweep(cells):
                return run_cells(square, cells, jobs=4)
        """
        found = findings(files, "PK002")
        assert len(found) == 1 and "lambda" in found[0].message
        assert found[0].path == "src/repro/experiments/table2.py"

    def test_quiet_on_imported_module_level_def(self):
        files = dict(RUNNER_MODULE)
        files["src/repro/experiments/cells.py"] = """
            def square(c):
                return c["n"] ** 2
        """
        files["src/repro/experiments/table2.py"] = """
            from .cells import square
            from .runner import run_cells

            def sweep(cells):
                return run_cells(square, cells, jobs=4)
        """
        assert findings(files, "PK002") == []

    def test_fires_on_reachable_nested_dispatch(self):
        files = dict(RUNNER_MODULE)
        files["src/repro/experiments/table2.py"] = """
            from .runner import run_cells

            def inner_sweep(cell):
                return run_cells(score_cell, cell["subcells"])

            def score_cell(c):
                return c

            def cell_fn(cell):
                return inner_sweep(cell)

            def sweep(cells):
                return run_cells(cell_fn, cells, jobs=4)
        """
        found = findings(files, "PK002")
        assert any("deadlock" in f.message for f in found)

    def test_quiet_on_unrelated_run_cells(self):
        files = {"src/repro/other.py": """
            def run_cells(fn, cells):
                return [fn(c) for c in cells]

            bad = lambda c: c

            def go(cells):
                return run_cells(bad, cells)
        """}
        assert findings(files, "PK002") == []


# ------------------------------------------------------------------- CK001
CACHE_MODULE = {
    "src/repro/cache.py": """
        import hashlib
        import json

        def content_key(payload):
            blob = json.dumps(payload, sort_keys=True)
            return hashlib.sha256(blob.encode()).hexdigest()

        def store_cached_json(namespace, key, value):
            pass
    """,
}


class TestCacheKeyPurity:
    def test_fires_on_set_in_key_payload(self):
        files = dict(CACHE_MODULE)
        files["src/repro/experiments/foo.py"] = """
            from ..cache import content_key

            def key_for(cells):
                return content_key({"cells": {1, 2, 3}})
        """
        found = findings(files, "CK001")
        assert len(found) == 1 and "iteration order" in found[0].message

    def test_fires_on_set_constructor_through_binding(self):
        files = dict(CACHE_MODULE)
        files["src/repro/experiments/foo.py"] = """
            from ..cache import content_key

            def key_for(names):
                unique = set(names)
                return content_key({"names": unique})
        """
        assert len(findings(files, "CK001")) == 1

    def test_fires_on_timestamp_into_store(self):
        files = dict(CACHE_MODULE)
        files["src/repro/experiments/foo.py"] = """
            import time
            from ..cache import store_cached_json

            def save(key, value):
                store_cached_json("ns", key, {"v": value, "t": time.time()})
        """
        found = findings(files, "CK001")
        assert len(found) == 1 and "timestamps" in found[0].message

    def test_quiet_on_sorted_list(self):
        files = dict(CACHE_MODULE)
        files["src/repro/experiments/foo.py"] = """
            from ..cache import content_key

            def key_for(names):
                return content_key({"names": sorted(set(names))})
        """
        assert findings(files, "CK001") == []

    def test_quiet_on_plain_payload(self):
        files = dict(CACHE_MODULE)
        files["src/repro/experiments/foo.py"] = """
            from ..cache import content_key

            def key_for(cell, salt):
                return content_key({"cell": cell, "salt": salt})
        """
        assert findings(files, "CK001") == []


# ------------------------------------------------------------------- HW001
class TestAccumulatorOverflowRule:
    def test_quiet_when_datapath_absent(self):
        assert findings({"src/repro/x.py": "a = 1\n"}, "HW001") == []

    def test_quiet_on_the_real_registry(self):
        # anchoring file present -> the rule runs the full prover; the
        # committed formats/datapath must be sound
        files = {"src/repro/hardware/datapath.py": """
            class IntVectorMac:
                pass

            class HFIntVectorMac:
                pass
        """}
        assert findings(files, "HW001") == []
