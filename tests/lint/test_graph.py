"""ProjectGraph tests: symbol tables, import-chain resolution, aliases,
external references, and the call graph's reachability query."""

import textwrap

from repro.lint.core import FileContext
from repro.lint.graph import (ExternalRef, ProjectGraph, SymbolDef,
                              module_name_for)


def graph_of(files):
    contexts = [FileContext(path, textwrap.dedent(text))
                for path, text in files.items()]
    return ProjectGraph(contexts)


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert module_name_for("src/repro/formats/base.py") == \
            "repro.formats.base"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/formats/__init__.py") == \
            "repro.formats"

    def test_non_src_paths_keep_their_prefix(self):
        assert module_name_for("tests/lint/test_core.py") == \
            "tests.lint.test_core"
        assert module_name_for("tools/reprocheck.py") == "tools.reprocheck"


class TestResolution:
    def test_local_def(self):
        g = graph_of({"src/repro/util.py": """
            def helper():
                pass
        """})
        sym = g.resolve("repro.util", "helper")
        assert isinstance(sym, SymbolDef)
        assert sym.qualified == "repro.util.helper" and sym.kind == "function"

    def test_import_chain_resolves_to_home_module(self):
        g = graph_of({
            "src/repro/util.py": "def helper():\n    pass\n",
            "src/repro/api.py": "from repro.util import helper as h\n",
        })
        sym = g.resolve("repro.api", "h")
        assert isinstance(sym, SymbolDef)
        assert sym.qualified == "repro.util.helper"

    def test_relative_import_resolves(self):
        g = graph_of({
            "src/repro/pkg/__init__.py": "from .mod import thing\n",
            "src/repro/pkg/mod.py": "def thing():\n    pass\n",
            "src/repro/user.py": "from repro.pkg import thing\n",
        })
        # two hops: user -> pkg/__init__ re-export -> pkg.mod def
        sym = g.resolve("repro.user", "thing")
        assert isinstance(sym, SymbolDef)
        assert sym.qualified == "repro.pkg.mod.thing"

    def test_parent_relative_import(self):
        g = graph_of({
            "src/repro/rng.py": "def fresh_rng(seed):\n    pass\n",
            "src/repro/data/images.py": "from ..rng import fresh_rng\n",
        })
        sym = g.resolve("repro.data.images", "fresh_rng")
        assert isinstance(sym, SymbolDef)
        assert sym.qualified == "repro.rng.fresh_rng"

    def test_external_name_keeps_full_dotted_target(self):
        g = graph_of({"src/repro/x.py": "import numpy as np\n"})
        hit = g.resolve("repro.x", "np.random.default_rng")
        assert hit == ExternalRef("numpy.random.default_rng")

    def test_assignment_alias_is_followed(self):
        g = graph_of({"src/repro/x.py": """
            def _impl():
                pass

            run = _impl
        """})
        sym = g.resolve("repro.x", "run")
        assert isinstance(sym, SymbolDef) and sym.name == "_impl"

    def test_star_import_fallback(self):
        g = graph_of({
            "src/repro/base.py": "def shiny():\n    pass\n",
            "src/repro/wild.py": "from repro.base import *\n",
        })
        sym = g.resolve("repro.wild", "shiny")
        assert isinstance(sym, SymbolDef)
        assert sym.qualified == "repro.base.shiny"

    def test_unknown_name_is_none(self):
        g = graph_of({"src/repro/x.py": "a = 1\n"})
        assert g.resolve("repro.x", "ghost") is None
        assert g.resolve("no.such.module", "x") is None

    def test_conditional_import_is_seen(self):
        g = graph_of({
            "src/repro/opt.py": "def fast():\n    pass\n",
            "src/repro/x.py": """
                try:
                    from repro.opt import fast
                except ImportError:
                    fast = None
            """,
        })
        sym = g.resolve("repro.x", "fast")
        assert sym is not None

    def test_nested_defs_catalogued_but_not_importable(self):
        g = graph_of({"src/repro/x.py": """
            def outer():
                def inner():
                    pass
                return inner
        """})
        table = g.table_for_path("src/repro/x.py")
        assert "inner" in table.nested_defs and table.nested_defs["inner"].nested
        assert g.resolve("repro.x", "inner") is None
        assert g.lookup_qualified("repro.x.inner").nested


class TestCallGraph:
    FILES = {
        "src/repro/a.py": """
            from repro.b import middle

            def top():
                return middle()
        """,
        "src/repro/b.py": """
            from repro.c import leaf

            def middle():
                return leaf() + leaf()
        """,
        "src/repro/c.py": """
            def leaf():
                return 1

            def unrelated():
                return 2
        """,
    }

    def test_callees_are_resolved_cross_module(self):
        g = graph_of(self.FILES)
        top = g.resolve("repro.a", "top")
        assert g.callees(top) == {"repro.b.middle"}

    def test_reachability_is_transitive(self):
        g = graph_of(self.FILES)
        top = g.resolve("repro.a", "top")
        names = {s.qualified for s in g.reachable(top)}
        assert names == {"repro.a.top", "repro.b.middle", "repro.c.leaf"}

    def test_dynamic_calls_do_not_poison_the_graph(self):
        g = graph_of({"src/repro/x.py": """
            def f(cb):
                return cb() + getattr(object, "x")()
        """})
        sym = g.resolve("repro.x", "f")
        assert g.callees(sym) == set()
