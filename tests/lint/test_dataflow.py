"""Dataflow-engine tests: tag propagation, branch joins, loop fixpoints,
and call-site observation — the machinery under ND002/DT002/CK001."""

import ast
import textwrap

from repro.lint.dataflow import (BOTTOM, DataflowEngine, TransferRules,
                                 join, join_envs)

TAINT = frozenset({"taint"})


class Tainter(TransferRules):
    """Tags the result of any ``taint()`` call; records ``sink(x)`` hits."""

    def __init__(self):
        self.sink_hits = []

    def eval_expr(self, expr, env, engine):
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id == "taint":
            return TAINT
        return None

    def on_call(self, call, env, engine):
        if isinstance(call.func, ast.Name) and call.func.id == "sink":
            for arg in call.args:
                self.sink_hits.append(engine.eval_expr(arg, env))


def run(src, function=None):
    tree = ast.parse(textwrap.dedent(src))
    rules = Tainter()
    engine = DataflowEngine(rules)
    if function is None:
        env = engine.run_body(tree.body)
    else:
        fn = next(n for n in ast.walk(tree)
                  if isinstance(n, ast.FunctionDef) and n.name == function)
        env = engine.run_function(fn)
    return env, rules


class TestPropagation:
    def test_assignment_chains(self):
        env, _ = run("""
            a = taint()
            b = a
            c = b + 1
        """)
        assert env["a"] == env["b"] == env["c"] == TAINT

    def test_untainted_stays_bottom(self):
        env, _ = run("x = 1\ny = x * 2\n")
        assert env["x"] == env["y"] == BOTTOM

    def test_rebinding_clears_the_tag(self):
        env, _ = run("a = taint()\na = 0\n")
        assert env["a"] == BOTTOM

    def test_augassign_merges(self):
        env, _ = run("a = 1\na += taint()\n")
        assert env["a"] == TAINT

    def test_tuple_unpacking(self):
        env, _ = run("a, (b, c) = taint()\n")
        assert env["a"] == env["b"] == env["c"] == TAINT

    def test_call_result_unions_argument_tags(self):
        env, _ = run("a = taint()\nb = f(1, key=a)\n")
        assert env["b"] == TAINT

    def test_containers_union_elements(self):
        env, _ = run("a = taint()\nb = [1, a]\nc = {'k': a}\n")
        assert env["b"] == TAINT and env["c"] == TAINT

    def test_walrus_binds(self):
        env, _ = run("y = (x := taint())\n")
        assert env["x"] == TAINT and env["y"] == TAINT

    def test_del_removes_binding(self):
        env, _ = run("a = taint()\ndel a\n")
        assert "a" not in env


class TestControlFlow:
    def test_branches_join(self):
        env, _ = run("""
            if cond:
                a = taint()
            else:
                a = 0
        """)
        assert env["a"] == TAINT  # over-approximation keeps the tag

    def test_loop_reaches_fixpoint(self):
        env, _ = run("""
            a = 0
            for i in items:
                b = a
                a = taint()
        """)
        # second pass sees the tainted `a` from the first: fixpoint needed
        assert env["a"] == TAINT and env["b"] == TAINT

    def test_while_loop_carried_taint(self):
        env, _ = run("""
            a = 0
            while a < 10:
                a = a + taint()
        """)
        assert env["a"] == TAINT

    def test_try_except_joins(self):
        env, _ = run("""
            a = 0
            try:
                a = taint()
            except ValueError:
                b = a
        """)
        # handler may run after the body assigned: b sees the join
        assert env["a"] == TAINT and env["b"] == TAINT

    def test_with_binds_context_value(self):
        env, _ = run("with taint() as h:\n    x = h\n")
        assert env["h"] == TAINT and env["x"] == TAINT

    def test_comprehension_target_scoped(self):
        env, _ = run("out = [v for v in taint()]\n")
        assert env["out"] == TAINT and "v" not in env


class TestFunctionsAndSinks:
    def test_parameters_start_bottom(self):
        env, _ = run("""
            def f(a, b, *args, k=None, **kw):
                c = a
        """, function="f")
        for name in ("a", "b", "args", "k", "kw", "c"):
            assert env[name] == BOTTOM

    def test_sink_observes_current_env(self):
        _, rules = run("""
            a = taint()
            sink(a)
            sink(1)
        """)
        assert rules.sink_hits == [TAINT, BOTTOM]

    def test_sink_sees_taint_through_intermediates(self):
        _, rules = run("""
            s = taint() % 100
            key = {"seed": s}
            sink(key)
        """)
        assert rules.sink_hits == [TAINT]

    def test_nested_call_still_observed_under_custom_value(self):
        # taint(sink(x)) returns a custom value; sink must still fire
        _, rules = run("x = 1\na = taint(sink(x))\n")
        assert rules.sink_hits == [BOTTOM]


class TestLattice:
    def test_join_is_union(self):
        assert join(frozenset({"a"}), frozenset({"b"})) == frozenset({"a", "b"})
        assert join(BOTTOM, TAINT) == TAINT

    def test_join_envs_unions_per_name(self):
        a = {"x": frozenset({"t1"})}
        b = {"x": frozenset({"t2"}), "y": TAINT}
        merged = join_envs(a, b)
        assert merged == {"x": frozenset({"t1", "t2"}), "y": TAINT}
