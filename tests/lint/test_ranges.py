"""HW001 prover tests.

The static analysis must (a) prove non-overflow where the paper's
register widths cover every representable sum, and (b) refute it with a
concrete witness everywhere saturation is reachable — and each witness
must *replay* through the bit-accurate simulator to exactly the clamp
the prover predicted.
"""

import numpy as np
import pytest

from repro.formats.registry import FORMAT_NAMES, exact_range
from repro.hardware.datapath import HFIntVectorMac, IntVectorMac
from repro.lint.ranges import (PAPER_ACCUM_LENGTH, PAPER_BITS,
                               analyze_format, analyze_registry, proof_table)

ALL_PROOFS = analyze_registry()


class TestIntPeProofs:
    def test_uniform_8bit_proved_overflow_free(self):
        proof = analyze_format("uniform", 8)
        assert proof.pe == "int" and proof.acc_width == 24
        assert proof.sum_max == 256 * 127 * 127 == 4_129_024
        assert proof.sum_max <= 2 ** 23 - 1
        assert proof.proved and proof.witness is None

    def test_uniform_4bit_proved_overflow_free(self):
        proof = analyze_format("uniform", 4)
        assert proof.acc_width == 16
        assert proof.sum_max == 256 * 7 * 7 == 12_544
        assert proof.proved

    def test_int_pe_never_saturates_at_any_registry_config(self):
        """``2n + floor(log2 H)`` always covers ``H * (2**(n-1)-1)**2``:
        the INT PE's clamp is *unreachable* for every registry format."""
        for proof in ALL_PROOFS:
            if proof.pe == "int":
                assert proof.proved, proof

    def test_bfp_shares_the_int_verdict(self):
        for bits in PAPER_BITS:
            assert analyze_format("bfp", bits).proved


class TestHfintPeProofs:
    def test_adaptivfloat_8bit_witness(self):
        proof = analyze_format("adaptivfloat", 8)
        assert proof.pe == "hfint" and proof.acc_width == 30
        assert proof.sound and proof.saturates
        assert proof.witness == {"w_word": 0x7F, "a_word": 0x7F,
                                 "clamp": 2 ** 29 - 1}

    def test_adaptivfloat_4bit_witness(self):
        proof = analyze_format("adaptivfloat", 4)
        assert proof.acc_width == 22
        assert proof.witness == {"w_word": 0x7, "a_word": 0x7,
                                 "clamp": 2 ** 21 - 1}

    def test_witness_exceeds_window_by_construction(self):
        for proof in ALL_PROOFS:
            if proof.saturates:
                assert proof.sum_max > proof.witness["clamp"]


class TestSoundness:
    def test_every_registry_config_is_sound(self):
        """The HW001 CI gate: no (format, bits, H) can wrap before the
        saturation logic fires — neither in the presaturation adder nor
        in the simulator's int64 arithmetic."""
        for proof in ALL_PROOFS:
            assert proof.sound is not False, proof

    def test_registry_fully_covered(self):
        covered = {(p.format, p.bits) for p in ALL_PROOFS}
        for bits in PAPER_BITS:
            for name in FORMAT_NAMES:
                expected_bits = 32 if name == "fp32" else bits
                assert (name, expected_bits) in covered

    def test_no_pe_formats_are_informational(self):
        posit = analyze_format("posit", 8)
        assert posit.pe is None and posit.sound is None
        assert posit.required_width is not None and posit.required_width > 24
        fp32 = analyze_format("fp32", 32)
        assert fp32.pe is None and fp32.witness is None


# --------------------------------------------------------- witness replay
SATURATING = [p for p in ALL_PROOFS if p.saturates]


def _mac_for(proof):
    if proof.pe == "hfint":
        rng = exact_range(proof.format, proof.bits)
        return HFIntVectorMac(proof.bits, rng.exp_bits, proof.accum_length)
    return IntVectorMac(proof.bits, proof.accum_length)


def _operands_for(proof):
    H = proof.accum_length
    if proof.pe == "hfint":
        w = np.full((1, H), proof.witness["w_word"], dtype=np.int64)
        a = np.full(H, proof.witness["a_word"], dtype=np.int64)
    else:
        w = np.full((1, H), proof.witness["w_level"], dtype=np.int64)
        a = np.full(H, proof.witness["a_level"], dtype=np.int64)
    return w, a


@pytest.mark.parametrize("proof", SATURATING,
                         ids=[f"{p.format}-{p.bits}b" for p in SATURATING])
def test_witness_replays_to_predicted_clamp(proof):
    """Acceptance criterion: each refutation witness, replayed through
    the bit-accurate simulator, saturates to exactly the clamp the
    static prover predicted."""
    mac = _mac_for(proof)
    assert mac.acc_width == proof.acc_width
    w, a = _operands_for(proof)
    acc = mac.accumulate(w, a)
    assert acc[0] == proof.witness["clamp"] == 2 ** (mac.acc_width - 1) - 1


def test_saturating_suite_is_nonempty():
    """The paper's own HFINT configs reach the clamp (that is the point
    of a saturating accumulator) — the replay suite must not silently
    become vacuous."""
    assert {(p.format, p.bits) for p in SATURATING} >= {
        ("adaptivfloat", 4), ("adaptivfloat", 8)}


def test_proved_row_replays_below_clamp():
    """Converse check: a PROVED row's worst-case drive stays strictly
    inside the register window (no clamp engaged)."""
    proof = analyze_format("uniform", 8)
    mac = IntVectorMac(8, proof.accum_length)
    w = np.full((1, proof.accum_length), 127, dtype=np.int64)
    a = np.full(proof.accum_length, 127, dtype=np.int64)
    acc = mac.accumulate(w, a)
    assert acc[0] == proof.sum_max < 2 ** (mac.acc_width - 1) - 1


# ------------------------------------------------------------- rendering
def test_proof_table_renders_all_rows():
    text = proof_table(ALL_PROOFS)
    assert "PROVED" in text and "saturation reachable" in text
    assert "no PE datapath" in text
    assert f"H={PAPER_ACCUM_LENGTH}" in text
    for proof in ALL_PROOFS:
        assert proof.format in text


def test_non_power_of_two_h_analyzes():
    # the floor(log2 H) register-sizing corner: H=500 is still sound
    proof = analyze_format("uniform", 8, accum_length=500)
    assert proof.pe == "int" and proof.sound
