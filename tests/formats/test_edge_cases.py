"""Edge-case suite: every registry quantizer over pathological inputs.

The invariants fault injection depends on (ISSUE 4 satellites):

* quantizing never *manufactures* NaN — finite or infinite (non-NaN)
  inputs produce finite outputs, with ±Inf saturating to the extreme
  codepoint, and no floating-point flags are raised along the way
  (checked under ``np.errstate(all="raise")`` + warnings-as-errors);
* 0-d scalars round-trip through the public quantize API (the codebook
  fast path used to crash on ``np.clip(..., out=...)`` with 0-d input);
* empty arrays pass through.

NaN *inputs* are exempt from the errstate discipline (IEEE comparisons
on NaN may legitimately raise the invalid flag) but must never turn a
clean tensor's remaining entries non-finite.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FORMAT_NAMES, make_quantizer
from repro.formats.kernels import analytic_only

BITS = (4, 8)

EDGE_VALUES = [0.0, -0.0, 5e-324, -5e-324, 1e-310, -1e-310,
               2.2250738585072014e-308, 1.0, -1.0, 0.3, -0.7,
               1e30, -1e30, np.inf, -np.inf]


def _quantize_both_paths(name, bits, x):
    """Quantize via the codebook fast path and the analytic reference."""
    fast = make_quantizer(name, bits).quantize(x)
    with analytic_only():
        ref = make_quantizer(name, bits).quantize(x)
    return fast, ref


@pytest.mark.parametrize("bits", BITS)
@pytest.mark.parametrize("name", FORMAT_NAMES)
class TestEdgeInputs:
    def test_no_nan_from_non_nan_inputs(self, name, bits):
        x = np.array(EDGE_VALUES, dtype=np.float64)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # under="ignore": uniform's non-power-of-two scale division
            # legitimately sets the underflow flag on subnormal inputs.
            with np.errstate(all="raise", under="ignore"):
                fast, ref = _quantize_both_paths(name, bits, x)
        assert np.isfinite(fast).all(), (name, bits, fast)
        assert np.isfinite(ref).all(), (name, bits, ref)

    def test_inf_saturates_to_extreme_codepoint(self, name, bits):
        x = np.array([1.0, -2.0, np.inf, -np.inf, 0.5])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with np.errstate(all="raise", under="ignore"):
                fast, ref = _quantize_both_paths(name, bits, x)
        for out in (fast, ref):
            top = np.abs(out).max()
            assert np.isfinite(top)
            assert out[2] == top and out[3] == -top, (name, bits, out)

    def test_nan_input_never_corrupts_other_elements(self, name, bits):
        x = np.array([0.25, np.nan, -0.75])
        fast, ref = _quantize_both_paths(name, bits, x)
        for out in (fast, ref):
            assert np.isfinite(out[[0, 2]]).all(), (name, bits, out)

    def test_zero_d_scalar_round_trips(self, name, bits):
        out = make_quantizer(name, bits).quantize(np.float64(0.3))
        assert isinstance(out, np.ndarray) and out.ndim == 0
        assert np.isfinite(float(out))
        signed = make_quantizer(name, bits).quantize(np.array(-0.3))
        assert signed.ndim == 0 and float(signed) <= 0.0

    def test_zero_d_matches_one_d(self, name, bits):
        for value in (0.0, -0.0, 0.3, -1.7, 1e30):
            scalar = make_quantizer(name, bits).quantize(np.float64(value))
            vector = make_quantizer(name, bits).quantize(np.array([value]))
            assert float(scalar) == float(vector[0]), (name, bits, value)

    def test_empty_array_passes_through(self, name, bits):
        out = make_quantizer(name, bits).quantize(np.empty(0))
        assert out.shape == (0,)
        fit_capable = make_quantizer(name, bits)
        if hasattr(fit_capable, "fit"):
            fit_capable.fit(np.empty(0))  # must not raise

    def test_all_inf_tensor(self, name, bits):
        x = np.array([np.inf, -np.inf])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with np.errstate(all="raise", under="ignore"):
                fast, ref = _quantize_both_paths(name, bits, x)
        assert np.isfinite(fast).all() and np.isfinite(ref).all()


@pytest.mark.parametrize("name", FORMAT_NAMES)
@settings(max_examples=40, deadline=None)
@given(data=st.lists(
    st.one_of(
        st.floats(allow_nan=False, allow_infinity=True, width=64),
        st.sampled_from([0.0, -0.0, np.inf, -np.inf, 5e-324, 1e-310])),
    min_size=1, max_size=24))
def test_hypothesis_no_nan_manufacture(name, data):
    """Property form: arbitrary non-NaN floats never quantize to NaN."""
    x = np.array(data, dtype=np.float64)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with np.errstate(all="raise", under="ignore"):
            out = make_quantizer(name, 8).quantize(x)
    assert np.isfinite(out).all(), (name, x, out)


@pytest.mark.parametrize("name", FORMAT_NAMES)
def test_uniform_style_inf_regression(name):
    """The original bug: ±Inf drove ``fit`` scale to inf -> inf/inf NaN."""
    rng = np.random.default_rng(7)
    x = rng.normal(size=64)
    x[5] = np.inf
    x[11] = -np.inf
    quantizer = make_quantizer(name, 8)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with np.errstate(all="raise", under="ignore"):
            out = quantizer.quantize(x)
    assert np.isfinite(out).all()
    # The finite mass still quantizes sensibly: the fitted grid must not
    # have been dragged out by the infinities.
    finite_ref = make_quantizer(name, 8).quantize(x[np.isfinite(x)])
    assert np.allclose(np.delete(out, [5, 11]), finite_ref)
