"""Codebook fast-path tests: bit-exact equivalence, caching, eligibility.

The contract under test (``repro.formats.kernels``): for every eligible
``(format, bits, round_mode, params)`` combination the table-driven
quantizer returns *bit-identical* outputs to the analytic reference —
including at codepoints, at decision thresholds, one ulp either side of
them, and at extreme/denormal inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import RoundMode, kernels, make_quantizer
from repro.formats.kernels import (AffineCodebook, LutCodebook,
                                   SearchCodebook, exact_thresholds)

#: every registered format that quantizes through the codebook machinery
ALL_FORMATS = ("adaptivfloat", "float", "bfp", "uniform", "posit",
               "fixedpoint", "logquant")
TABLE_BITS = (3, 4, 5, 6, 7, 8)
DETERMINISTIC_MODES = (RoundMode.NEAREST_EVEN, RoundMode.NEAREST_AWAY)


@pytest.fixture(autouse=True)
def fresh_cache():
    kernels.clear_codebook_cache()
    yield
    kernels.clear_codebook_cache()


def _make(fmt: str, bits: int,
          round_mode: str = RoundMode.NEAREST_EVEN):
    if fmt in ("logquant", "posit"):  # fixed rounding rule, no knob
        return make_quantizer(fmt, bits) \
            if round_mode == RoundMode.NEAREST_EVEN else None
    kwargs = {"round_mode": round_mode}
    if fmt in ("adaptivfloat", "float") and bits < 5:
        kwargs["exp_bits"] = bits - 1 if fmt == "float" else bits - 2
    return make_quantizer(fmt, bits, **kwargs)


def _both_paths(quantizer, params, x):
    """Quantize ``x`` on a frozen grid via fast path and analytic path."""
    # errstate: the ±inf probes legitimately trip inf/inf in the
    # analytic reference; only the outputs matter here.
    with np.errstate(divide="ignore", invalid="ignore"):
        if params is None:
            fast = quantizer.quantize(x)
            with kernels.analytic_only():
                reference = quantizer.quantize(x)
        else:
            fast = quantizer.quantize_with_params(x, params)
            with kernels.analytic_only():
                reference = quantizer.quantize_with_params(x, params)
    return fast, reference


def _adversarial_probes(quantizer, params, x: np.ndarray) -> np.ndarray:
    """Inputs biased toward decision boundaries and extremes."""
    codebook = kernels.get_codebook(quantizer, params)
    extras = [x, [0.0, -0.0, 1e300, -1e300, np.inf, -np.inf,
                  5e-324, -5e-324, 2.0 ** -1022]]
    if codebook is not None and getattr(codebook, "thresholds", None) \
            is not None:
        thr = codebook.thresholds
        extras += [codebook.table, thr,
                   np.nextafter(thr, -np.inf), np.nextafter(thr, np.inf)]
    return np.concatenate([np.ravel(np.asarray(e, dtype=np.float64))
                           for e in extras])


@pytest.mark.parametrize("round_mode", DETERMINISTIC_MODES)
@pytest.mark.parametrize("bits", TABLE_BITS)
@pytest.mark.parametrize("fmt", ALL_FORMATS)
def test_codebook_bit_exact_vs_analytic(fmt, bits, round_mode):
    quantizer = _make(fmt, bits, round_mode)
    if quantizer is None:
        pytest.skip("format has a fixed rounding rule")
    rng = np.random.default_rng(bits * 1000 + len(fmt))
    x = np.concatenate([rng.standard_normal(4096) * 0.1,
                        rng.standard_normal(256) * 100.0,
                        rng.standard_normal(256) * 1e-6])
    params = quantizer.fit(x) if hasattr(quantizer, "fit") else None
    probes = _adversarial_probes(quantizer, params, x)
    fast, reference = _both_paths(quantizer, params, probes)
    np.testing.assert_array_equal(fast, reference)


@pytest.mark.parametrize("fmt", ALL_FORMATS)
def test_quantize_idempotent_through_fast_path(fmt):
    quantizer = make_quantizer(fmt, 6)
    x = np.random.default_rng(7).standard_normal(2048) * 0.3
    once = quantizer.quantize(x)
    twice = quantizer.quantize(once)
    np.testing.assert_array_equal(once, twice)


@given(data=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                               allow_nan=False), min_size=1, max_size=64),
       bits=st.sampled_from(TABLE_BITS),
       fmt=st.sampled_from(ALL_FORMATS))
@settings(max_examples=200, deadline=None)
def test_codebook_bit_exact_property(data, bits, fmt):
    quantizer = _make(fmt, bits)
    x = np.asarray(data, dtype=np.float64)
    fast = quantizer.quantize(x)
    with kernels.analytic_only():
        reference = quantizer.quantize(x)
    np.testing.assert_array_equal(fast, reference)


@given(data=st.lists(st.floats(min_value=-1e3, max_value=1e3,
                               allow_nan=False), min_size=1, max_size=32),
       fmt=st.sampled_from(ALL_FORMATS))
@settings(max_examples=100, deadline=None)
def test_quantize_idempotence_property(data, fmt):
    quantizer = _make(fmt, 5)
    once = quantizer.quantize(np.asarray(data, dtype=np.float64))
    np.testing.assert_array_equal(once, quantizer.quantize(once))


# --------------------------------------------------------------- eligibility
def test_stochastic_rounding_bypasses_table_path():
    quantizer = make_quantizer("uniform", 8, round_mode=RoundMode.STOCHASTIC,
                               rng=np.random.default_rng(0))
    assert kernels.get_codebook(quantizer, {"scale": 0.5}) is None


def test_bits_above_cap_bypass_table_path():
    quantizer = make_quantizer("uniform", 16)
    assert quantizer.bits > kernels.max_table_bits()
    assert kernels.get_codebook(quantizer, {"scale": 0.5}) is None


def test_vector_params_bypass_table_path():
    quantizer = make_quantizer("bfp", 8, block_size=16)
    params = quantizer.fit(np.linspace(-1, 1, 64))
    assert kernels.get_codebook(quantizer, params) is None
    # ... and the analytic path still serves them
    out = quantizer.quantize(np.linspace(-1, 1, 64))
    assert out.shape == (64,)


def test_table_bits_cap_is_adjustable():
    quantizer = make_quantizer("fixedpoint", 8)
    try:
        kernels.set_max_table_bits(4)
        assert kernels.get_codebook(quantizer, None) is None
    finally:
        kernels.set_max_table_bits(8)
    assert kernels.get_codebook(quantizer, None) is not None


def test_analytic_only_context_restores():
    quantizer = make_quantizer("fixedpoint", 8)
    with kernels.analytic_only():
        assert kernels.get_codebook(quantizer, None) is None
    assert kernels.get_codebook(quantizer, None) is not None


# ------------------------------------------------------------------- caching
def test_cache_hits_and_param_invalidation():
    quantizer = make_quantizer("adaptivfloat", 8)
    x = np.random.default_rng(0).standard_normal(128)
    quantizer.quantize(x)
    stats0 = kernels.codebook_cache_stats()
    quantizer.quantize(x * 1.0001)  # same exp_bias -> cache hit
    stats1 = kernels.codebook_cache_stats()
    assert stats1["builds"] == stats0["builds"]
    assert stats1["hits"] > stats0["hits"]
    quantizer.quantize(x * 1e4)  # different exp_bias -> new grid
    stats2 = kernels.codebook_cache_stats()
    assert stats2["builds"] == stats1["builds"] + 1


def test_cache_is_bounded_lru():
    quantizer = make_quantizer("uniform", 8)
    try:
        kernels.set_cache_size(4)
        for i in range(10):
            kernels.get_codebook(quantizer, {"scale": 1.0 + i})
        assert kernels.codebook_cache_stats()["entries"] <= 4
        assert kernels.codebook_cache_stats()["evictions"] >= 6
    finally:
        kernels.set_cache_size(128)


def test_distinct_specs_get_distinct_entries():
    a = make_quantizer("adaptivfloat", 8, exp_bits=3)
    b = make_quantizer("adaptivfloat", 8, exp_bits=4)
    ca = kernels.get_codebook(a, {"exp_bias": -7})
    cb = kernels.get_codebook(b, {"exp_bias": -7})
    assert ca is not cb
    assert not np.array_equal(ca.table, cb.table)


# ---------------------------------------------------------------- strategies
def test_strategy_selection():
    assert isinstance(
        kernels.get_codebook(make_quantizer("fixedpoint", 8), None),
        AffineCodebook)
    assert isinstance(
        kernels.get_codebook(make_quantizer("bfp", 8), {"shared_exp": 0}),
        AffineCodebook)
    assert isinstance(
        kernels.get_codebook(make_quantizer("adaptivfloat", 8),
                             {"exp_bias": -10}),
        LutCodebook)
    assert isinstance(
        kernels.get_codebook(make_quantizer("float", 8), None), LutCodebook)


def test_search_codebook_agrees_with_lut():
    quantizer = make_quantizer("float", 8)
    lut = kernels.get_codebook(quantizer, None)
    search = SearchCodebook(lut.table, lut.thresholds)
    x = np.random.default_rng(3).standard_normal(4096) * 3.0
    np.testing.assert_array_equal(search.quantize(x), lut.quantize(x))


def test_exact_thresholds_recovers_tie_breaks():
    # Round-to-nearest-even on integers: the tie at 0.5 goes DOWN to 0,
    # at 1.5 UP to 2 - the thresholds must capture that asymmetry.
    table = np.array([0.0, 1.0, 2.0])
    thr = exact_thresholds(np.rint, table)
    assert thr is not None
    assert np.rint(thr[0]) == 1.0 and np.rint(np.nextafter(thr[0], -1)) == 0.0
    assert thr[1] == 1.5  # rint(1.5) == 2.0 (even): 1.5 itself maps up
    assert np.rint(np.nextafter(thr[1], -1)) == 1.0


def test_exact_thresholds_rejects_non_idempotent_reference():
    table = np.array([0.0, 1.0])
    assert exact_thresholds(lambda v: v + 0.25, table) is None


def test_nan_maps_to_largest_codepoint_on_table_path():
    quantizer = make_quantizer("float", 8)
    out = quantizer.quantize(np.array([np.nan]))
    assert out[0] == quantizer.codepoints()[-1]
