"""Shared helpers for format tests: a brute-force nearest-codepoint oracle."""

from __future__ import annotations

import numpy as np


def assert_is_nearest_codepoint(quantized: np.ndarray, x: np.ndarray,
                                codepoints: np.ndarray, rel_tol: float = 1e-12) -> None:
    """Assert each quantized value is *a* nearest codepoint of ``x``.

    Ties are allowed to break either way, so we only require the achieved
    distance to match the minimum distance (within floating-point slack),
    and the output to be an exact codepoint.
    """
    points = np.sort(np.asarray(codepoints, dtype=np.float64))
    q = np.ravel(np.asarray(quantized, dtype=np.float64))
    v = np.ravel(np.asarray(x, dtype=np.float64))
    for qi, vi in zip(q, v):
        dists = np.abs(points - vi)
        best = dists.min()
        achieved = abs(qi - vi)
        slack = rel_tol * max(1.0, abs(vi), best)
        assert achieved <= best + slack, (
            f"quantize({vi!r}) = {qi!r} but nearest codepoint is at distance "
            f"{best!r} (achieved {achieved!r})")
        assert np.isclose(points, qi, rtol=1e-12, atol=0.0).any() or qi == 0.0, (
            f"{qi!r} is not a codepoint")
