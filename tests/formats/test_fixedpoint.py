"""Tests for the classic fixed-point (Q-format) quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FixedPoint

from .helpers import assert_is_nearest_codepoint


class TestFixedPoint:
    def test_quantum(self):
        assert FixedPoint(8, frac_bits=6).quantum == pytest.approx(2 ** -6)

    def test_range_asymmetric_twos_complement(self):
        q = FixedPoint(4, frac_bits=2)
        points = q.codepoints()
        assert points[0] == pytest.approx(-2.0)     # -2^(n-1) * 2^-f
        assert points[-1] == pytest.approx(1.75)    # (2^(n-1)-1) * 2^-f

    def test_static_grid_misses_wide_values(self):
        # The intro's criticism of fixed point: a Q2.6-style grid cannot
        # represent a weight of 20 (wide NLP distribution).
        q = FixedPoint(8, frac_bits=6)
        assert q.quantize(np.array([20.0]))[0] == pytest.approx(127 / 64)

    def test_fine_grid_on_narrow_values(self):
        q = FixedPoint(8, frac_bits=6)
        x = np.array([0.3, -0.7])
        assert np.abs(q.quantize(x) - x).max() <= 2 ** -7

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=64)
        q = FixedPoint(6, frac_bits=3)
        once = q.quantize(x)
        np.testing.assert_array_equal(q.quantize(once), once)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(min_value=-50, max_value=50,
                       allow_nan=False, allow_infinity=False),
             min_size=1, max_size=16),
    st.sampled_from([(4, 2), (6, 3), (8, 6), (8, 0)]),
)
def test_quantize_is_nearest_codepoint(values, config):
    bits, frac_bits = config
    x = np.asarray(values, dtype=np.float64)
    q = FixedPoint(bits, frac_bits)
    assert_is_nearest_codepoint(q.quantize(x), x, q.codepoints())
