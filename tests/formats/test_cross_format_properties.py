"""Cross-format property tests: invariants every quantizer must satisfy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FORMAT_NAMES, make_quantizer

ALL_FORMATS = FORMAT_NAMES + ("fixedpoint", "logquant")


def _build(fmt, bits):
    return make_quantizer(fmt, bits)


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(ALL_FORMATS),
    st.sampled_from([4, 6, 8]),
    st.lists(st.floats(min_value=-50, max_value=50,
                       allow_nan=False, allow_infinity=False),
             min_size=2, max_size=24),
)
def test_weak_monotonicity(fmt, bits, values):
    """x <= y implies q(x) <= q(y): rounding never reorders values."""
    x = np.sort(np.asarray(values, dtype=np.float64))
    if np.abs(x).max() == 0.0:
        return
    q = _build(fmt, bits).quantize(x)
    assert np.all(np.diff(q) >= -1e-12), (fmt, bits, x, q)


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(ALL_FORMATS),
    st.sampled_from([4, 6, 8]),
    st.lists(st.floats(min_value=-50, max_value=50,
                       allow_nan=False, allow_infinity=False),
             min_size=1, max_size=24),
)
def test_odd_symmetry(fmt, bits, values):
    """q(-x) == -q(x) up to the two's-complement asymmetry of fixedpoint."""
    if fmt == "fixedpoint":
        return  # -2^(n-1) has no positive counterpart
    x = np.asarray(values, dtype=np.float64)
    if np.abs(x).max() == 0.0:
        return
    quantizer = _build(fmt, bits)
    if hasattr(quantizer, "fit"):
        params = quantizer.fit(x)  # shared grid for both signs
        pos = quantizer.quantize_with_params(x, params)
        neg = quantizer.quantize_with_params(-x, params)
    else:
        pos = quantizer.quantize(x)
        neg = quantizer.quantize(-x)
    np.testing.assert_allclose(neg, -pos, rtol=0, atol=0)


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(ALL_FORMATS),
    st.sampled_from([4, 6, 8]),
)
def test_codepoint_budget(fmt, bits):
    """No format may represent more than 2**bits distinct values."""
    quantizer = _build(fmt, bits)
    try:
        points = quantizer.codepoints()
    except TypeError:
        points = quantizer.codepoints(0)
    assert len(np.unique(points)) <= 2 ** bits


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(ALL_FORMATS),
    st.lists(st.floats(min_value=-20, max_value=20,
                       allow_nan=False, allow_infinity=False),
             min_size=1, max_size=16),
)
def test_more_bits_do_not_hurt_beyond_a_fine_step(fmt, values):
    """Widening the word cannot increase RMS error by more than one
    fine-grid step (grids are not always nested — e.g. uniform's scale
    moves with the level count — so exact monotonicity does not hold)."""
    x = np.asarray(values, dtype=np.float64)
    max_abs = float(np.abs(x).max())
    if max_abs == 0.0:
        return
    errs = [_build(fmt, bits).quantization_error(x) for bits in (4, 8)]
    fine_step = max_abs / (2 ** 7 - 1)
    assert errs[1] <= errs[0] + fine_step + 1e-12, (fmt, errs)
