"""Tests for the logarithmic (power-of-two) extension format."""

import numpy as np
import pytest

from repro.formats import AdaptivFloat, LogQuant, make_quantizer


class TestLogQuant:
    def test_codepoints_are_powers_of_two(self):
        q = LogQuant(4)
        points = q.codepoints(exp_max=0)
        positive = points[points > 0]
        np.testing.assert_allclose(np.log2(positive),
                                   np.rint(np.log2(positive)))
        assert len(positive) == 2 ** 3 - 1

    def test_zero_representable(self):
        q = LogQuant(4)
        assert 0.0 in q.codepoints(exp_max=0)
        assert q.quantize(np.array([0.0]))[0] == 0.0

    def test_log_domain_rounding(self):
        q = LogQuant(6)
        params = {"exp_max": 2}
        # Geometric midpoint between 1 and 2 is sqrt(2).
        below = q.quantize_with_params(np.array([1.40]), params)[0]
        above = q.quantize_with_params(np.array([1.42]), params)[0]
        assert below == 1.0 and above == 2.0

    def test_adaptive_window_follows_max(self):
        q = LogQuant(4)
        assert q.fit(np.array([100.0]))["exp_max"] == int(np.rint(np.log2(100)))
        assert q.fit(np.array([0.01]))["exp_max"] < 0

    def test_tiny_values_round_to_zero(self):
        q = LogQuant(4)
        params = q.fit(np.array([1.0]))
        out = q.quantize_with_params(np.array([1e-9]), params)
        assert out[0] == 0.0

    def test_registry_integration(self):
        q = make_quantizer("logquant", 5)
        assert isinstance(q, LogQuant)

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=128)
        q = LogQuant(6)
        once = q.quantize(x)
        np.testing.assert_array_equal(q.quantize(once), once)

    def test_adaptivfloat_beats_logquant_at_same_bits(self):
        """The mantissa bits AdaptivFloat keeps buy real accuracy: at the
        same word size its RMS error is below pure log quantization."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=8192) * 0.1
        log_err = LogQuant(6).quantization_error(x)
        af_err = AdaptivFloat(6, 3).quantization_error(x)
        assert af_err < log_err

    def test_all_zero_tensor(self):
        q = LogQuant(4)
        np.testing.assert_array_equal(q.quantize(np.zeros(3)), np.zeros(3))
