"""Tests for the numerical-analysis helpers, including first-principles
verification of the paper's accumulator-width formulas."""

import math

import numpy as np
import pytest

from repro.formats import AdaptivFloat, FloatIEEE, Posit, Uniform
from repro.formats.numerics import (adaptivfloat_product_bits,
                                    decades_covered, dynamic_range_db,
                                    format_summary,
                                    hfint_accumulator_bits,
                                    int_accumulator_bits,
                                    worst_case_relative_error)


class TestRangeMetrics:
    def test_adaptivfloat_dynamic_range(self):
        # <8,3>: value_max/value_min = (2-2^-4)*2^7 / (1+2^-4) ~ 233.4
        q = AdaptivFloat(8, 3)
        db = dynamic_range_db(q, exp_bias=0)
        assert db == pytest.approx(20 * math.log10(
            (2 - 2 ** -4) * 2 ** 7 / (1 + 2 ** -4)))

    def test_bias_invariance(self):
        # Dynamic range is a property of the geometry, not the bias.
        q = AdaptivFloat(8, 3)
        assert dynamic_range_db(q, exp_bias=0) \
            == pytest.approx(dynamic_range_db(q, exp_bias=-9))

    def test_posit_range_wider_than_float(self):
        # posit<8,1> spans useed^±6 = 2^±12; float<8,4> spans ~2^±10.
        assert dynamic_range_db(Posit(8, 1)) \
            > dynamic_range_db(FloatIEEE(8, 4))

    def test_uniform_has_narrow_relative_range(self):
        # levels 1..127: only ~2 decades.
        assert decades_covered(Uniform(8), scale=1.0) \
            == pytest.approx(math.log10(127), rel=1e-6)

    def test_worst_relative_error_tracks_mantissa(self):
        # Halving the mantissa grid roughly halves the worst error.
        err4 = worst_case_relative_error(AdaptivFloat(8, 3), exp_bias=0)
        err3 = worst_case_relative_error(AdaptivFloat(7, 3), exp_bias=0)
        assert err3 == pytest.approx(2 * err4, rel=0.35)

    def test_summary_keys(self):
        summary = format_summary(AdaptivFloat(6, 3), exp_bias=-2)
        assert set(summary) == {"codepoints", "dynamic_range_db", "decades",
                                "worst_rel_error"}


class TestWidthFormulas:
    def test_int_width_matches_paper_formula(self):
        """The paper's 2n + log2(H) formula equals (within its 1-bit
        slack for the symmetric-operand case) the exact requirement."""
        for bits, h in ((8, 256), (4, 256), (8, 1024)):
            paper = 2 * bits + int(math.log2(h))
            exact = int_accumulator_bits(bits, h)
            assert exact <= paper <= exact + 1, (bits, h, exact, paper)

    def test_hfint_width_paper_formula_is_tight_but_optimistic(self):
        """The paper's 2(2^e−1) + 2m + log2 H width is 2-3 bits short of
        the absolute worst case (max mantissas at max exponents on every
        lane) — which is why the simulated accumulator saturates on
        adversarial inputs but is exact on calibrated data
        (tests/hardware/test_datapath.py)."""
        for bits, e, h in ((8, 3, 256), (4, 3, 256)):
            m = bits - e - 1
            paper = 2 * (2 ** e - 1) + 2 * m + int(math.log2(h))
            exact = hfint_accumulator_bits(bits, e, h)
            assert 0 < exact - paper <= 3, (bits, e, exact, paper)

    def test_product_bits(self):
        # <8,3>: mantissa products need 10 bits, shifts add 14 -> 24.
        assert adaptivfloat_product_bits(3, 4) == 24
        # HFINT4 (m=0): 2 bits + 14 shifts = 16.
        assert adaptivfloat_product_bits(3, 0) == 16

    def test_exact_widths_verified_by_simulation(self):
        """Brute-force check of int_accumulator_bits on a tiny case."""
        bits, h = 3, 4
        level = 2 ** (bits - 1) - 1
        worst = h * level * level  # 4 * 9 = 36 -> 6 magnitude bits + sign
        width = int_accumulator_bits(bits, h)
        assert 2 ** (width - 1) - 1 >= worst
        assert 2 ** (width - 2) - 1 < worst  # minimal
