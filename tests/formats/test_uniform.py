"""Tests for uniform (integer) quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import Uniform

from .helpers import assert_is_nearest_codepoint


class TestSymmetric:
    def test_scale_from_max_abs(self):
        q = Uniform(8)
        params = q.fit(np.array([-3.0, 1.0]))
        assert params["scale"] == pytest.approx(3.0 / 127)

    def test_max_maps_to_top_level(self):
        q = Uniform(8)
        x = np.array([-3.0, 1.0, 3.0])
        out = q.quantize(x)
        assert out[0] == pytest.approx(-3.0)
        assert out[2] == pytest.approx(3.0)

    def test_level_count(self):
        q = Uniform(4)
        assert len(q.codepoints()) == 2 ** 4 - 1  # symmetric: -7..7

    def test_grid_uniform(self):
        points = Uniform(6).codepoints(scale=0.5)
        np.testing.assert_allclose(np.diff(points), 0.5)

    def test_all_zero(self):
        q = Uniform(8)
        np.testing.assert_array_equal(q.quantize(np.zeros(4)), np.zeros(4))

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=128)
        q = Uniform(5)
        once = q.quantize(x)
        np.testing.assert_allclose(q.quantize(once), once)

    def test_outlier_coarsens_grid(self):
        # Same failure mode as BFP: the scale chases the max.
        q = Uniform(4)
        x = np.array([70.0, 0.5])
        out = q.quantize(x)
        assert out[1] == 0.0  # 0.5 < scale/2 = 5


class TestAffine:
    def test_asymmetric_range_covered(self):
        q = Uniform(8, symmetric=False)
        x = np.array([2.0, 6.0, 10.0])
        out = q.quantize(x)
        assert np.abs(out - x).max() < (10 - 2) / 255 + 1e-12

    def test_zero_point_integer(self):
        q = Uniform(8, symmetric=False)
        params = q.fit(np.array([-1.0, 3.0]))
        assert isinstance(params["zero_point"], int)
        # zero must be exactly representable
        zero = (params["zero_point"] - params["zero_point"]) * params["scale"]
        assert zero == 0.0


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.floats(min_value=-100, max_value=100,
                       allow_nan=False, allow_infinity=False),
             min_size=1, max_size=32),
    st.sampled_from([4, 5, 6, 8]),
)
def test_symmetric_is_nearest_codepoint(values, bits):
    x = np.asarray(values, dtype=np.float64)
    if np.abs(x).max() == 0.0:
        return
    q = Uniform(bits)
    params = q.fit(x)
    out = q.quantize_with_params(x, params)
    assert_is_nearest_codepoint(out, x, q.codepoints(scale=params["scale"]))
