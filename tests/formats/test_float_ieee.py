"""Tests for the non-adaptive IEEE-like float baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FloatIEEE

from .helpers import assert_is_nearest_codepoint


class TestStructure:
    def test_standard_bias(self):
        assert FloatIEEE(8, exp_bits=4).exp_bias == 7
        assert FloatIEEE(4, exp_bits=3).exp_bias == 3
        assert FloatIEEE(16, exp_bits=5).exp_bias == 15

    def test_fp16_like_max(self):
        # <16,5> with the top binade usable (no Inf/NaN) tops out at
        # 2^16 * (2 - 2^-10) = 131008, vs IEEE half's 65504.
        q = FloatIEEE(16, exp_bits=5)
        assert q.value_max == pytest.approx(2.0 ** 16 * (2 - 2 ** -10))

    def test_codepoint_count(self):
        # 2^n patterns minus the duplicated zero (+0/-0).
        for bits, exp_bits in [(4, 2), (6, 3), (8, 4)]:
            q = FloatIEEE(bits, exp_bits)
            assert len(q.codepoints()) == 2 ** bits - 1

    def test_subnormals_present(self):
        q = FloatIEEE(8, exp_bits=4)
        points = q.codepoints()
        positive = points[points > 0]
        # Smallest subnormal = 2^(min_normal_exp - m)
        assert positive[0] == pytest.approx(2.0 ** (q.min_normal_exp - q.mant_bits))
        # Subnormal spacing is uniform.
        sub = positive[positive < 2.0 ** q.min_normal_exp]
        np.testing.assert_allclose(np.diff(sub), positive[0])


class TestQuantization:
    def test_saturates_at_value_max(self):
        q = FloatIEEE(8, exp_bits=4)
        out = q.quantize(np.array([1e9, -1e9]))
        np.testing.assert_allclose(out, [q.value_max, -q.value_max])

    def test_zero_maps_to_zero(self):
        q = FloatIEEE(8, exp_bits=4)
        assert q.quantize(np.array([0.0]))[0] == 0.0

    def test_non_adaptive(self):
        # Scaling the input does NOT rescale the grid: relative error of a
        # fixed grid explodes for tiny inputs once they hit the subnormal
        # floor, unlike AdaptivFloat.
        q = FloatIEEE(8, exp_bits=4)
        tiny = np.array([1e-6])
        assert q.quantize(tiny)[0] == 0.0  # under the subnormal floor

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=512)
        q = FloatIEEE(8, 4)
        once = q.quantize(x)
        np.testing.assert_array_equal(q.quantize(once), once)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            FloatIEEE(4, exp_bits=4)
        with pytest.raises(ValueError):
            FloatIEEE(8, exp_bits=0)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.floats(min_value=-500, max_value=500,
                       allow_nan=False, allow_infinity=False),
             min_size=1, max_size=32),
    st.sampled_from([(4, 3), (5, 3), (6, 4), (8, 4), (8, 5)]),
)
def test_quantize_is_nearest_codepoint(values, config):
    bits, exp_bits = config
    x = np.asarray(values, dtype=np.float64)
    q = FloatIEEE(bits, exp_bits)
    assert_is_nearest_codepoint(q.quantize(x), x, q.codepoints())
