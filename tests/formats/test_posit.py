"""Tests for the posit baseline (type III unum)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import Posit, decode_posit_word

from .helpers import assert_is_nearest_codepoint


class TestDecode:
    """Hand-checked posit<8,1> words."""

    @pytest.mark.parametrize("word,value", [
        (0x00, 0.0),
        (0x40, 1.0),     # regime k=0, exp 0
        (0x50, 2.0),     # regime k=0, exp 1
        (0x60, 4.0),     # regime k=1 -> useed^1
        (0x48, 1.5),     # fraction 0.5
        (0x44, 1.25),    # fraction 0.25
        (0x7F, 4096.0),  # maxpos = useed^(n-2) = 4^6
        (0x01, 4.0 ** -6),  # minpos
        (0x30, 0.5),     # regime k=-1, exp 1 -> 2^-1
    ])
    def test_positive_words(self, word, value):
        assert decode_posit_word(word, 8, 1) == pytest.approx(value)

    def test_negative_is_twos_complement(self):
        assert decode_posit_word(0xC0, 8, 1) == pytest.approx(-1.0)
        assert decode_posit_word((-0x50) & 0xFF, 8, 1) == pytest.approx(-2.0)

    def test_nar_rejected(self):
        with pytest.raises(ValueError):
            decode_posit_word(0x80, 8, 1)

    def test_es0_useed(self):
        assert decode_posit_word(0x60, 8, 0) == pytest.approx(2.0)  # useed=2, k=1


class TestStructure:
    def test_extremes(self):
        q = Posit(8, es=1)
        assert q.maxpos == pytest.approx(4096.0)
        assert q.minpos == pytest.approx(4.0 ** -6)
        q0 = Posit(8, es=0)
        assert q0.maxpos == pytest.approx(64.0)

    def test_codepoint_count(self):
        # 2^n patterns minus NaR (zero is a single pattern here).
        for bits, es in [(4, 0), (6, 1), (8, 1)]:
            assert len(Posit(bits, es).codepoints()) == 2 ** bits - 1

    def test_codepoints_symmetric_and_sorted(self):
        points = Posit(8, 1).codepoints()
        np.testing.assert_allclose(points, -points[::-1])
        assert np.all(np.diff(points) > 0)

    def test_tapered_precision(self):
        # Relative spacing is tightest around 1.0 and widens toward maxpos.
        points = Posit(8, 1).codepoints()
        pos = points[points > 0]
        rel_gap = np.diff(pos) / pos[:-1]
        idx_one = int(np.argmin(np.abs(pos - 1.0)))
        assert rel_gap[idx_one] < rel_gap[-1]
        assert rel_gap[idx_one] < rel_gap[0]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Posit(32, 1)
        with pytest.raises(ValueError):
            Posit(8, -1)
        with pytest.raises(ValueError):
            Posit(8, 1, underflow="wat")


class TestQuantization:
    def test_saturates_at_maxpos(self):
        q = Posit(8, 1)
        np.testing.assert_allclose(q.quantize(np.array([1e9, -1e9])),
                                   [4096.0, -4096.0])

    def test_underflow_nearest_rounds_to_zero(self):
        q = Posit(8, 1, underflow="nearest")
        tiny = q.minpos / 4
        assert q.quantize(np.array([tiny]))[0] == 0.0

    def test_underflow_saturate_never_zero(self):
        q = Posit(8, 1, underflow="saturate")
        tiny = q.minpos / 1e6
        assert q.quantize(np.array([tiny]))[0] == q.minpos
        assert q.quantize(np.array([0.0]))[0] == 0.0

    def test_exact_codepoints_fixed(self):
        q = Posit(8, 1)
        points = q.codepoints()
        np.testing.assert_allclose(q.quantize(points), points)

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=512) * 3
        q = Posit(8, 1)
        once = q.quantize(x)
        np.testing.assert_array_equal(q.quantize(once), once)

    def test_non_adaptive_grid(self):
        # Same value quantizes identically regardless of tensor context.
        q = Posit(8, 1)
        a = q.quantize(np.array([0.3, 1000.0]))[0]
        b = q.quantize(np.array([0.3, 0.001]))[0]
        assert a == b


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.floats(min_value=-5000, max_value=5000,
                       allow_nan=False, allow_infinity=False),
             min_size=1, max_size=32),
    st.sampled_from([(4, 0), (6, 1), (8, 0), (8, 1), (8, 2)]),
)
def test_quantize_is_nearest_codepoint(values, config):
    bits, es = config
    x = np.asarray(values, dtype=np.float64)
    q = Posit(bits, es)
    assert_is_nearest_codepoint(q.quantize(x), x, q.codepoints())


class TestLookupTableCaching:
    """quantize() must not rebuild the magnitude/midpoint tables per call."""

    def test_tables_are_cached_per_config(self):
        from repro.formats.posit import _lookup_tables, _positive_codepoints
        a = _lookup_tables(8, 1, "saturate")
        b = _lookup_tables(8, 1, "saturate")
        assert a[0] is b[0] and a[1] is b[1]
        assert _positive_codepoints(8, 1) is _positive_codepoints(8, 1)
        assert _lookup_tables(8, 2, "saturate")[0] is not a[0]

    def test_cached_tables_are_read_only(self):
        from repro.formats.posit import _lookup_tables, _positive_codepoints
        table, mids = _lookup_tables(8, 1, "saturate")
        with pytest.raises(ValueError):
            table[0] = 1.0
        with pytest.raises(ValueError):
            mids[0] = 1.0
        with pytest.raises(ValueError):
            _positive_codepoints(8, 1)[0] = 1.0

    def test_codepoints_returns_a_private_copy(self):
        q = Posit(8, 1)
        pts = q.codepoints()
        pts[0] = 123.0  # caller may scribble on the result...
        assert q.codepoints()[0] != 123.0  # ...without corrupting the cache
