"""Unit and property tests for the AdaptivFloat format (paper Section 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import AdaptivFloat, RoundMode, adaptivfloat_quantize

from .helpers import assert_is_nearest_codepoint


PAPER_W = np.array([
    [-1.17, 2.71, -1.60, 0.43],
    [-1.14, 2.05, 1.01, 0.07],
    [0.16, -0.03, -0.89, -0.87],
    [-0.04, -0.39, 0.64, -2.89],
])

PAPER_W_QUANTIZED = np.array([
    [-1.0, 3.0, -1.5, 0.375],
    [-1.0, 2.0, 1.0, 0.0],
    [0.0, 0.0, -1.0, -0.75],
    [0.0, -0.375, 0.75, -3.0],
])


class TestPaperExamples:
    def test_paper_figure3_example(self):
        """The worked AdaptivFloat<4,2> example of paper Fig. 3."""
        quantizer = AdaptivFloat(4, exp_bits=2)
        assert quantizer.fit(PAPER_W)["exp_bias"] == -2
        np.testing.assert_allclose(quantizer.quantize(PAPER_W), PAPER_W_QUANTIZED)

    def test_paper_figure3_range_params(self):
        quantizer = AdaptivFloat(4, exp_bits=2)
        vmin, vmax = quantizer.range_for_bias(-2)
        assert vmin == pytest.approx(0.375)  # paper: abs min = 0.375
        assert vmax == pytest.approx(3.0)    # paper: abs max = 3

    def test_paper_figure2_codepoints(self):
        """Fig. 2: the +/-0.25 slots become +/-0 at exp_bias=-2, m=1."""
        quantizer = AdaptivFloat(4, exp_bits=2)
        points = quantizer.codepoints(exp_bias=-2)
        expected = [-3, -2, -1.5, -1, -0.75, -0.5, -0.375, 0,
                    0.375, 0.5, 0.75, 1, 1.5, 2, 3]
        np.testing.assert_allclose(points, expected)
        assert 0.25 not in points  # sacrificed for the zero encoding


class TestStructure:
    def test_codepoint_count(self):
        # 2^n patterns, minus one: +0 and -0 collapse to a single zero.
        for bits, exp_bits in [(4, 2), (6, 3), (8, 3), (8, 4)]:
            quantizer = AdaptivFloat(bits, exp_bits)
            assert len(quantizer.codepoints(0)) == 2 ** bits - 1

    def test_codepoints_symmetric(self):
        quantizer = AdaptivFloat(8, 3)
        points = quantizer.codepoints(-5)
        np.testing.assert_allclose(points, -points[::-1])

    def test_value_min_formula(self):
        # value_min = 2^exp_bias * (1 + 2^-m) is the smallest nonzero point.
        for bits, exp_bits in [(4, 2), (8, 3), (4, 3)]:  # (4,3) has m=0
            quantizer = AdaptivFloat(bits, exp_bits)
            points = quantizer.codepoints(exp_bias=-3)
            vmin, vmax = quantizer.range_for_bias(-3)
            positive = points[points > 0]
            assert positive[0] == pytest.approx(float(vmin))
            assert positive[-1] == pytest.approx(float(vmax))

    def test_mantissa_zero_width(self):
        # AdaptivFloat<4,3> (HFINT4 operand) has m=0: pure power-of-two grid.
        quantizer = AdaptivFloat(4, exp_bits=3)
        points = quantizer.codepoints(exp_bias=0)
        positive = points[points > 0]
        np.testing.assert_allclose(positive, 2.0 ** np.arange(1, 8))

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            AdaptivFloat(4, exp_bits=4)  # no sign bit left
        with pytest.raises(ValueError):
            AdaptivFloat(4, exp_bits=0)
        with pytest.raises(ValueError):
            AdaptivFloat(8, 3, round_mode="bogus")


class TestQuantization:
    def test_idempotent(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=256) * 4.0
        quantizer = AdaptivFloat(8, 3)
        once = quantizer.quantize(x)
        params = quantizer.fit(x)
        twice = quantizer.quantize_with_params(once, params)
        np.testing.assert_array_equal(once, twice)

    def test_sign_symmetry(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=256)
        quantizer = AdaptivFloat(6, 3)
        np.testing.assert_allclose(quantizer.quantize(-x), -quantizer.quantize(x))

    def test_small_values_round_to_zero_or_min(self):
        quantizer = AdaptivFloat(4, exp_bits=2)
        params = {"exp_bias": -2}
        vmin = 0.375
        x = np.array([vmin / 2 - 1e-9, vmin / 2 + 1e-9, 1e-12, 0.0])
        out = quantizer.quantize_with_params(x, params)
        np.testing.assert_allclose(out, [0.0, vmin, 0.0, 0.0])

    def test_clamp_to_value_max(self):
        quantizer = AdaptivFloat(4, exp_bits=2)
        out = quantizer.quantize_with_params(
            np.array([100.0, -100.0, 3.2]), {"exp_bias": -2})
        np.testing.assert_allclose(out, [3.0, -3.0, 3.0])

    def test_max_abs_always_within_one_ulp(self):
        # The fitted grid must cover max|W| up to the clamp at value_max.
        rng = np.random.default_rng(3)
        quantizer = AdaptivFloat(8, 3)
        for _ in range(20):
            x = rng.normal(size=64) * 10 ** rng.uniform(-6, 6)
            q = quantizer.quantize(x)
            _, vmax = quantizer.range_for_bias(quantizer.fit(x)["exp_bias"])
            assert np.abs(q).max() <= float(vmax) * (1 + 1e-12)

    def test_all_zero_tensor(self):
        quantizer = AdaptivFloat(8, 3)
        out = quantizer.quantize(np.zeros(10))
        np.testing.assert_array_equal(out, np.zeros(10))

    def test_narrower_data_means_more_negative_bias(self):
        # Paper Section 3.2: "the narrower the datapoints ... the more
        # negative exp_bias gets".
        quantizer = AdaptivFloat(8, 3)
        wide = quantizer.fit(np.array([20.0]))["exp_bias"]
        narrow = quantizer.fit(np.array([0.01]))["exp_bias"]
        assert narrow < wide

    def test_rounding_modes_differ_only_at_ties(self):
        quantizer_even = AdaptivFloat(6, 2, round_mode=RoundMode.NEAREST_EVEN)
        quantizer_away = AdaptivFloat(6, 2, round_mode=RoundMode.NEAREST_AWAY)
        # Construct an exact tie: halfway between two mantissa points.
        params = {"exp_bias": 0}
        # m = 3; in the exponent-1 binade the grid step is 0.25, so 2.125
        # ties exactly between 2.0 (even mantissa code) and 2.25.
        tie = np.array([2.125])
        even = quantizer_even.quantize_with_params(tie, params)
        away = quantizer_away.quantize_with_params(tie, params)
        assert even[0] != away[0]
        assert {even[0], away[0]} == {2.0, 2.25}

    def test_stochastic_rounding_is_unbiased(self):
        rng = np.random.default_rng(42)
        quantizer = AdaptivFloat(6, 2, round_mode=RoundMode.STOCHASTIC, rng=rng)
        x = np.full(20000, 1.3)  # between grid points 1.25 and 1.375
        out = quantizer.quantize_with_params(x, {"exp_bias": 0})
        assert set(np.unique(out)) == {1.25, 1.375}
        assert abs(out.mean() - 1.3) < 0.005

    def test_functional_form_matches_class(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=128) * 3
        np.testing.assert_array_equal(
            adaptivfloat_quantize(x, 8, 3), AdaptivFloat(8, 3).quantize(x))

    def test_functional_form_with_frozen_bias(self):
        x = np.array([0.3, 0.6, 1.2])
        out = adaptivfloat_quantize(x, 4, 2, exp_bias=-2)
        quantizer = AdaptivFloat(4, 2)
        np.testing.assert_array_equal(
            out, quantizer.quantize_with_params(x, {"exp_bias": -2}))


class TestPerChannel:
    def test_per_channel_bias_shape(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 16)) * np.array([[0.01], [0.1], [1.0], [10.0]])
        quantizer = AdaptivFloat(8, 3, channel_axis=0)
        bias = quantizer.fit(x)["exp_bias"]
        assert bias.shape == (4, 1)
        assert np.all(np.diff(bias.ravel()) > 0)

    def test_per_channel_beats_per_layer_on_mixed_scales(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(2, 512)) * np.array([[0.001], [10.0]])
        per_layer = AdaptivFloat(6, 3)
        per_channel = AdaptivFloat(6, 3, channel_axis=0)
        err_layer = np.abs(per_layer.quantize(x) - x).mean()
        err_channel = np.abs(per_channel.quantize(x) - x).mean()
        assert err_channel < err_layer


class TestEncodeDecode:
    def test_roundtrip_all_codepoints(self):
        for bits, exp_bits in [(4, 2), (6, 3), (8, 3)]:
            quantizer = AdaptivFloat(bits, exp_bits)
            points = quantizer.codepoints(exp_bias=-4)
            words = quantizer.encode(points, exp_bias=-4)
            assert words.max() < 2 ** bits
            np.testing.assert_allclose(quantizer.decode(words, -4), points)

    def test_zero_is_all_zero_word(self):
        quantizer = AdaptivFloat(8, 3)
        assert quantizer.encode(np.array([0.0]), exp_bias=-3)[0] == 0

    def test_encode_rejects_off_grid(self):
        quantizer = AdaptivFloat(4, 2)
        with pytest.raises(ValueError):
            quantizer.encode(np.array([0.4]), exp_bias=-2)

    def test_encode_rejects_out_of_range_exponent(self):
        quantizer = AdaptivFloat(4, 2)
        with pytest.raises(ValueError):
            quantizer.encode(np.array([64.0]), exp_bias=-2)


def weight_like_floats(min_size=1, max_size=32):
    """Floats in the DNN-weight magnitude regime (plus exact zeros)."""
    magnitude = st.floats(min_value=1e-12, max_value=1e4,
                          allow_nan=False, allow_infinity=False)
    signed = st.builds(lambda m, s: m * s, magnitude, st.sampled_from([-1.0, 1.0]))
    return st.lists(st.one_of(st.just(0.0), signed),
                    min_size=min_size, max_size=max_size)


@settings(max_examples=200, deadline=None)
@given(
    weight_like_floats(),
    st.sampled_from([(4, 2), (5, 3), (6, 3), (8, 3), (8, 4)]),
)
def test_quantize_is_nearest_codepoint(values, config):
    """Property: Algorithm 1 == nearest-representable-value rounding."""
    bits, exp_bits = config
    x = np.asarray(values, dtype=np.float64)
    quantizer = AdaptivFloat(bits, exp_bits)
    params = quantizer.fit(x)
    if np.abs(x).max() == 0.0:
        return
    q = quantizer.quantize_with_params(x, params)
    points = quantizer.codepoints(exp_bias=int(params["exp_bias"]))
    assert_is_nearest_codepoint(q, x, points)


@settings(max_examples=100, deadline=None)
@given(weight_like_floats(max_size=16))
def test_quantized_values_encode_exactly(values):
    """Property: everything quantize() emits survives the bit codec."""
    x = np.asarray(values, dtype=np.float64)
    if np.abs(x).max() == 0.0:
        return
    quantizer = AdaptivFloat(8, 3)
    params = quantizer.fit(x)
    q = quantizer.quantize_with_params(x, params)
    words = quantizer.encode(q, int(params["exp_bias"]))
    np.testing.assert_allclose(quantizer.decode(words, int(params["exp_bias"])), q)
