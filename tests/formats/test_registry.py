"""Tests for the format registry and the paper's default field widths."""

import numpy as np
import pytest

from repro.formats import (FORMAT_NAMES, AdaptivFloat, BlockFloat, FloatIEEE,
                           Fp32, Posit, Uniform, make_quantizer, paper_formats)


class TestDefaults:
    def test_paper_exponent_defaults(self):
        # Section 4: 3 exponent bits for AdaptivFloat, 4 for float
        # (3 at 4-bit), es=1 for posit (es=0 at 4-bit).
        assert make_quantizer("adaptivfloat", 8).exp_bits == 3
        assert make_quantizer("adaptivfloat", 4).exp_bits == 3
        assert make_quantizer("float", 8).exp_bits == 4
        assert make_quantizer("float", 4).exp_bits == 3
        assert make_quantizer("posit", 8).es == 1
        assert make_quantizer("posit", 4).es == 0

    def test_overrides(self):
        assert make_quantizer("adaptivfloat", 8, exp_bits=5).exp_bits == 5
        assert make_quantizer("posit", 8, es=2).es == 2
        assert make_quantizer("bfp", 8, block_size=16).block_size == 16

    def test_paper_formats_order_and_types(self):
        formats = paper_formats(8)
        assert [f.name for f in formats] == list(FORMAT_NAMES)
        assert isinstance(formats[0], FloatIEEE)
        assert isinstance(formats[1], BlockFloat)
        assert isinstance(formats[2], Uniform)
        assert isinstance(formats[3], Posit)
        assert isinstance(formats[4], AdaptivFloat)

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            make_quantizer("bf16", 16)

    def test_fp32_identity(self):
        x = np.array([1.2345678, -9.87])
        np.testing.assert_array_equal(Fp32().quantize(x), x)


class TestCrossFormatBehaviour:
    """The qualitative orderings that motivate the paper."""

    def test_adaptivfloat_best_on_wide_distribution(self):
        # Heavy-tailed, wide-range weights (NLP-like): AdaptivFloat must
        # beat every baseline on RMS error at 6 bits (Fig. 4 headline).
        rng = np.random.default_rng(7)
        x = rng.standard_t(df=3, size=4096) * 2.0
        errors = {f.name: f.quantization_error(x) for f in paper_formats(6)}
        best = min(errors, key=errors.get)
        assert best == "adaptivfloat", errors

    def test_adaptive_formats_scale_invariant(self):
        # AdaptivFloat/uniform/BFP auto-adjust to tensor scale; float and
        # posit do not (their error is scale-dependent).
        rng = np.random.default_rng(8)
        base = rng.normal(size=2048)
        for name in ("adaptivfloat", "uniform", "bfp"):
            q = make_quantizer(name, 8)
            e1 = q.quantization_error(base)
            e2 = q.quantization_error(base * 1024.0)
            assert e2 == pytest.approx(e1 * 1024.0, rel=1e-6), name

    def test_float_posit_not_scale_invariant(self):
        rng = np.random.default_rng(9)
        base = rng.normal(size=2048) * 0.05
        for name in ("float", "posit"):
            q = make_quantizer(name, 8)
            e1 = q.quantization_error(base)
            e2 = q.quantization_error(base * 1024.0)
            assert abs(e2 / e1 - 1024.0) > 1.0, name

    def test_posit_beats_float_near_one(self):
        # Fig. 4 discussion: among non-adaptive types posit generally has
        # lower RMS error (tapered precision around |x| ~ 1).
        rng = np.random.default_rng(10)
        x = rng.normal(size=4096)
        posit_err = make_quantizer("posit", 8).quantization_error(x)
        float_err = make_quantizer("float", 8).quantization_error(x)
        assert posit_err < float_err


class TestQuantizedTensor:
    def test_packed_size_accounting(self):
        from repro.formats import AdaptivFloat, QuantizedTensor
        q = AdaptivFloat(6, 3)
        x = np.linspace(-1, 1, 100)
        params = q.fit(x)
        qt = QuantizedTensor(values=q.quantize_with_params(x, params),
                             format_spec=q.spec(), params=params)
        assert qt.nbytes_packed == (100 * 6 + 7) // 8
        assert qt.format_spec["name"] == "adaptivfloat"


class TestExactRange:
    """FormatRange: the exact integer range metadata the HW001 prover
    consumes (defaults must mirror make_quantizer exactly)."""

    def test_adaptivfloat_matches_quantizer_defaults(self):
        from repro.formats import exact_range
        rng = exact_range("adaptivfloat", 8)
        q = make_quantizer("adaptivfloat", 8)
        assert rng.exp_bits == q.exp_bits == 3
        assert rng.mant_bits == 8 - 3 - 1
        assert rng.pe == "hfint" and rng.scale_dependent
        assert rng.sig_max == 2 ** 5 - 1       # mantissa with implied one
        assert rng.sig_exp == (2 ** 3 - 1) - 4  # bias-relative top binade

    def test_float_uses_ieee_max_exp(self):
        from repro.formats import exact_range
        rng = exact_range("float", 8)
        fmt = FloatIEEE(8, exp_bits=4)
        assert rng.exp_bits == 4
        assert rng.sig_exp == fmt.max_exp - rng.mant_bits
        assert rng.value_max == pytest.approx(
            float(2 ** (rng.mant_bits + 1) - 1) * 2.0 ** rng.sig_exp)

    def test_int_grid_formats(self):
        from repro.formats import exact_range
        for name in ("uniform", "bfp"):
            rng = exact_range(name, 8)
            assert rng.pe == "int" and rng.level_max == 127
        assert exact_range("uniform", 4).level_max == 7

    def test_overrides_flow_through(self):
        from repro.formats import exact_range
        rng = exact_range("adaptivfloat", 8, exp_bits=5)
        assert rng.exp_bits == 5 and rng.mant_bits == 2

    def test_no_pe_formats(self):
        from repro.formats import exact_range
        assert exact_range("posit", 8).pe is None
        assert exact_range("logquant", 8).pe is None
        assert exact_range("fp32", 8).bits == 32

    def test_unknown_format_raises(self):
        from repro.formats import exact_range
        with pytest.raises(ValueError):
            exact_range("nosuch", 8)

    def test_every_registry_format_has_a_range(self):
        from repro.formats import exact_range
        for name in FORMAT_NAMES:
            for bits in (4, 8):
                rng = exact_range(name, bits)
                assert rng.pe in ("int", "hfint", None)
                assert rng.sig_max >= 0
