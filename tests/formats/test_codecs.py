"""Bit-codec round-trips for every registry format (ISSUE 4 tentpole).

Fault injection is only meaningful if ``encode`` -> ``pack_words`` ->
``unpack_words`` -> ``decode`` is lossless for on-grid tensors, and if
``decode`` is *total* — every ``n``-bit word a bit flip can produce must
decode to something (possibly NaN for posit's NaR) rather than raise.
"""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, make_quantizer
from repro.formats.base import AdaptiveQuantizer
from repro.formats.bitpack import pack_words, unpack_words
from repro.resilience.inject import decode_tensor, encode_tensor

BITS = (4, 8)


def _quantize_with_params(quantizer, x):
    """Quantize ``x`` and return ``(on_grid_values, adaptive_params)``."""
    if isinstance(quantizer, AdaptiveQuantizer):
        params = quantizer.fit(x)
        return quantizer.quantize_with_params(x, params), params
    return quantizer.quantize(x), None


@pytest.mark.parametrize("bits", BITS)
@pytest.mark.parametrize("name", FORMAT_NAMES)
class TestCodecRoundTrip:
    def test_encode_pack_unpack_decode_round_trips(self, name, bits):
        rng = np.random.default_rng(42)
        x = rng.normal(scale=0.5, size=257)
        quantizer = make_quantizer(name, bits)
        values, params = _quantize_with_params(quantizer, x)

        words = encode_tensor(quantizer, values, params)
        assert words.dtype == np.uint32
        assert np.all(words < 2 ** bits)

        unpacked = unpack_words(pack_words(words, bits), bits, words.size)
        assert np.array_equal(unpacked, words)

        decoded = decode_tensor(quantizer, unpacked, params)
        assert np.array_equal(decoded, values), name

    def test_zero_round_trips(self, name, bits):
        quantizer = make_quantizer(name, bits)
        x = np.array([0.0, 0.0, 1.0, -1.0])
        values, params = _quantize_with_params(quantizer, x)
        words = encode_tensor(quantizer, values, params)
        decoded = decode_tensor(quantizer, words, params)
        assert decoded[0] == 0.0 and decoded[1] == 0.0

    def test_decode_is_total(self, name, bits):
        """Every raw word decodes; only posit's NaR may be NaN."""
        quantizer = make_quantizer(name, bits)
        x = np.linspace(-1.0, 1.0, 33)
        _, params = _quantize_with_params(quantizer, x)
        all_words = np.arange(2 ** bits, dtype=np.uint32)
        decoded = decode_tensor(quantizer, all_words, params)
        assert decoded.shape == all_words.shape
        nan_count = int(np.isnan(decoded).sum())
        if name == "posit":
            # Exactly the NaR word 1000...0 decodes to NaN.
            assert nan_count == 1
            assert np.isnan(decoded[2 ** (bits - 1)])
        else:
            assert nan_count == 0, (name, decoded)

    def test_decode_survives_arbitrary_flips(self, name, bits):
        """Flipped words (two's-complement minimum etc.) decode finitely."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=64)
        quantizer = make_quantizer(name, bits)
        values, params = _quantize_with_params(quantizer, x)
        words = encode_tensor(quantizer, values, params)
        for flip in range(bits):
            flipped = words ^ np.uint32(1 << flip)
            decoded = decode_tensor(quantizer, flipped, params)
            bad = ~np.isfinite(decoded)
            if name == "posit":
                assert np.isnan(decoded[bad]).all() if bad.any() else True
            else:
                assert not bad.any(), (name, flip)

    def test_bit_fields_length_and_labels(self, name, bits):
        quantizer = make_quantizer(name, bits)
        fields = quantizer.bit_fields()
        assert len(fields) == bits
        assert set(fields) <= {"sign", "exponent", "mantissa"}
        assert fields[0] == "sign"

    def test_off_grid_values_rejected(self, name, bits):
        quantizer = make_quantizer(name, bits)
        x = np.linspace(-1.0, 1.0, 17)
        values, params = _quantize_with_params(quantizer, x)
        nudged = values + 1e-3 * np.pi
        with pytest.raises(ValueError):
            encode_tensor(quantizer, nudged, params)

    def test_non_finite_values_rejected(self, name, bits):
        quantizer = make_quantizer(name, bits)
        x = np.linspace(-1.0, 1.0, 9)
        values, params = _quantize_with_params(quantizer, x)
        values = values.copy()
        values[3] = np.nan
        with pytest.raises(ValueError):
            encode_tensor(quantizer, values, params)


def test_bfp_per_block_codec_unsupported():
    """Per-block shared exponents carry one register per block: no codec."""
    quantizer = make_quantizer("bfp", 8, block_size=16)
    with pytest.raises(NotImplementedError):
        quantizer.encode(np.zeros(16), 0)


def test_uniform_twos_complement_minimum_decodes():
    """The word -2**(n-1) is off the symmetric grid but must decode."""
    quantizer = make_quantizer("uniform", 8)
    decoded = quantizer.decode(np.array([128], dtype=np.uint32), scale=0.5)
    assert decoded[0] == -128 * 0.5


def test_adaptivfloat_decode_tracks_exp_bias():
    """The same word decodes to 2**delta-scaled values under a biased
    register — the mechanism behind exp_bias register faults."""
    quantizer = make_quantizer("adaptivfloat", 8)
    x = np.array([0.5, -0.25, 0.125])
    params = quantizer.fit(x)
    values = quantizer.quantize_with_params(x, params)
    words = quantizer.encode(values, params["exp_bias"])
    shifted = quantizer.decode(words, int(params["exp_bias"]) + 3)
    nonzero = values != 0.0
    assert np.allclose(shifted[nonzero], values[nonzero] * 2.0 ** 3)
