"""Tests for bitstream packing of quantized words."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (AdaptivFloat, pack_words, packed_nbytes,
                           unpack_words)


class TestPacking:
    def test_nbytes(self):
        assert packed_nbytes(16, 4) == 8
        assert packed_nbytes(3, 7) == 3   # 21 bits -> 3 bytes
        assert packed_nbytes(1, 8) == 1

    def test_roundtrip_simple(self):
        words = np.array([0b1011, 0b0001, 0b1111, 0b0000], dtype=np.uint32)
        buf = pack_words(words, 4)
        assert len(buf) == 2
        np.testing.assert_array_equal(unpack_words(buf, 4, 4), words)

    def test_msb_first_layout(self):
        buf = pack_words(np.array([0b1011, 0b0001]), 4)
        assert buf[0] == 0b10110001

    def test_word_too_wide_rejected(self):
        with pytest.raises(ValueError):
            pack_words(np.array([16]), 4)

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            unpack_words(b"\x00", 8, 2)

    def test_adaptivfloat_tensor_roundtrip(self):
        """Full pipeline: quantize -> encode -> pack -> unpack -> decode."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=100) * 5
        q = AdaptivFloat(6, 3)
        params = q.fit(x)
        values = q.quantize_with_params(x, params)
        words = q.encode(values, params["exp_bias"])
        buf = pack_words(words, 6)
        assert len(buf) == packed_nbytes(100, 6) == 75
        back = q.decode(unpack_words(buf, 6, 100), params["exp_bias"])
        np.testing.assert_allclose(back, values)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=16),
       st.lists(st.integers(min_value=0, max_value=2 ** 16 - 1),
                min_size=1, max_size=64))
def test_roundtrip_property(bits, raw):
    words = np.array([w % (1 << bits) for w in raw], dtype=np.uint32)
    buf = pack_words(words, bits)
    assert len(buf) == packed_nbytes(len(words), bits)
    np.testing.assert_array_equal(unpack_words(buf, bits, len(words)), words)


class TestAlignedFastPath:
    """Byte-aligned widths (8/16/32) pack as plain big-endian bytes."""

    @pytest.mark.parametrize("bits", [8, 16, 32])
    def test_matches_big_endian_reference(self, bits):
        rng = np.random.default_rng(bits)
        words = rng.integers(0, 1 << bits, size=50, dtype=np.uint64)
        buf = pack_words(words, bits)
        ref = b"".join(int(w).to_bytes(bits // 8, "big") for w in words)
        assert buf == ref
        np.testing.assert_array_equal(
            unpack_words(buf, bits, 50), words.astype(np.uint32))

    def test_full_width_words_survive(self):
        words = np.array([0, 1, 2**32 - 1, 0x80000000], dtype=np.uint64)
        buf = pack_words(words, 32)
        np.testing.assert_array_equal(
            unpack_words(buf, 32, 4),
            np.array([0, 1, 2**32 - 1, 0x80000000], dtype=np.uint32))


class TestFlipWordBits:
    def test_matches_packed_stream_flip(self):
        from repro.formats import flip_word_bits
        from repro.resilience.inject import flip_packed

        rng = np.random.default_rng(7)
        for bits in (3, 4, 7, 8, 11, 16):
            words = rng.integers(0, 1 << bits, size=40).astype(np.uint32)
            positions = rng.choice(40 * bits, size=9, replace=False)
            direct = flip_word_bits(words, bits, positions)
            via_stream = unpack_words(
                flip_packed(pack_words(words, bits), positions), bits, 40)
            np.testing.assert_array_equal(direct, via_stream)

    def test_involution_and_input_untouched(self):
        from repro.formats import flip_word_bits

        words = np.arange(16, dtype=np.uint32).reshape(4, 4)
        snapshot = words.copy()
        positions = np.array([0, 5, 13, 13])  # repeated offset cancels
        once = flip_word_bits(words, 4, positions)
        np.testing.assert_array_equal(words, snapshot)
        assert once.shape == words.shape
        back = flip_word_bits(once, 4, positions)
        np.testing.assert_array_equal(back, words)
        np.testing.assert_array_equal(
            flip_word_bits(words, 4, np.array([13, 13])), words)

    def test_out_of_range_rejected(self):
        from repro.formats import flip_word_bits

        with pytest.raises(ValueError, match="outside the word stream"):
            flip_word_bits(np.zeros(4, dtype=np.uint32), 4, np.array([16]))
        with pytest.raises(ValueError, match="outside the word stream"):
            flip_word_bits(np.zeros(4, dtype=np.uint32), 4, np.array([-1]))
