"""Tests for bitstream packing of quantized words."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (AdaptivFloat, pack_words, packed_nbytes,
                           unpack_words)


class TestPacking:
    def test_nbytes(self):
        assert packed_nbytes(16, 4) == 8
        assert packed_nbytes(3, 7) == 3   # 21 bits -> 3 bytes
        assert packed_nbytes(1, 8) == 1

    def test_roundtrip_simple(self):
        words = np.array([0b1011, 0b0001, 0b1111, 0b0000], dtype=np.uint32)
        buf = pack_words(words, 4)
        assert len(buf) == 2
        np.testing.assert_array_equal(unpack_words(buf, 4, 4), words)

    def test_msb_first_layout(self):
        buf = pack_words(np.array([0b1011, 0b0001]), 4)
        assert buf[0] == 0b10110001

    def test_word_too_wide_rejected(self):
        with pytest.raises(ValueError):
            pack_words(np.array([16]), 4)

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            unpack_words(b"\x00", 8, 2)

    def test_adaptivfloat_tensor_roundtrip(self):
        """Full pipeline: quantize -> encode -> pack -> unpack -> decode."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=100) * 5
        q = AdaptivFloat(6, 3)
        params = q.fit(x)
        values = q.quantize_with_params(x, params)
        words = q.encode(values, params["exp_bias"])
        buf = pack_words(words, 6)
        assert len(buf) == packed_nbytes(100, 6) == 75
        back = q.decode(unpack_words(buf, 6, 100), params["exp_bias"])
        np.testing.assert_allclose(back, values)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=16),
       st.lists(st.integers(min_value=0, max_value=2 ** 16 - 1),
                min_size=1, max_size=64))
def test_roundtrip_property(bits, raw):
    words = np.array([w % (1 << bits) for w in raw], dtype=np.uint32)
    buf = pack_words(words, bits)
    assert len(buf) == packed_nbytes(len(words), bits)
    np.testing.assert_array_equal(unpack_words(buf, bits, len(words)), words)
