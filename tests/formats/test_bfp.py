"""Tests for the block floating-point baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import BlockFloat

from .helpers import assert_is_nearest_codepoint


class TestWholeTensorBlock:
    def test_shared_exponent_from_max(self):
        q = BlockFloat(8)
        assert q.fit(np.array([0.1, 2.9, -1.0]))["shared_exp"] == 1
        assert q.fit(np.array([0.3]))["shared_exp"] == -2

    def test_grid_is_uniform(self):
        q = BlockFloat(8)
        points = q.codepoints(shared_exp=0)
        np.testing.assert_allclose(np.diff(points), points[1] - points[0])

    def test_small_values_lose_resolution_with_outlier(self):
        # The paper's Section 2 criticism: one large value coarsens the
        # grid for every other element in the block.
        q = BlockFloat(8)
        x = np.array([100.0, 0.3, -0.2, 0.05])
        out = q.quantize(x)
        grid = 2.0 ** (6 - 6)  # shared_exp=6, quantum = 2^(6-(8-2)) = 1.0
        assert out[1] == pytest.approx(0.0)  # 0.3 rounds to 0 on a 1.0 grid
        np.testing.assert_allclose(out, np.round(x / grid) * grid, atol=1e-12)

    def test_fine_rendering_without_outlier(self):
        q = BlockFloat(8)
        x = np.array([0.3, -0.2, 0.05])
        out = q.quantize(x)
        assert np.abs(out - x).max() < 0.005

    def test_symmetric_clamp(self):
        q = BlockFloat(4)
        # max_abs = 1.999 -> shared_exp 0, quantum 2^(0-2)=0.25, mant_max 7
        out = q.quantize(np.array([1.999, -1.999]))
        np.testing.assert_allclose(out, [1.75, -1.75])

    def test_all_zero(self):
        q = BlockFloat(8)
        np.testing.assert_array_equal(q.quantize(np.zeros(5)), np.zeros(5))

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=128)
        q = BlockFloat(6)
        once = q.quantize(x)
        np.testing.assert_array_equal(q.quantize(once), once)


class TestBlocked:
    def test_per_block_exponents(self):
        q = BlockFloat(8, block_size=4)
        x = np.array([100.0, 1.0, 2.0, 3.0, 0.1, 0.2, 0.3, 0.4])
        params = q.fit(x)
        assert params["shared_exp"].tolist() == [6, -2]

    def test_blocking_preserves_shape(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 5))  # 15 elements, pads to 16
        q = BlockFloat(8, block_size=4)
        out = q.quantize(x)
        assert out.shape == x.shape

    def test_smaller_blocks_reduce_error_on_mixed_scales(self):
        rng = np.random.default_rng(2)
        x = np.concatenate([rng.normal(size=256) * 0.01,
                            rng.normal(size=256) * 10.0])
        err_whole = BlockFloat(8).quantization_error(x)
        err_blocked = BlockFloat(8, block_size=64).quantization_error(x)
        assert err_blocked < err_whole

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockFloat(8, block_size=0)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.floats(min_value=-100, max_value=100,
                       allow_nan=False, allow_infinity=False),
             min_size=1, max_size=32),
    st.sampled_from([4, 6, 8]),
)
def test_quantize_is_nearest_codepoint(values, bits):
    x = np.asarray(values, dtype=np.float64)
    if np.abs(x).max() == 0.0:
        return
    q = BlockFloat(bits)
    params = q.fit(x)
    out = q.quantize_with_params(x, params)
    points = q.codepoints(shared_exp=int(params["shared_exp"]))
    assert_is_nearest_codepoint(out, x, points)
