"""Tests for analysis utilities: sweeps, stats, emulators, reporting."""

import numpy as np
import pytest

from repro.analysis import (PUBLISHED_MODELS, bitwidth_sweep_rms,
                            exponent_width_search_metric,
                            exponent_width_search_rms, format_table,
                            layer_weights, sample_weights, weight_range,
                            weight_ranges, weight_summary)
from repro.nn.models import MLP


class TestModelZooStats:
    def test_published_ranges_reproduced_exactly(self):
        for model in PUBLISHED_MODELS:
            sample = sample_weights(model, count=50_000)
            assert sample.min() == pytest.approx(model.w_min)
            assert sample.max() == pytest.approx(model.w_max)

    def test_bulk_is_narrow(self):
        model = next(m for m in PUBLISHED_MODELS if m.name == "Transformer")
        sample = sample_weights(model, count=50_000)
        # the bulk must sit orders of magnitude inside the extremes
        assert np.percentile(np.abs(sample), 99) < 0.1 * model.w_max

    def test_fig1_rows_and_families(self):
        rows = weight_ranges(count=20_000)
        families = {r["model"]: r["family"] for r in rows}
        assert families["ResNet-50"] == "cnn"
        assert families["XLM"] == "nlp"
        nlp_max = max(r["w_max"] for r in rows if r["family"] == "nlp")
        cnn_max = max(r["w_max"] for r in rows if r["family"] == "cnn")
        assert nlp_max > 10 * cnn_max  # the paper's Fig. 1 claim

    def test_deterministic(self):
        model = PUBLISHED_MODELS[0]
        np.testing.assert_array_equal(sample_weights(model, 1000, seed=1),
                                      sample_weights(model, 1000, seed=1))


class TestWeightStats:
    def test_layer_weights_excludes_biases(self):
        mlp = MLP([4, 8, 2])
        names = [n for n, _ in layer_weights(mlp)]
        assert all("bias" not in n for n in names)
        assert len(names) == 2

    def test_weight_range_and_summary(self):
        mlp = MLP([4, 8, 2])
        mlp.layers[0].weight.data[0, 0] = 9.0
        lo, hi = weight_range(mlp)
        assert hi == pytest.approx(9.0)
        summary = weight_summary(mlp)
        assert summary["layers"] == 2
        assert summary["w_max"] == pytest.approx(9.0)

    def test_rejects_weightless_model(self):
        from repro.nn import LayerNorm
        with pytest.raises(ValueError):
            layer_weights(LayerNorm(4))


class TestSweeps:
    def test_rms_search_prefers_wide_exponent_for_wide_data(self):
        rng = np.random.default_rng(0)
        narrow = [rng.normal(size=2048) * 0.05]
        wide = [np.concatenate([rng.normal(size=2048) * 0.05,
                                np.array([8.0, -6.0])])]
        best_narrow, _ = exponent_width_search_rms(narrow, "adaptivfloat", 8,
                                                   range(1, 6))
        best_wide, _ = exponent_width_search_rms(wide, "adaptivfloat", 8,
                                                 range(1, 6))
        assert best_wide >= best_narrow

    def test_rms_search_skips_infeasible_widths(self):
        rng = np.random.default_rng(1)
        best, scores = exponent_width_search_rms(
            [rng.normal(size=256)], "adaptivfloat", 4, range(1, 9))
        assert max(scores) <= 3  # widths >3 don't fit a 4-bit word

    def test_metric_search_direction(self):
        evaluations = {1: 10.0, 2: 30.0, 3: 20.0}
        best_hi, _ = exponent_width_search_metric(
            lambda w: evaluations[w], "adaptivfloat", 8, [1, 2, 3],
            higher_is_better=True)
        best_lo, _ = exponent_width_search_metric(
            lambda w: evaluations[w], "adaptivfloat", 8, [1, 2, 3],
            higher_is_better=False)
        assert best_hi == 2 and best_lo == 1

    def test_bitwidth_sweep_monotone(self):
        rng = np.random.default_rng(2)
        tensors = [rng.normal(size=2048) * 0.1]
        sweep = bitwidth_sweep_rms(tensors, "adaptivfloat", [4, 6, 8])
        assert sweep[8] < sweep[6] < sweep[4]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "30" in lines[4]

    def test_inf_rendering(self):
        text = format_table(["x"], [[float("inf")]])
        assert "inf" in text

    def test_save_and_load_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.analysis import load_result, save_result
        save_result("unit_test", {"a": 1, "b": [1.5, 2.5]})
        assert load_result("unit_test") == {"a": 1, "b": [1.5, 2.5]}
        assert load_result("missing") is None


class TestMixedPrecision:
    def _model(self):
        model = MLP([16, 64, 4], rng=np.random.default_rng(0))
        # layer 0 gets wide, sensitive weights; layer 1 stays narrow
        model.layers[0].weight.data *= np.exp(
            np.random.default_rng(1).uniform(-2, 2, size=(64, 1))
        ).astype(np.float32)
        return model

    def test_budget_respected(self):
        from repro.analysis import assign_mixed_precision, average_bits
        model = self._model()
        assignment = assign_mixed_precision(model, budget_avg_bits=6.0)
        assert average_bits(assignment, model) <= 6.0 + 1e-9

    def test_sensitive_layer_gets_more_bits(self):
        # Equal-size layers isolate sensitivity from bit cost: the
        # wide-distribution layer must receive at least as many bits.
        from repro.analysis import assign_mixed_precision
        model = MLP([32, 32, 32], rng=np.random.default_rng(0))
        model.layers[0].weight.data *= np.exp(
            np.random.default_rng(1).uniform(-2.5, 2.5, size=(32, 1))
        ).astype(np.float32)
        assignment = assign_mixed_precision(model, budget_avg_bits=6.0)
        assert assignment["layers.0.weight"] >= assignment["layers.1.weight"]

    def test_max_budget_promotes_everything(self):
        from repro.analysis import assign_mixed_precision
        model = self._model()
        assignment = assign_mixed_precision(model, budget_avg_bits=8.0)
        assert set(assignment.values()) == {8}

    def test_infeasible_budget_rejected(self):
        from repro.analysis import assign_mixed_precision
        with pytest.raises(ValueError):
            assign_mixed_precision(self._model(), budget_avg_bits=2.0)

    def test_mixed_beats_uniform_width_on_error(self):
        """At the same bit budget, the sensitivity-guided assignment has
        lower total RMS error than a flat mid-width."""
        from repro.analysis import assign_mixed_precision
        from repro.formats import make_quantizer
        from repro.metrics import rms_error
        model = self._model()
        assignment = assign_mixed_precision(model, budget_avg_bits=6.0,
                                            bit_choices=(4, 6, 8))

        def total_error(widths):
            total = 0.0
            for name, w in layer_weights(model):
                q = make_quantizer("adaptivfloat", widths[name])
                total += rms_error(w, q.quantize(w)) ** 2 * w.size
            return total

        flat = {name: 6 for name, _ in layer_weights(model)}
        assert total_error(assignment) <= total_error(flat) * 1.001


class TestTextPlots:
    def test_boxplot_renders_all_rows(self):
        from repro.analysis import ascii_boxplot
        stats = {"a": dict(min=0.0, q1=1.0, median=2.0, q3=3.0, max=4.0),
                 "bb": dict(min=1.0, q1=1.5, median=2.0, q3=2.5, max=3.0)}
        text = ascii_boxplot(stats, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a ") and "#" in lines[1]
        assert lines[2].startswith("bb")

    def test_boxplot_median_marker_position(self):
        from repro.analysis import ascii_boxplot
        stats = {"x": dict(min=0.0, q1=0.0, median=1.0, q3=1.0, max=1.0)}
        text = ascii_boxplot(stats, width=11)
        assert text.splitlines()[0].rstrip().endswith("#]")

    def test_bars(self):
        from repro.analysis import ascii_bars
        text = ascii_bars({"big": 10.0, "small": 1.0})
        big, small = text.splitlines()
        assert big.count("#") > small.count("#")

    def test_histogram(self):
        from repro.analysis import ascii_histogram
        import numpy as np
        text = ascii_histogram(np.random.default_rng(0).normal(size=500),
                               bins=5)
        assert len(text.splitlines()) == 5

    def test_empty_inputs_rejected(self):
        from repro.analysis import ascii_bars, ascii_boxplot, ascii_histogram
        with pytest.raises(ValueError):
            ascii_boxplot({})
        with pytest.raises(ValueError):
            ascii_bars({})
        with pytest.raises(ValueError):
            ascii_histogram([])
