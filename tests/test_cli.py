"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestCli:
    def test_formats_command(self, capsys):
        assert main(["formats", "--bits", "6"]) == 0
        out = capsys.readouterr().out
        assert "adaptivfloat" in out and "posit" in out

    def test_pe_command(self, capsys):
        assert main(["pe", "--kind", "hfint", "--bits", "8",
                     "--vector-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "HFINT8/30" in out and "fJ" in out

    def test_quantize_command(self, tmp_path, capsys):
        src = tmp_path / "w.npy"
        dst = tmp_path / "wq.npy"
        rng = np.random.default_rng(0)
        np.save(src, rng.normal(size=64).astype(np.float32))
        assert main(["quantize", "--fmt", "adaptivfloat", "--bits", "8",
                     str(src), str(dst)]) == 0
        out = np.load(dst)
        assert out.shape == (64,)
        assert "RMS error" in capsys.readouterr().out

    def test_experiment_fig7(self, capsys):
        assert main(["experiment", "fig7"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
