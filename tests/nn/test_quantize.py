"""Tests for the fake-quantization machinery (PTQ / QAR plumbing)."""

import numpy as np
import pytest

import repro.nn as nn
from repro.formats import AdaptivFloat
from repro.nn import (ActFakeQuant, QuantSpec, Tensor,
                      attach_act_quantizers, attach_weight_quantizers,
                      calibrate, detach_quantizers, quantize_weights_inplace)
from repro.nn.models import MLP


def small_model(seed=0):
    return MLP([8, 16, 4], rng=np.random.default_rng(seed))


def data(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape).astype(np.float32))


class TestQuantSpec:
    def test_build_uses_paper_defaults(self):
        q = QuantSpec("adaptivfloat", 8).build()
        assert q.exp_bits == 3
        assert QuantSpec("posit", 4).build().es == 0

    def test_overrides(self):
        q = QuantSpec("adaptivfloat", 8, {"exp_bits": 4}).build()
        assert q.exp_bits == 4

    def test_label(self):
        assert QuantSpec("bfp", 6).label == "bfp6"


class TestWeightQuantization:
    def test_attach_reports_layers(self):
        model = small_model()
        touched = attach_weight_quantizers(model, QuantSpec("adaptivfloat", 8))
        assert touched == ["layers.0", "layers.1"]

    def test_forward_sees_quantized_weights(self):
        model = small_model()
        x = data(4, 8)
        baseline = model(x).data.copy()
        attach_weight_quantizers(model, QuantSpec("uniform", 3))
        coarse = model(x).data
        assert not np.allclose(baseline, coarse)

    def test_latent_weights_unchanged_by_forward(self):
        model = small_model()
        before = model.layers[0].weight.data.copy()
        attach_weight_quantizers(model, QuantSpec("uniform", 3))
        model(data(4, 8))
        np.testing.assert_array_equal(model.layers[0].weight.data, before)

    def test_ste_gradients_reach_latent_weights(self):
        model = small_model()
        attach_weight_quantizers(model, QuantSpec("adaptivfloat", 6))
        out = model(data(4, 8))
        out.sum().backward()
        for _, p in model.named_parameters():
            assert p.grad is not None

    def test_qat_training_reduces_loss(self):
        """End-to-end QAR: quantized-forward training must still learn."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 8)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        model = small_model()
        attach_weight_quantizers(model, QuantSpec("adaptivfloat", 6))
        opt = nn.Adam(model.parameters(), lr=1e-2)
        losses = []
        for _ in range(60):
            logits = model(Tensor(x))
            loss = nn.functional.cross_entropy(logits, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5

    def test_inplace_ptq_changes_weights_and_reports(self):
        model = small_model()
        report = quantize_weights_inplace(model, QuantSpec("adaptivfloat", 8))
        assert set(report) == {"layers.0.weight", "layers.1.weight"}
        assert all("exp_bias" in params for params in report.values())
        fmt = AdaptivFloat(8, 3)
        w = model.layers[0].weight.data
        params = report["layers.0.weight"]
        np.testing.assert_allclose(
            fmt.quantize_with_params(w.astype(np.float64), params), w,
            rtol=1e-6)

    def test_inplace_ptq_preserves_biases(self):
        model = small_model()
        before = model.layers[0].bias.data.copy()
        quantize_weights_inplace(model, QuantSpec("uniform", 4))
        np.testing.assert_array_equal(model.layers[0].bias.data, before)

    def test_detach_restores_fp_behaviour(self):
        model = small_model()
        x = data(4, 8)
        baseline = model(x).data.copy()
        attach_weight_quantizers(model, QuantSpec("uniform", 3))
        detach_quantizers(model)
        np.testing.assert_array_equal(model(x).data, baseline)

    def test_attach_rejects_model_without_targets(self):
        with pytest.raises(ValueError):
            attach_weight_quantizers(nn.LayerNorm(4), QuantSpec("bfp", 8))


class TestActivationQuantization:
    def test_calibration_freezes_grid(self):
        model = small_model()
        observers = attach_act_quantizers(model, QuantSpec("adaptivfloat", 8))
        with calibrate(model):
            model(data(16, 8))
            model(data(16, 8, seed=1))
        for obs in observers.values():
            assert obs.mode == "apply"
            assert obs.params is not None and "exp_bias" in obs.params

    def test_observe_tracks_running_max(self):
        obs = ActFakeQuant(QuantSpec("adaptivfloat", 8).build())
        obs.observe()
        obs(Tensor(np.array([1.0, -3.0], dtype=np.float32)))
        obs(Tensor(np.array([0.5], dtype=np.float32)))
        assert obs.max_abs == 3.0

    def test_frozen_grid_is_static(self):
        """After calibration the grid must NOT adapt to new data — the
        hardware's exp_bias register is programmed offline (Section 5.2)."""
        obs = ActFakeQuant(AdaptivFloat(8, 3))
        obs.observe()
        obs(Tensor(np.array([1.0], dtype=np.float32)))
        obs.freeze()
        bias = obs.params["exp_bias"]
        # Much larger activations now clamp rather than rescale the grid.
        out = obs(Tensor(np.array([1000.0], dtype=np.float32)))
        fmt = AdaptivFloat(8, 3)
        _, vmax = fmt.range_for_bias(bias)
        assert out.data[0] == np.float32(vmax)

    def test_freeze_without_data_raises(self):
        obs = ActFakeQuant(QuantSpec("adaptivfloat", 8).build())
        obs.observe()
        with pytest.raises(RuntimeError):
            obs.freeze()

    def test_nonadaptive_act_quant_needs_no_params(self):
        model = small_model()
        attach_act_quantizers(model, QuantSpec("float", 8))
        with calibrate(model):
            model(data(4, 8))
        out = model(data(4, 8, seed=3))
        assert np.isfinite(out.data).all()

    def test_bypass_is_identity(self):
        obs = ActFakeQuant(QuantSpec("uniform", 4).build())
        x = data(5)
        assert obs(x) is x

    def test_calibrate_without_observers_raises(self):
        model = small_model()
        with pytest.raises(ValueError):
            with calibrate(model):
                pass


class TestWeightQuantizerGranularity:
    def test_adaptive_params_differ_across_layers(self):
        """Per-layer self-adaptation: two layers with different weight
        scales must get different exp_bias values."""
        model = small_model()
        model.layers[0].weight.data *= 100.0
        report = quantize_weights_inplace(model, QuantSpec("adaptivfloat", 8))
        assert (report["layers.0.weight"]["exp_bias"]
                != report["layers.1.weight"]["exp_bias"])

    def test_lstm_weights_quantized(self):
        lstm = nn.LSTM(4, 8)
        report = quantize_weights_inplace(lstm, QuantSpec("adaptivfloat", 8))
        assert "cells.0.weight_ih" in report
        assert "cells.0.weight_hh" in report


class TestPercentileCalibration:
    def test_percentile_clips_outliers(self):
        obs = ActFakeQuant(AdaptivFloat(8, 3), calibration="percentile",
                           percentile=99.0)
        obs.observe()
        rng = np.random.default_rng(0)
        data = rng.normal(size=20000).astype(np.float32)
        data[0] = 1000.0  # a single huge outlier
        obs(Tensor(data))
        obs.freeze()
        max_obs = ActFakeQuant(AdaptivFloat(8, 3))
        max_obs.observe()
        max_obs(Tensor(data))
        max_obs.freeze()
        # percentile anchor ignores the outlier -> more negative exp_bias
        assert obs.params["exp_bias"] < max_obs.params["exp_bias"]

    def test_percentile_reduces_bulk_error(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=20000).astype(np.float32)
        data[:3] = [500.0, -400.0, 300.0]
        bulk = data[np.abs(data) < 4.0]

        def frozen(calibration):
            obs = ActFakeQuant(AdaptivFloat(6, 3), calibration=calibration,
                               percentile=99.5)
            obs.observe()
            obs(Tensor(data))
            obs.freeze()
            return obs

        err_pct = np.abs(frozen("percentile")(Tensor(bulk)).data - bulk).mean()
        err_max = np.abs(frozen("max")(Tensor(bulk)).data - bulk).mean()
        assert err_pct < err_max

    def test_attach_with_percentile(self):
        model = small_model()
        observers = attach_act_quantizers(
            model, QuantSpec("adaptivfloat", 8),
            calibration="percentile", percentile=99.5)
        assert all(o.calibration == "percentile" for o in observers.values())

    def test_invalid_calibration_args(self):
        with pytest.raises(ValueError):
            ActFakeQuant(AdaptivFloat(8, 3), calibration="median")
        with pytest.raises(ValueError):
            ActFakeQuant(AdaptivFloat(8, 3), calibration="percentile",
                         percentile=0.0)


class TestCalibrationReservoir:
    """The percentile sample must be uniform over the *whole* stream."""

    def _observer(self, seed=0x5EED):
        obs = ActFakeQuant(AdaptivFloat(8, 3), calibration="percentile",
                           percentile=99.0, sample_seed=seed)
        obs.observe()
        return obs

    def test_sample_is_bounded(self):
        obs = self._observer()
        obs(Tensor(np.ones(3 * obs._SAMPLE_CAP, dtype=np.float32)))
        assert obs._sample_vals.size == obs._SAMPLE_CAP
        assert obs._sample_count == 3 * obs._SAMPLE_CAP

    def test_late_batches_are_represented(self):
        # Two-phase stream: all-ones then all-twos.  A strided prefix
        # take fills up on phase one and never sees phase two; a uniform
        # reservoir holds ~50% from each phase.
        obs = self._observer()
        n = 2 * obs._SAMPLE_CAP
        obs(Tensor(np.ones(n, dtype=np.float32)))
        obs(Tensor(np.full(n, 2.0, dtype=np.float32)))
        frac_late = float(np.mean(obs._sample_vals == 2.0))
        assert 0.45 < frac_late < 0.55

    def test_sample_is_deterministic_per_seed(self):
        def run(seed):
            obs = self._observer(seed)
            rng = np.random.default_rng(9)
            for _ in range(4):
                obs(Tensor(rng.normal(size=50_000).astype(np.float32)))
            return np.sort(obs._sample_vals)

        assert np.array_equal(run(1), run(1))
        assert not np.array_equal(run(1), run(2))

    def test_small_streams_are_kept_verbatim(self):
        obs = self._observer()
        data = np.arange(1, 101, dtype=np.float32)
        obs(Tensor(data))
        assert np.array_equal(np.sort(obs._sample_vals), data)
