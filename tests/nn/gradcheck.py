"""Central-difference gradient checking for the autodiff engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import Tensor


def numeric_grad(fn: Callable[..., Tensor], tensors: Sequence[Tensor],
                 index: int, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of ``float(fn(*tensors))`` w.r.t. one input."""
    target = tensors[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn(*tensors).data.sum())
        flat[i] = orig - eps
        lo = float(fn(*tensors).data.sum())
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], tensors: Sequence[Tensor],
                    atol: float = 2e-2, rtol: float = 5e-2) -> None:
    """Assert autodiff gradients match central differences for all inputs."""
    for t in tensors:
        t.zero_grad()
    out = fn(*tensors)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(tensors):
        expected = numeric_grad(fn, tensors, i)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        np.testing.assert_allclose(actual, expected, atol=atol, rtol=rtol,
                                   err_msg=f"gradient mismatch on input {i}")
