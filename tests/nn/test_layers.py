"""Tests for stateful layers: shapes, semantics, gradients, registration."""

import numpy as np
import pytest

from repro.nn import (LSTM, AdditiveAttention, BatchNorm2d, Conv2d, Dropout,
                      Embedding, LSTMCell, LayerNorm, Linear,
                      MultiHeadAttention, Sequential, ReLU, Tensor)

from .gradcheck import check_gradients


def data(*shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape).astype(np.float32) * scale)


class TestLinear:
    def test_shapes(self):
        layer = Linear(8, 3)
        assert layer(data(5, 8)).shape == (5, 3)
        assert layer(data(2, 7, 8)).shape == (2, 7, 3)

    def test_trains_to_fit_line(self):
        from repro.nn import SGD
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 2)).astype(np.float32)
        true_w = np.array([[2.0, -3.0]], dtype=np.float32)
        y = x @ true_w.T + 0.5
        layer = Linear(2, 1)
        opt = SGD(layer.parameters(), lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=1e-2)
        np.testing.assert_allclose(layer.bias.data, [0.5], atol=1e-2)

    def test_parameter_gradients(self):
        layer = Linear(4, 3)
        x = data(2, 4)
        check_gradients(lambda w, b: x @ w.swapaxes(0, 1) + b,
                        [layer.weight, layer.bias])


class TestNorms:
    def test_layernorm_output_stats(self):
        layer = LayerNorm(32)
        out = layer(data(4, 32, scale=7.0) + 3.0)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_gradients(self):
        layer = LayerNorm(6)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 6)).astype(np.float32),
                   requires_grad=True)
        check_gradients(lambda t: layer(t), [x])

    def test_batchnorm_train_stats(self):
        layer = BatchNorm2d(3)
        out = layer(data(8, 3, 4, 4, scale=5.0) + 2.0)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_batchnorm_running_stats_used_in_eval(self):
        layer = BatchNorm2d(2)
        x = data(16, 2, 4, 4, scale=3.0) + 1.0
        for _ in range(100):
            layer(x)
        layer.eval()
        out_eval = layer(x)
        # With converged running stats, eval output ~ train output.
        layer.train()
        out_train = layer(x)
        np.testing.assert_allclose(out_eval.data, out_train.data, atol=0.05)

    def test_batchnorm_eval_no_stat_update(self):
        layer = BatchNorm2d(2).eval()
        before = layer.running_mean.copy()
        layer(data(4, 2, 4, 4))
        np.testing.assert_array_equal(layer.running_mean, before)


class TestConvLayer:
    def test_shape_and_padding(self):
        layer = Conv2d(3, 8, kernel_size=3, stride=1, padding=1)
        assert layer(data(2, 3, 8, 8)).shape == (2, 8, 8, 8)

    def test_downsample(self):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        assert layer(data(2, 3, 8, 8)).shape == (2, 8, 4, 4)


class TestEmbedding:
    def test_lookup(self):
        layer = Embedding(10, 4)
        ids = np.array([[1, 2], [3, 3]])
        out = layer(ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[1, 0], layer.weight.data[3])


class TestLSTM:
    def test_cell_shapes(self):
        cell = LSTMCell(6, 8)
        h, c = cell.initial_state(4)
        h2, c2 = cell(data(4, 6), (h, c))
        assert h2.shape == (4, 8) and c2.shape == (4, 8)

    def test_sequence_shapes(self):
        lstm = LSTM(6, 8, num_layers=2)
        out, state = lstm(data(4, 5, 6))
        assert out.shape == (4, 5, 8)
        assert len(state) == 2
        np.testing.assert_allclose(out.data[:, -1, :], state[-1][0].data)

    def test_gradients_flow_through_time(self):
        lstm = LSTM(3, 4)
        x = data(2, 6, 3)
        out, _ = lstm(x)
        out.sum().backward()
        for _, p in lstm.named_parameters():
            assert p.grad is not None
            assert np.abs(p.grad).sum() > 0

    def test_learns_to_remember_first_token(self):
        """An LSTM must be able to latch a bit across 8 steps."""
        from repro.nn import Adam, functional as F
        rng = np.random.default_rng(0)
        lstm = LSTM(2, 16, rng=rng)
        head = Linear(16, 2, rng=rng)
        params = lstm.parameters() + head.parameters()
        opt = Adam(params, lr=1e-2)
        for _ in range(150):
            bits = rng.integers(0, 2, size=16)
            x = np.zeros((16, 8, 2), dtype=np.float32)
            x[np.arange(16), 0, bits] = 1.0
            out, _ = lstm(Tensor(x))
            logits = head(out[:, -1, :])
            loss = F.cross_entropy(logits, bits)
            opt.zero_grad()
            loss.backward()
            opt.step()
        bits = rng.integers(0, 2, size=32)
        x = np.zeros((32, 8, 2), dtype=np.float32)
        x[np.arange(32), 0, bits] = 1.0
        out, _ = lstm(Tensor(x))
        pred = head(out[:, -1, :]).data.argmax(axis=-1)
        assert (pred == bits).mean() > 0.9


class TestAttention:
    def test_mha_shape(self):
        mha = MultiHeadAttention(16, 4)
        q, k, v = data(2, 5, 16), data(2, 7, 16, seed=1), data(2, 7, 16, seed=2)
        assert mha(q, k, v).shape == (2, 5, 16)

    def test_mha_mask_blocks_positions(self):
        mha = MultiHeadAttention(8, 2)
        x = data(1, 4, 8)
        # Causal mask: position 0 may only attend to itself; changing
        # position 3 must not change output at position 0.
        causal = np.triu(np.ones((4, 4), dtype=bool), k=1)[None, None]
        out1 = mha(x, x, x, mask=causal).data.copy()
        x2 = Tensor(x.data.copy())
        x2.data[0, 3] += 10.0
        out2 = mha(x2, x2, x2, mask=causal).data
        np.testing.assert_allclose(out1[0, 0], out2[0, 0], atol=1e-5)
        assert not np.allclose(out1[0, 3], out2[0, 3], atol=1e-3)

    def test_mha_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_additive_attention_weights(self):
        attn = AdditiveAttention(4, 6, 8)
        ctx = attn(data(3, 4), data(3, 5, 6, seed=1))
        assert ctx.shape == (3, 6)

    def test_additive_attention_mask(self):
        attn = AdditiveAttention(4, 6, 8)
        keys = data(2, 5, 6, seed=1)
        mask = np.zeros((2, 5), dtype=bool)
        mask[:, 3:] = True  # block the padded tail
        ctx1 = attn(data(2, 4), keys, mask=mask).data.copy()
        keys.data[:, 3:] += 100.0  # perturb only blocked positions
        ctx2 = attn(data(2, 4), keys, mask=mask).data
        np.testing.assert_allclose(ctx1, ctx2, atol=1e-5)


class TestModuleSystem:
    def test_named_parameters_paths(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = dict(model.named_parameters())
        assert "0.weight" in names and "2.bias" in names

    def test_state_dict_roundtrip(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        state = model.state_dict()
        model2 = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        model2.load_state_dict(state)
        x = data(3, 4)
        np.testing.assert_allclose(model(x).data, model2(x).data)

    def test_state_dict_mismatch_raises(self):
        model = Sequential(Linear(4, 8))
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(3)})

    def test_dropout_mode_follows_module(self):
        layer = Dropout(0.5)
        x = data(100, 100)
        layer.eval()
        assert layer(x) is x
        layer.train()
        assert (layer(x).data == 0).mean() > 0.3

    def test_num_parameters(self):
        assert Linear(4, 8).num_parameters() == 4 * 8 + 8
