"""Tests for beam-search decoding on both sequence models."""

import numpy as np
import pytest

from repro.data import SpeechTask, TranslationTask
from repro.metrics import bleu_score, wer_score
from repro.nn.models import Seq2Seq, Seq2SeqConfig, Transformer, TransformerConfig


@pytest.fixture(scope="module")
def transformer():
    model = Transformer(TransformerConfig(), rng=np.random.default_rng(0))
    return model.eval()  # decoding comparisons need dropout off


@pytest.fixture(scope="module")
def seq2seq():
    model = Seq2Seq(Seq2SeqConfig(), rng=np.random.default_rng(0))
    return model.eval()


class TestTransformerBeam:
    def test_beam1_matches_greedy(self, transformer):
        """Beam size 1 with no length penalty is greedy decoding."""
        task = TranslationTask()
        batch = next(task.batches(3, 1))
        greedy = task.strip(transformer.greedy_decode(batch.src, max_len=10))
        beam = task.strip(transformer.beam_decode(batch.src, beam_size=1,
                                                  max_len=10,
                                                  length_penalty=0.0))
        assert greedy == beam

    def test_beam_output_shape(self, transformer):
        task = TranslationTask()
        batch = next(task.batches(4, 1))
        out = transformer.beam_decode(batch.src, beam_size=3, max_len=8)
        assert out.shape[0] == 4
        assert out.shape[1] <= 8

    def test_invalid_beam_size(self, transformer):
        with pytest.raises(ValueError):
            transformer.beam_decode(np.array([[5, 2]]), beam_size=0)


class TestSeq2SeqBeam:
    def test_beam1_matches_greedy(self, seq2seq):
        task = SpeechTask()
        batch = next(task.batches(3, 1))
        greedy = task.strip(seq2seq.greedy_decode(batch.frames, max_len=8))
        beam = task.strip(seq2seq.beam_decode(batch.frames, beam_size=1,
                                              max_len=8, length_penalty=0.0))
        assert greedy == beam

    def test_beam_shape(self, seq2seq):
        task = SpeechTask()
        batch = next(task.batches(2, 1))
        out = seq2seq.beam_decode(batch.frames, beam_size=3, max_len=6)
        assert out.shape[0] == 2

    def test_invalid_beam_size(self, seq2seq):
        with pytest.raises(ValueError):
            seq2seq.beam_decode(np.zeros((1, 4, 16), dtype=np.float32),
                                beam_size=-2)


class TestBeamQuality:
    def test_beam_at_least_greedy_on_trained_model(self):
        """On a briefly-trained model beam search should not lose to
        greedy by a meaningful margin (corpus BLEU)."""
        import repro.nn as nn
        from repro.nn import functional as F
        rng = np.random.default_rng(2)
        model = Transformer(TransformerConfig(), rng=rng)
        task = TranslationTask()
        opt = nn.Adam(model.parameters(), lr=2e-3)
        for batch in task.batches(16, 120):
            loss = F.cross_entropy(model(batch.src, batch.tgt_in),
                                   batch.tgt_out, ignore_index=0)
            opt.zero_grad()
            loss.backward()
            opt.step()
        model.eval()
        batch = task.eval_set(24)
        refs = task.strip(batch.tgt_out)
        greedy = bleu_score(refs, task.strip(
            model.greedy_decode(batch.src, max_len=14)))
        beam = bleu_score(refs, task.strip(
            model.beam_decode(batch.src, beam_size=4, max_len=14)))
        assert beam >= greedy - 3.0
