"""Tests for optimizers and gradient utilities."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, Parameter, clip_grad_norm


def quadratic_param(start=5.0):
    return Parameter(np.array([start], dtype=np.float32))


def run_steps(optimizer, param, steps=200):
    for _ in range(steps):
        loss = (param * param).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(run_steps(SGD([p], lr=0.1), p)) < 1e-3

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = abs(run_steps(SGD([p1], lr=0.01), p1, steps=50))
        momentum = abs(run_steps(SGD([p2], lr=0.01, momentum=0.9), p2, steps=50))
        assert momentum < plain

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        # zero gradient: only decay acts
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_gradless_params(self):
        p = quadratic_param()
        SGD([p], lr=0.1).step()  # no grad: must not crash or move
        assert p.data[0] == 5.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(run_steps(Adam([p], lr=0.1), p, steps=300)) < 1e-2

    def test_bias_correction_first_step(self):
        # After one step from a constant gradient, Adam moves ~lr.
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(0.9, abs=1e-3)

    def test_per_parameter_scaling(self):
        # Adam normalizes per-coordinate: both coordinates move equally
        # despite a 100x gradient-scale difference.
        p = Parameter(np.array([1.0, 1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([0.01, 1.0], dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(p.data[1], abs=1e-4)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        total = clip_grad_norm([p], max_norm=1.0)
        assert total == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])
