"""Tests for the runtime numeric sanitizer (:mod:`repro.nn.sanitize`).

The acceptance scenarios from the issue: a NaN injected mid-backward
during a QAR step is reported with layer/op provenance; an overflowing
quantize boundary raises a clamp-storm; a clean PTQ run completes with
zero findings and sub-2x overhead.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import sanitize
from repro.rng import fresh_rng

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def small_model():
    return nn.Sequential(nn.Linear(16, 16), nn.ReLU(), nn.Linear(16, 4))


class PoisonBackward(nn.Module):
    """Identity forward; injects a NaN into the upstream gradient."""

    def forward(self, x):
        def backward(grad):
            g = np.array(grad, copy=True)
            g.flat[0] = np.nan
            x._accumulate(g)
        return F._op(x.data.copy(), (x,), backward)


def qar_step(model, x):
    """One quantization-aware-retraining step: fake-quantized forward,
    then backward through the straight-through estimator."""
    nn.attach_weight_quantizers(model, nn.QuantSpec("adaptivfloat", 4))
    out = model(nn.Tensor(x))
    loss = (out * out).sum()
    loss.backward()
    return loss


class TestCleanRuns:
    def test_clean_forward_backward_has_no_findings(self):
        model = small_model()
        x = fresh_rng(0).normal(size=(8, 16))
        with nn.Sanitizer(model) as report:
            qar_step(model, x)
        assert report.findings == []
        assert report.ops_checked > 20

    def test_clean_ptq_eval_has_no_findings(self):
        model = small_model()
        nn.quantize_weights_inplace(model, nn.QuantSpec("adaptivfloat", 8))
        model.eval()
        x = fresh_rng(1).normal(size=(8, 16))
        with nn.Sanitizer(model) as report, nn.no_grad():
            model(nn.Tensor(x))
        assert report.findings == []
        assert report.ops_checked > 0  # no-grad ops are still screened

    def test_inactive_by_default(self):
        assert not sanitize.is_active()
        assert sanitize.global_report() is None


class TestBackwardNaN:
    def build(self):
        model = nn.Sequential(nn.Linear(8, 8), PoisonBackward(),
                              nn.Linear(8, 2))
        x = fresh_rng(2).normal(size=(4, 8))
        return model, x

    def test_injected_nan_reported_with_layer_and_op(self):
        model, x = self.build()
        with nn.Sanitizer(model) as report:
            qar_step(model, x)
        nans = report.by_kind("backward-nan")
        assert nans, report.render()
        first = nans[0]
        # the poisoned gradient flows into the *first* Linear's output:
        # the report must name that layer and a real op, not placeholders
        assert first.layer == "0"
        assert first.op not in ("", "<op>")
        assert first.stats["nan"] >= 1

    def test_raise_mode_raises_numeric_fault(self):
        model, x = self.build()
        with pytest.raises(nn.NumericFault) as exc:
            with nn.Sanitizer(model, action="raise"):
                qar_step(model, x)
        assert exc.value.finding.kind == "backward-nan"
        assert "backward-nan" in str(exc.value)

    def test_leaf_gradients_are_checked(self):
        # poison sits directly above a parameter: the NaN lands in a
        # leaf gradient after the topo walk finishes
        model = nn.Sequential(PoisonBackward(), nn.Linear(8, 2))
        x = fresh_rng(3).normal(size=(4, 8))
        with nn.Sanitizer(model) as report:
            out = model(nn.Tensor(x, requires_grad=True))
            (out * out).sum().backward()
        kinds = {f.kind for f in report.findings}
        assert "backward-nan" in kinds


class TestQuantizeBoundary:
    def test_clamp_storm_reports_layer(self):
        class Saturating(nn.Module):
            def forward(self, x):
                return F.fake_quantize(x, lambda a: np.clip(a, -2.0, 2.0))

        model = nn.Sequential(Saturating())
        data = np.concatenate([np.full(60, 1e4), np.linspace(0.1, 1.0, 40)])
        with nn.Sanitizer(model) as report:
            model(nn.Tensor(data))
        storms = report.by_kind("clamp-storm")
        assert storms, report.render()
        assert storms[0].layer == "0"
        assert storms[0].op == "fake_quantize"
        assert storms[0].stats["clamped_fraction"] > 0.25

    def test_underflow_flood(self):
        x = nn.Tensor(np.full(100, 1e-8))
        with nn.Sanitizer() as report:
            F.fake_quantize(x, lambda a: np.zeros_like(a))
        floods = report.by_kind("underflow-flood")
        assert floods and floods[0].stats["flooded_fraction"] == 1.0

    def test_quantizer_manufacturing_nan(self):
        x = nn.Tensor(np.ones(10))
        with nn.Sanitizer() as report:
            F.fake_quantize(x, lambda a: np.full_like(a, np.nan))
        assert report.by_kind("quantize-nan")

    def test_real_format_is_quiet_on_tame_data(self):
        from repro.formats import make_quantizer
        q = make_quantizer("adaptivfloat", 8)
        x = nn.Tensor(fresh_rng(4).normal(size=(32, 32)))
        with nn.Sanitizer() as report:
            F.fake_quantize(x, q.quantize)
        assert report.findings == []


@pytest.mark.filterwarnings("ignore:overflow encountered")
class TestForwardChecks:
    def test_fresh_overflow_is_reported(self):
        x = nn.Tensor(np.array([700.0, 710.0]))
        with nn.Sanitizer() as report:
            x.exp()  # exp(710) overflows float32/64 -> inf
        assert report.by_kind("forward-overflow")

    def test_propagated_nonfinite_not_rereported(self):
        x = nn.Tensor(np.array([700.0, 710.0]))
        with nn.Sanitizer() as report:
            y = x.exp()   # the originating op: one finding
            y * 2.0       # propagation: no second finding
        assert len(report.by_kind("forward-overflow")) == 1

    def test_masked_fill_inf_is_exempt(self):
        x = nn.Tensor(np.ones((2, 4)))
        mask = np.array([[True, False, False, False]] * 2)
        with nn.Sanitizer() as report:
            y = F.masked_fill(x, mask, float("-inf"))
            F.softmax(y, axis=-1)
        assert report.findings == []

    def test_max_findings_truncates(self):
        x = nn.Tensor(np.array([710.0]))
        with nn.Sanitizer(max_findings=2) as report:
            for _ in range(5):
                x.exp()
        assert len(report.findings) == 2 and report.truncated


class TestEnvKnob:
    def test_repro_sanitize_env_traps_overflow(self):
        code = (
            "import numpy as np\n"
            "from repro import nn\n"
            "nn.Tensor(np.array([710.0])).exp()\n"  # overflows to inf
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": SRC, "REPRO_SANITIZE": "1"},
            capture_output=True, text=True)
        assert proc.returncode != 0
        assert "NumericFault" in proc.stderr
        # clean under the same knob
        ok = subprocess.run(
            [sys.executable, "-c",
             "import numpy as np\nfrom repro import nn\n"
             "(nn.Tensor(np.ones(4), requires_grad=True) * 2.0)"
             ".sum().backward()\n"],
            env={**os.environ, "PYTHONPATH": SRC, "REPRO_SANITIZE": "1"},
            capture_output=True, text=True)
        assert ok.returncode == 0, ok.stderr

    def test_env_collect_mode_populates_global_report(self):
        code = (
            "import numpy as np\n"
            "from repro import nn\n"
            "from repro.nn import sanitize\n"
            "assert sanitize.is_active()\n"
            "nn.Tensor(np.array([710.0])).exp()\n"
            "report = sanitize.global_report()\n"
            "assert report.by_kind('forward-overflow'), report.render()\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": SRC, "REPRO_SANITIZE": "1",
                 "REPRO_SANITIZE_ACTION": "collect"},
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


class TestOverhead:
    def test_sanitizer_overhead_under_2x(self):
        """Issue acceptance: a clean run under the sanitizer stays <2x."""
        # realistic layer sizes: the matmuls must dominate so the hook's
        # O(n) min/max screen is amortized (tiny toy layers would measure
        # Python dispatch, not the sanitizer)
        model = nn.Sequential(nn.Linear(256, 256), nn.ReLU(),
                              nn.Linear(256, 64))
        nn.quantize_weights_inplace(model, nn.QuantSpec("adaptivfloat", 8))
        model.eval()
        x = nn.Tensor(fresh_rng(5).normal(size=(128, 256)))

        def timed(reps=20):
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                with nn.no_grad():
                    for _ in range(reps):
                        model(x)
                best = min(best, time.perf_counter() - t0)
            return best

        timed(5)  # warm caches (codebooks, import side effects)
        plain = timed()
        with nn.Sanitizer(model):
            instrumented = timed()
        assert instrumented < 2.0 * plain, \
            f"sanitizer overhead {instrumented / plain:.2f}x"

    def test_hooks_are_noops_when_inactive(self):
        # direct calls with no state must bail without touching anything
        sanitize.on_quantize(np.ones(3), np.ones(3))
        t = nn.Tensor(np.ones(3))
        t.grad = None
        sanitize.on_grad(t)
        sanitize.on_op(t, t.data, (), None)


class TestThreadLocality:
    """Sanitizer scopes are per-thread: the serving engine probes worker
    batches under its own Sanitizer while other workers run clean, so a
    context entered on one thread must neither observe nor trap ops
    running on another."""

    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_concurrent_sanitizers_do_not_cross_talk(self):
        import threading

        x = fresh_rng(2).normal(size=(4, 16))
        clean_model = small_model()
        reports = {}
        barrier = threading.Barrier(2)

        def dirty():
            barrier.wait()
            with nn.Sanitizer(action="collect") as report:
                for _ in range(3):
                    nn.Tensor(np.array([710.0])).exp()  # fresh overflow
            reports["dirty"] = report

        def clean():
            barrier.wait()
            with nn.Sanitizer(clean_model, action="collect") as report:
                with nn.no_grad():
                    for _ in range(5):
                        clean_model(nn.Tensor(x))
            reports["clean"] = report

        threads = [threading.Thread(target=dirty),
                   threading.Thread(target=clean)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # the overflow findings land only in the thread that raised them
        assert reports["clean"].findings == []
        assert reports["dirty"].by_kind("forward-overflow")

    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_other_threads_ops_are_not_attributed(self):
        import threading

        def unsanitized_overflow():
            nn.Tensor(np.array([710.0])).exp()

        with nn.Sanitizer(action="collect") as report:
            worker = threading.Thread(target=unsanitized_overflow)
            worker.start()
            worker.join()
        # the worker thread had no sanitizer state: its overflow is
        # invisible to the context entered on this thread
        assert report.findings == []
        assert report.ops_checked == 0
