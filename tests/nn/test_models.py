"""Tests for the three paper model families."""

import numpy as np
import pytest

import repro.nn as nn
from repro.data import ImageTask, SpeechTask, TranslationTask
from repro.nn.models import (MLP, ResNet, ResNetConfig, Seq2Seq,
                             Seq2SeqConfig, Transformer, TransformerConfig,
                             causal_mask, padding_mask)


class TestMasks:
    def test_causal_mask_blocks_future(self):
        mask = causal_mask(4)
        assert mask.shape == (1, 1, 4, 4)
        assert not mask[0, 0, 2, 2] and mask[0, 0, 2, 3]

    def test_padding_mask(self):
        ids = np.array([[5, 6, 0, 0]])
        mask = padding_mask(ids, pad_id=0)
        assert mask.shape == (1, 1, 1, 4)
        np.testing.assert_array_equal(mask[0, 0, 0], [False, False, True, True])


class TestTransformer:
    @pytest.fixture(scope="class")
    def model(self):
        return Transformer(TransformerConfig(), rng=np.random.default_rng(0))

    def test_forward_shape(self, model):
        task = TranslationTask()
        batch = next(task.batches(4, 1))
        logits = model(batch.src, batch.tgt_in)
        assert logits.shape == (4, batch.tgt_in.shape[1],
                                model.config.tgt_vocab)

    def test_greedy_decode_terminates(self, model):
        task = TranslationTask()
        batch = next(task.batches(4, 1))
        out = model.greedy_decode(batch.src, max_len=12)
        assert out.shape[0] == 4 and out.shape[1] <= 12

    def test_padding_invariance(self, model):
        """Extra PAD columns on the source must not change the output."""
        model.eval()
        src = np.array([[5, 6, 7, 2]])
        padded = np.array([[5, 6, 7, 2, 0, 0, 0]])
        a = model.greedy_decode(src, max_len=8)
        b = model.greedy_decode(padded, max_len=8)
        np.testing.assert_array_equal(a, b)

    def test_causality_of_training_logits(self, model):
        """Changing target token t must not affect logits before t."""
        model.eval()
        src = np.array([[5, 6, 7, 2]])
        tgt = np.array([[1, 10, 11, 12]])
        with nn.no_grad():
            base = model(src, tgt).data.copy()
            tgt2 = tgt.copy()
            tgt2[0, 3] = 40
            changed = model(src, tgt2).data
        np.testing.assert_allclose(base[0, :3], changed[0, :3], atol=1e-5)

    def test_heavy_tailed_init_spread(self):
        wide = Transformer(TransformerConfig(),
                           rng=np.random.default_rng(0))
        narrow = Transformer(TransformerConfig(embedding_gain_spread=1.0,
                                               generator_gain_spread=1.0),
                             rng=np.random.default_rng(0))
        ratio_wide = (np.abs(wide.src_embed.weight.data).max()
                      / wide.src_embed.weight.data.std())
        ratio_narrow = (np.abs(narrow.src_embed.weight.data).max()
                        / narrow.src_embed.weight.data.std())
        assert ratio_wide > 1.5 * ratio_narrow


class TestSeq2Seq:
    @pytest.fixture(scope="class")
    def model(self):
        return Seq2Seq(Seq2SeqConfig(), rng=np.random.default_rng(0))

    def test_forward_shape(self, model):
        task = SpeechTask()
        batch = next(task.batches(4, 1))
        logits = model(batch.frames, batch.tgt_in)
        assert logits.shape == (4, batch.tgt_in.shape[1], model.config.vocab)

    def test_greedy_decode_shapes(self, model):
        task = SpeechTask()
        batch = next(task.batches(3, 1))
        out = model.greedy_decode(batch.frames)
        assert out.shape[0] == 3
        assert out.shape[1] <= model.config.max_len

    def test_gradients_reach_all_parameters(self, model):
        task = SpeechTask()
        batch = next(task.batches(2, 1))
        model.train()
        loss = nn.functional.cross_entropy(
            model(batch.frames, batch.tgt_in), batch.tgt_out, ignore_index=0)
        model.zero_grad()
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []


class TestResNet:
    @pytest.fixture(scope="class")
    def model(self):
        return ResNet(ResNetConfig(blocks_per_stage=1),
                      rng=np.random.default_rng(0))

    def test_forward_shape(self, model):
        task = ImageTask()
        batch = task.sample(4, np.random.default_rng(0))
        logits = model(batch.images)
        assert logits.shape == (4, 10)

    def test_spatial_downsampling(self, model):
        # 3 stages with stride-2 at stage boundaries: 16 -> 8 -> 4.
        import repro.nn.functional as F
        from repro.nn import Tensor
        x = Tensor(np.zeros((1, 3, 16, 16), dtype=np.float32))
        x = F.relu(model.stem_bn(model.stem_conv(x)))
        for block in model.blocks:
            x = block(x)
        assert x.shape == (1, 64, 4, 4)

    def test_predict_eval_mode(self, model):
        task = ImageTask()
        batch = task.sample(4, np.random.default_rng(0))
        model.eval()
        pred = model.predict(batch.images)
        assert pred.shape == (4,)
        assert pred.dtype == np.int64

    def test_batchnorm_stats_survive_state_dict(self, model):
        task = ImageTask()
        batch = task.sample(8, np.random.default_rng(0))
        model.train()
        model(batch.images)  # updates running stats
        state = model.state_dict()
        clone = ResNet(ResNetConfig(blocks_per_stage=1))
        clone.load_state_dict(state)
        model.eval(), clone.eval()
        with nn.no_grad():
            np.testing.assert_allclose(model(batch.images).data,
                                       clone(batch.images).data, atol=1e-5)


class TestMLP:
    def test_forward(self):
        mlp = MLP([4, 8, 2])
        out = mlp(np.zeros((3, 4), dtype=np.float32))
        assert out.shape == (3, 2)

    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])
