"""Tests for bit-packed quantized checkpoints."""

import numpy as np
import pytest

from repro.nn import QuantSpec
from repro.nn.checkpoint import (load_quantized, quantized_size_bytes,
                                 save_quantized)
from repro.nn.models import MLP, ResNet, ResNetConfig


def build(seed=0):
    return MLP([16, 32, 8], rng=np.random.default_rng(seed))


@pytest.mark.parametrize("fmt", ["adaptivfloat", "uniform", "bfp"])
def test_roundtrip_bit_exact(fmt, tmp_path):
    model = build()
    save_quantized(model, QuantSpec(fmt, 6), tmp_path / "ckpt")
    quantized = {n: p.data.copy() for n, p in model.named_parameters()}

    fresh = build(seed=99)  # different weights before loading
    load_quantized(fresh, tmp_path / "ckpt")
    for name, param in fresh.named_parameters():
        np.testing.assert_array_equal(param.data, quantized[name], err_msg=name)


def test_size_reduction(tmp_path):
    model = build()
    fp32_bytes = sum(p.data.nbytes for n, p in model.named_parameters()
                     if "weight" in n)
    save_quantized(model, QuantSpec("adaptivfloat", 4), tmp_path / "ckpt")
    sizes = quantized_size_bytes(tmp_path / "ckpt")
    assert sizes["packed_weights"] <= fp32_bytes / 8 + 8  # 4 vs 32 bits


def test_unpackable_format_rejected(tmp_path):
    with pytest.raises(ValueError):
        save_quantized(build(), QuantSpec("posit", 8), tmp_path / "ckpt")


def test_buffers_roundtrip(tmp_path):
    model = ResNet(ResNetConfig(blocks_per_stage=1),
                   rng=np.random.default_rng(0))
    model.blocks[0].bn1.running_mean += 7.0
    save_quantized(model, QuantSpec("adaptivfloat", 8), tmp_path / "ckpt")
    fresh = ResNet(ResNetConfig(blocks_per_stage=1),
                   rng=np.random.default_rng(5))
    load_quantized(fresh, tmp_path / "ckpt")
    assert fresh.blocks[0].bn1.running_mean[0] == pytest.approx(7.0)


def test_inference_identical_after_roundtrip(tmp_path):
    rng = np.random.default_rng(3)
    x = rng.normal(size=(4, 16)).astype(np.float32)
    model = build()
    save_quantized(model, QuantSpec("adaptivfloat", 6), tmp_path / "ckpt")
    expected = model(x).data.copy()
    fresh = build(seed=42)
    load_quantized(fresh, tmp_path / "ckpt")
    np.testing.assert_array_equal(fresh(x).data, expected)
