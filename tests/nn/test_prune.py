"""Tests for magnitude pruning and its composition with quantization."""

import numpy as np
import pytest

from repro.formats import AdaptivFloat, make_quantizer
from repro.nn import QuantSpec, quantize_weights_inplace
from repro.nn.models import MLP
from repro.nn.prune import magnitude_prune, sparsity_report


def model_with_weights(seed=0):
    return MLP([16, 32, 8], rng=np.random.default_rng(seed))


class TestMagnitudePrune:
    def test_global_sparsity_hits_target(self):
        model = model_with_weights()
        magnitude_prune(model, 0.5, scope="global")
        report = sparsity_report(model)
        assert report["__overall__"] == pytest.approx(0.5, abs=0.02)

    def test_layer_scope_prunes_each_layer(self):
        model = model_with_weights()
        magnitude_prune(model, 0.5, scope="layer")
        report = sparsity_report(model)
        for name, rate in report.items():
            if name != "__overall__":
                assert rate == pytest.approx(0.5, abs=0.02), name

    def test_keeps_largest_weights(self):
        model = model_with_weights()
        big = float(np.abs(model.layers[0].weight.data).max())
        magnitude_prune(model, 0.9)
        assert np.abs(model.layers[0].weight.data).max() == pytest.approx(big)

    def test_masks_returned(self):
        model = model_with_weights()
        masks = magnitude_prune(model, 0.3)
        for name, mask in masks.items():
            assert mask.dtype == bool

    def test_zero_sparsity_is_noop(self):
        model = model_with_weights()
        before = model.layers[0].weight.data.copy()
        magnitude_prune(model, 0.0)
        np.testing.assert_array_equal(model.layers[0].weight.data, before)

    def test_invalid_args(self):
        model = model_with_weights()
        with pytest.raises(ValueError):
            magnitude_prune(model, 1.0)
        with pytest.raises(ValueError):
            magnitude_prune(model, 0.5, scope="banana")


class TestComposesWithQuantization:
    def test_adaptivfloat_preserves_pruned_zeros(self):
        """The paper's Section 2 composition claim: AdaptivFloat encodes
        zero exactly, so sparsity survives quantization bit-for-bit."""
        model = model_with_weights()
        magnitude_prune(model, 0.6)
        before = sparsity_report(model)["__overall__"]
        quantize_weights_inplace(model, QuantSpec("adaptivfloat", 6))
        after = sparsity_report(model)["__overall__"]
        assert after >= before  # tiny nonzeros may round to 0, never 0->nonzero

    def test_zero_is_exact_codepoint(self):
        fmt = AdaptivFloat(8, 3)
        out = fmt.quantize_with_params(np.zeros(4), {"exp_bias": -4})
        assert (out == 0.0).all()

    def test_pruned_plus_quantized_model_close_to_quantized(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 16)).astype(np.float32)
        model = model_with_weights()
        dense = model(x).data.copy()
        magnitude_prune(model, 0.3)
        quantize_weights_inplace(model, QuantSpec("adaptivfloat", 8))
        sparse_q = model(x).data
        # 30% of the smallest weights + 8-bit quantization: outputs move,
        # but remain correlated with the dense model.
        corr = np.corrcoef(dense.ravel(), sparse_q.ravel())[0, 1]
        assert corr > 0.9
