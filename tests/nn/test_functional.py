"""Gradient and behaviour tests for functional NN ops."""

import numpy as np
import pytest

from repro.nn import Tensor, functional as F

from .gradcheck import check_gradients


def rand(*shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape).astype(np.float32) * scale,
                  requires_grad=True)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(rand(4, 7), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_softmax_gradient(self):
        check_gradients(lambda t: F.softmax(t, axis=-1) * rand(3, 5, seed=9).data,
                        [rand(3, 5)])

    def test_log_softmax_gradient(self):
        check_gradients(lambda t: F.log_softmax(t, axis=-1) * rand(3, 5, seed=9).data,
                        [rand(3, 5)])

    def test_softmax_stable_for_large_logits(self):
        big = Tensor(np.array([[1000.0, 1000.0, 0.0]], dtype=np.float32))
        out = F.softmax(big, axis=-1)
        assert np.isfinite(out.data).all()


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = rand(4, 6)
        targets = np.array([0, 3, 5, 1])
        loss = F.cross_entropy(logits, targets)
        logp = F.log_softmax(logits, axis=-1).data
        expected = -logp[np.arange(4), targets].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_ignore_index(self):
        logits = rand(4, 6)
        targets = np.array([0, 3, -1, -1])
        loss = F.cross_entropy(logits, targets, ignore_index=-1)
        logp = F.log_softmax(logits, axis=-1).data
        expected = -logp[np.arange(2), targets[:2]].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_gradient(self):
        targets = np.array([1, 0, 2])
        check_gradients(lambda t: F.cross_entropy(t, targets), [rand(3, 4)])

    def test_label_smoothing_increases_loss_on_confident_model(self):
        logits = Tensor(np.eye(3, dtype=np.float32) * 20.0)
        targets = np.arange(3)
        plain = F.cross_entropy(logits, targets).item()
        smooth = F.cross_entropy(logits, targets, label_smoothing=0.1).item()
        assert smooth > plain

    def test_3d_logits(self):
        logits = rand(2, 5, 7)
        targets = np.zeros((2, 5), dtype=np.int64)
        loss = F.cross_entropy(logits, targets)
        assert np.isfinite(loss.item())


class TestEmbeddingAndMask:
    def test_embedding_gradient_scatter(self):
        w = rand(5, 3)
        ids = np.array([1, 1, 4])
        out = F.embedding(w, ids)
        out.backward(np.ones_like(out.data))
        expected = np.zeros((5, 3), dtype=np.float32)
        expected[1] = 2.0
        expected[4] = 1.0
        np.testing.assert_allclose(w.grad, expected)

    def test_masked_fill(self):
        x = rand(2, 3)
        mask = np.array([[True, False, False], [False, True, False]])
        out = F.masked_fill(x, mask, -1e9)
        assert out.data[0, 0] == np.float32(-1e9)
        out.backward(np.ones_like(out.data))
        assert x.grad[0, 0] == 0.0 and x.grad[0, 1] == 1.0


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = rand(10, 10)
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_training_scales_kept_values(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, 0.25, training=True, rng=rng)
        kept = out.data[out.data != 0]
        np.testing.assert_allclose(kept, 1.0 / 0.75, rtol=1e-6)
        assert abs(out.data.mean() - 1.0) < 0.02


class TestConcat:
    def test_cat_gradient(self):
        check_gradients(lambda a, b: F.cat([a, b], axis=1) * 2.0,
                        [rand(2, 3), rand(2, 4, seed=1)])


class TestConv:
    def test_conv2d_matches_naive(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)).astype(np.float32))
        b = Tensor(rng.normal(size=(4,)).astype(np.float32))
        out = F.conv2d(x, w, b, stride=1, padding=1).data

        xp = np.pad(x.data, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros_like(out)
        for n in range(2):
            for f in range(4):
                for i in range(6):
                    for j in range(6):
                        patch = xp[n, :, i:i + 3, j:j + 3]
                        naive[n, f, i, j] = (patch * w.data[f]).sum() + b.data[f]
        np.testing.assert_allclose(out, naive, rtol=1e-4, atol=1e-4)

    def test_conv2d_stride_shape(self):
        x = rand(1, 2, 8, 8)
        w = rand(5, 2, 3, 3, seed=1)
        out = F.conv2d(x, w, None, stride=2, padding=1)
        assert out.shape == (1, 5, 4, 4)

    def test_conv2d_gradients(self):
        x = rand(2, 2, 5, 5, scale=0.5)
        w = rand(3, 2, 3, 3, seed=1, scale=0.5)
        b = rand(3, seed=2)
        check_gradients(lambda xx, ww, bb: F.conv2d(xx, ww, bb, 1, 1),
                        [x, w, b])

    def test_conv2d_stride2_gradients(self):
        x = rand(1, 2, 6, 6, scale=0.5)
        w = rand(2, 2, 3, 3, seed=1, scale=0.5)
        check_gradients(lambda xx, ww: F.conv2d(xx, ww, None, 2, 1), [x, w])

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(rand(1, 3, 4, 4), rand(2, 4, 3, 3, seed=1), None)


class TestPooling:
    def test_max_pool_forward(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient(self):
        x = rand(2, 3, 4, 4)
        check_gradients(lambda t: F.max_pool2d(t, 2), [x])

    def test_avg_pool_forward_and_gradient(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])
        check_gradients(lambda t: F.avg_pool2d(t, 2), [rand(2, 2, 4, 4)])

    def test_global_avg_pool(self):
        x = rand(2, 3, 4, 4)
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)), rtol=1e-5)

    def test_pool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            F.max_pool2d(rand(1, 1, 5, 5), 2)


class TestGelu:
    def test_gelu_values(self):
        x = Tensor(np.array([0.0, 1.0, -1.0], dtype=np.float32))
        out = F.gelu(x).data
        assert out[0] == 0.0
        assert out[1] == pytest.approx(0.8412, abs=1e-3)
        assert out[2] == pytest.approx(-0.1588, abs=1e-3)

    def test_gelu_gradient(self):
        check_gradients(lambda t: F.gelu(t), [rand(4, 4)])


class TestFakeQuantize:
    def test_forward_quantizes(self):
        from repro.formats import make_quantizer
        q = make_quantizer("uniform", 4)
        x = rand(5, 5)
        out = F.fake_quantize(x, q.quantize)
        np.testing.assert_allclose(out.data, q.quantize(x.data).astype(np.float32))

    def test_backward_is_straight_through(self):
        from repro.formats import make_quantizer
        q = make_quantizer("adaptivfloat", 4)
        x = rand(5, 5)
        out = F.fake_quantize(x, q.quantize)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(x.grad, np.ones((5, 5)))

    def test_ste_mask(self):
        x = rand(4)
        mask = np.array([1.0, 0.0, 1.0, 0.0], dtype=np.float32)
        out = F.fake_quantize(x, lambda a: a * 2, ste_mask=mask)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(x.grad, mask)
