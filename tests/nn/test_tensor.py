"""Gradient and semantics tests for the autodiff tensor engine."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad

from .gradcheck import check_gradients


def rand(*shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape).astype(np.float32) * scale,
                  requires_grad=True)


class TestArithmeticGradients:
    def test_add(self):
        check_gradients(lambda a, b: a + b, [rand(3, 4), rand(3, 4, seed=1)])

    def test_add_broadcast(self):
        check_gradients(lambda a, b: a + b, [rand(3, 4), rand(4, seed=1)])

    def test_mul(self):
        check_gradients(lambda a, b: a * b, [rand(3, 4), rand(3, 4, seed=1)])

    def test_mul_broadcast_scalar_tensor(self):
        check_gradients(lambda a, b: a * b, [rand(3, 4), rand(1, seed=1)])

    def test_sub_div(self):
        b = rand(3, 4, seed=1)
        b.data = b.data + np.float32(3.0)  # keep denominators away from 0
        check_gradients(lambda a, bb: a / bb - bb, [rand(3, 4), b])

    def test_pow(self):
        a = rand(3, 4)
        a.data = np.abs(a.data) + np.float32(0.5)
        check_gradients(lambda t: t ** 1.5, [a])

    def test_matmul_2d(self):
        check_gradients(lambda a, b: a @ b, [rand(3, 4), rand(4, 5, seed=1)])

    def test_matmul_batched(self):
        check_gradients(lambda a, b: a @ b,
                        [rand(2, 3, 4), rand(2, 4, 5, seed=1)])

    def test_matmul_broadcast_batch(self):
        check_gradients(lambda a, b: a @ b, [rand(2, 3, 4), rand(4, 5, seed=1)])

    def test_matmul_1d_mixed_rejected(self):
        with pytest.raises(NotImplementedError):
            rand(3, 4) @ rand(4, seed=1)


class TestUnaryGradients:
    def test_exp_log(self):
        a = rand(4, 3)
        a.data = np.abs(a.data) + np.float32(0.5)
        check_gradients(lambda t: (t.log() + t.exp()), [a])

    def test_tanh_sigmoid_relu(self):
        check_gradients(lambda t: t.tanh() + t.sigmoid(), [rand(5, 5)])
        a = rand(5, 5, seed=3)
        a.data = a.data + np.float32(0.1)  # avoid the ReLU kink at 0
        check_gradients(lambda t: t.relu(), [a])

    def test_sqrt_abs(self):
        a = rand(4, 4)
        a.data = np.abs(a.data) + np.float32(0.5)
        check_gradients(lambda t: t.sqrt() + t.abs(), [a])


class TestShapeGradients:
    def test_reshape_transpose(self):
        check_gradients(lambda t: (t.reshape(4, 6) @ rand(6, 2, seed=9)),
                        [rand(2, 3, 4)])
        check_gradients(lambda t: t.transpose(1, 0, 2) * 2.0, [rand(2, 3, 4)])

    def test_swapaxes(self):
        check_gradients(lambda t: t.swapaxes(0, 1) * 3.0, [rand(3, 4)])

    def test_getitem_slice(self):
        check_gradients(lambda t: t[:, 1:3] * 2.0, [rand(3, 4)])

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        check_gradients(lambda t: t[idx] * 1.5, [rand(4, 3)])


class TestReductionGradients:
    def test_sum_axes(self):
        check_gradients(lambda t: t.sum(), [rand(3, 4)])
        check_gradients(lambda t: t.sum(axis=1), [rand(3, 4)])
        check_gradients(lambda t: t.sum(axis=(0, 2), keepdims=True),
                        [rand(2, 3, 4)])

    def test_mean_axes(self):
        check_gradients(lambda t: t.mean(), [rand(3, 4)])
        check_gradients(lambda t: t.mean(axis=-1), [rand(3, 4)])

    def test_max(self):
        a = rand(3, 4)
        check_gradients(lambda t: t.max(axis=1), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]], dtype=np.float32),
                   requires_grad=True)
        out = a.max(axis=1)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestAutogradMechanics:
    def test_grad_accumulates_on_reuse(self):
        a = rand(3)
        out = a * a  # `a` used twice
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(a.grad, 2 * a.data, rtol=1e-6)

    def test_diamond_graph(self):
        a = rand(3)
        b = a * 2.0
        c = a * 3.0
        out = (b + c).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full(3, 5.0), rtol=1e-6)

    def test_deep_chain_no_recursion_error(self):
        a = rand(2)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(2))

    def test_no_grad_blocks_graph(self):
        a = rand(3)
        with no_grad():
            out = a * 2.0
        assert out._parents == ()
        out2 = a * 2.0
        assert out2._parents != ()

    def test_detach(self):
        a = rand(3)
        b = a.detach() * 2.0
        b.sum().backward()
        assert a.grad is None

    def test_clip_values_gradient_mask(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0], dtype=np.float32),
                   requires_grad=True)
        out = a.clip_values(-1.0, 1.0)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])

    def test_dtype_is_float32(self):
        assert rand(2, 2).data.dtype == np.float32
        assert (rand(2) + rand(2, seed=1)).data.dtype == np.float32
