"""Tests for the Trainer and LR schedules."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import functional as F
from repro.nn.models import MLP
from repro.nn.schedules import (LRScheduler, constant, cosine_decay,
                                inverse_sqrt, linear_warmup, warmup_cosine)
from repro.nn.trainer import Trainer


def toy_batches(n, batch=32, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        x = rng.normal(size=(batch, 8)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        yield x, y


def loss_fn(model, batch):
    x, y = batch
    return F.cross_entropy(model(x), y)


class TestSchedules:
    def test_constant(self):
        assert constant()(0) == constant()(1000) == 1.0

    def test_linear_warmup(self):
        s = linear_warmup(10)
        assert s(0) == pytest.approx(0.1)
        assert s(9) == pytest.approx(1.0)
        assert s(500) == 1.0

    def test_cosine_decay_endpoints(self):
        s = cosine_decay(100, floor=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(50) == pytest.approx(0.55, abs=1e-6)

    def test_warmup_cosine_peak_at_warmup_end(self):
        s = warmup_cosine(10, 110)
        values = [s(i) for i in range(110)]
        assert max(values) == pytest.approx(1.0)
        assert int(np.argmax(values)) in (9, 10)

    def test_inverse_sqrt_shape(self):
        s = inverse_sqrt(16)
        assert s(15) == pytest.approx(1.0)
        assert s(63) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_warmup(0)
        with pytest.raises(ValueError):
            cosine_decay(0)

    def test_scheduler_drives_optimizer(self):
        model = MLP([8, 4, 2])
        opt = nn.Adam(model.parameters(), lr=1.0)
        sched = LRScheduler(opt, linear_warmup(4))
        assert opt.lr == pytest.approx(0.25)
        sched.step()
        assert opt.lr == pytest.approx(0.5)


class TestTrainer:
    def test_loss_decreases(self):
        model = MLP([8, 16, 2], rng=np.random.default_rng(0))
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=1e-2),
                          loss_fn)
        history = trainer.fit(toy_batches(80))
        assert history.smoothed_loss() < history.losses[0] * 0.6
        assert len(history.losses) == 80

    def test_evaluation_and_best_tracking(self):
        rng = np.random.default_rng(1)
        x_eval = rng.normal(size=(64, 8)).astype(np.float32)
        y_eval = (x_eval[:, 0] > 0).astype(np.int64)

        def eval_fn(model):
            with nn.no_grad():
                pred = model(x_eval).data.argmax(axis=-1)
            return float((pred == y_eval).mean())

        model = MLP([8, 16, 2], rng=np.random.default_rng(0))
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=1e-2),
                          loss_fn, eval_fn=eval_fn, eval_every=20)
        history = trainer.fit(toy_batches(100))
        assert len(history.eval_scores) == 5
        assert trainer.best_score >= max(history.eval_scores) - 1e-9
        trainer.restore_best()  # must not raise

    def test_early_stopping(self):
        model = MLP([8, 4, 2], rng=np.random.default_rng(0))
        trainer = Trainer(model, nn.SGD(model.parameters(), lr=0.0),
                          loss_fn, eval_fn=lambda m: 0.5, eval_every=5,
                          patience=2)
        history = trainer.fit(toy_batches(200))
        # constant score: first eval sets best, next 2 are stale -> stop
        assert len(history.losses) == 15

    def test_schedule_integration(self):
        model = MLP([8, 4, 2], rng=np.random.default_rng(0))
        opt = nn.Adam(model.parameters(), lr=1e-2)
        trainer = Trainer(model, opt, loss_fn,
                          schedule=warmup_cosine(5, 40))
        history = trainer.fit(toy_batches(40))
        assert max(history.learning_rates) <= 1e-2 + 1e-12
        assert history.learning_rates[-1] < history.learning_rates[6]

    def test_restore_before_eval_raises(self):
        model = MLP([8, 4, 2])
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=1e-3),
                          loss_fn)
        with pytest.raises(RuntimeError):
            trainer.restore_best()
