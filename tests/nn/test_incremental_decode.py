"""Equivalence tests for the incremental decoding engine.

The KV-cached paths must emit token ids *bit-identical* to the naive
re-decode-the-prefix implementations.  Floating-point addition is not
associative, so plain BLAS matmuls can differ in the last ulp between a
(1, D) and a (k, D) batch; the tests therefore run both paths under
``deterministic_matmul`` (a shape-stable einsum kernel), which makes
equality exact rather than overwhelmingly likely.  One fixed-seed test
also runs the production BLAS kernel as a smoke check.  See
docs/inference.md.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.decoding import AttentionKVCache, DecoderKVCache, pad_hypotheses
from repro.nn.models.seq2seq import Seq2Seq, Seq2SeqConfig
from repro.nn.models.transformer import Transformer, TransformerConfig
from repro.nn.optim import SGD
from repro.nn.quantize import (QuantSpec, attach_act_quantizers,
                               attach_weight_quantizers, calibrate,
                               weight_quant_cache_stats)
from repro.nn.tensor import Tensor, deterministic_matmul, no_grad


def _transformer(seed, num_heads=4, num_layers=2, max_len=16, d_model=32):
    rng = np.random.default_rng(seed)
    cfg = TransformerConfig(src_vocab=24, tgt_vocab=24, d_model=d_model,
                            num_heads=num_heads, num_encoder_layers=1,
                            num_decoder_layers=num_layers, d_ff=48,
                            max_len=max_len)
    model = Transformer(cfg, rng=rng)
    model.eval()
    src_len = min(7, max_len)  # positions are table-bounded by max_len
    src = rng.integers(3, cfg.src_vocab, size=(3, src_len))
    src[0, src_len - 2:] = cfg.pad_id
    return model, src


def _seq2seq(seed, max_len=12):
    rng = np.random.default_rng(seed)
    cfg = Seq2SeqConfig(input_dim=8, vocab=20, hidden=24, encoder_layers=1,
                        attn_size=24, max_len=max_len)
    model = Seq2Seq(cfg, rng=rng)
    model.eval()
    frames = rng.standard_normal((3, 6, cfg.input_dim)).astype(np.float32)
    return model, frames


# ------------------------------------------------------------ transformer
@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000),
       st.sampled_from([1, 2, 4]),
       st.sampled_from([1, 2, 3]),
       st.sampled_from([6, 10, 16]))
def test_transformer_greedy_bit_identical(seed, heads, layers, max_len):
    model, src = _transformer(seed, num_heads=heads, num_layers=layers,
                              max_len=max_len)
    with deterministic_matmul():
        naive = model.greedy_decode(src, use_cache=False)
        cached = model.greedy_decode(src, use_cache=True)
    np.testing.assert_array_equal(naive, cached)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000),
       st.sampled_from([1, 2, 4]),
       st.sampled_from([1, 2]),
       st.sampled_from([1, 2, 4, 5]))
def test_transformer_beam_bit_identical(seed, heads, layers, beam_size):
    model, src = _transformer(seed, num_heads=heads, num_layers=layers)
    with deterministic_matmul():
        naive = model.beam_decode(src, beam_size=beam_size, use_cache=False)
        cached = model.beam_decode(src, beam_size=beam_size, use_cache=True)
    np.testing.assert_array_equal(naive, cached)


@pytest.mark.parametrize("wfmt,afmt", [("adaptivfloat", "adaptivfloat"),
                                       ("uniform", "uniform"),
                                       ("adaptivfloat", None)])
def test_transformer_quantized_bit_identical(wfmt, afmt):
    model, src = _transformer(7, max_len=12)
    attach_weight_quantizers(model, QuantSpec(wfmt, 8))
    if afmt is not None:
        attach_act_quantizers(model, QuantSpec(afmt, 8))
        with calibrate(model):
            model.greedy_decode(src, max_len=6)
    with deterministic_matmul():
        naive_g = model.greedy_decode(src, use_cache=False)
        cached_g = model.greedy_decode(src, use_cache=True)
        naive_b = model.beam_decode(src, beam_size=3, use_cache=False)
        cached_b = model.beam_decode(src, beam_size=3, use_cache=True)
    np.testing.assert_array_equal(naive_g, cached_g)
    np.testing.assert_array_equal(naive_b, cached_b)


def test_transformer_blas_smoke():
    """Production (BLAS) kernel: same tokens on a fixed seed."""
    model, src = _transformer(42)
    np.testing.assert_array_equal(
        model.greedy_decode(src, use_cache=False),
        model.greedy_decode(src, use_cache=True))
    np.testing.assert_array_equal(
        model.beam_decode(src, beam_size=4, use_cache=False),
        model.beam_decode(src, beam_size=4, use_cache=True))


def test_decode_step_matches_full_decode():
    """decode_step output equals the last position of a full decode."""
    model, src = _transformer(3)
    cfg = model.config
    rng = np.random.default_rng(5)
    tokens = np.concatenate(
        [np.full((src.shape[0], 1), cfg.bos_id, dtype=np.int64),
         rng.integers(3, cfg.tgt_vocab, size=(src.shape[0], 5))], axis=1)
    with deterministic_matmul(), no_grad():
        memory = model.encode(src)
        cache = DecoderKVCache(len(model.decoder))
        for t in range(tokens.shape[1]):
            step_out = model.decode_step(memory, src, tokens[:, :t + 1],
                                         cache)
        full_out = model.decode(memory, src, tokens)
    np.testing.assert_array_equal(step_out.data, full_out.data[:, -1:, :])


# ---------------------------------------------------------------- seq2seq
@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([1, 2, 3, 5]),
       st.sampled_from([6, 12]))
def test_seq2seq_beam_bit_identical(seed, beam_size, max_len):
    model, frames = _seq2seq(seed, max_len=max_len)
    with deterministic_matmul():
        naive = model.beam_decode(frames, beam_size=beam_size,
                                  use_cache=False)
        cached = model.beam_decode(frames, beam_size=beam_size,
                                   use_cache=True)
    np.testing.assert_array_equal(naive, cached)


def test_seq2seq_greedy_bit_identical():
    model, frames = _seq2seq(11)
    with deterministic_matmul():
        np.testing.assert_array_equal(
            model.greedy_decode(frames, use_cache=False),
            model.greedy_decode(frames, use_cache=True))


def test_seq2seq_quantized_bit_identical():
    model, frames = _seq2seq(13)
    attach_weight_quantizers(model, QuantSpec("adaptivfloat", 8))
    with deterministic_matmul():
        np.testing.assert_array_equal(
            model.beam_decode(frames, beam_size=4, use_cache=False),
            model.beam_decode(frames, beam_size=4, use_cache=True))


# ------------------------------------------------------------- primitives
def test_cache_reorder_gathers_rows():
    cache = DecoderKVCache(2)
    rng = np.random.default_rng(0)
    k = rng.standard_normal((3, 2, 4, 5)).astype(np.float32)
    v = rng.standard_normal((3, 2, 4, 5)).astype(np.float32)
    for layer in cache.layers:
        layer.self_attn.append(k.copy(), v.copy())
        layer.cross_attn.set(k.copy(), v.copy())
    cache.reorder([2, 2, 0])
    assert cache.length == 4
    for layer in cache.layers:
        np.testing.assert_array_equal(layer.self_attn.k, k[[2, 2, 0]])
        np.testing.assert_array_equal(layer.cross_attn.v, v[[2, 2, 0]])


def test_cache_validation():
    with pytest.raises(ValueError):
        AttentionKVCache("bogus")
    with pytest.raises(ValueError):
        AttentionKVCache("cross").append(np.zeros((1, 1, 1, 1)),
                                         np.zeros((1, 1, 1, 1)))
    with pytest.raises(ValueError):
        DecoderKVCache(0)
    model, src = _transformer(0)
    with no_grad():
        memory = model.encode(src)
        stale = DecoderKVCache(len(model.decoder))
        tokens = np.full((src.shape[0], 3), 1, dtype=np.int64)
        with pytest.raises(ValueError):
            model.decode_step(memory, src, tokens, stale)


def test_cached_attention_rejects_grad_mode():
    model, src = _transformer(0)
    cache = DecoderKVCache(len(model.decoder))
    with no_grad():
        memory = model.encode(src)
    tokens = np.full((src.shape[0], 1), model.config.bos_id, dtype=np.int64)
    with pytest.raises(RuntimeError):
        model.decode_step(memory, src, tokens, cache)


def test_pad_hypotheses_floor_width():
    out = pad_hypotheses([[], []], pad_id=0)
    assert out.shape == (2, 1)
    assert (out == 0).all()
    out = pad_hypotheses([[3, 4], [5]], pad_id=0)
    np.testing.assert_array_equal(out, [[3, 4], [5, 0]])


def test_beam_decode_all_empty_hypotheses_width():
    """A batch whose best hypotheses are all empty still yields one
    (all-padding) column — the width bug the shared helper fixes."""
    model, src = _transformer(0)

    def empty(*args, **kwargs):
        return []

    model._beam_one = empty
    model._beam_one_cached = empty
    for use_cache in (False, True):
        out = model.beam_decode(src, beam_size=2, use_cache=use_cache)
        assert out.shape == (src.shape[0], 1)
        assert (out == model.config.pad_id).all()


# ----------------------------------------------------- weight-quant cache
def test_ptq_eval_quantizes_each_tensor_exactly_once():
    model, src = _transformer(5, max_len=10)
    attach_weight_quantizers(model, QuantSpec("adaptivfloat", 8))
    model.greedy_decode(src)
    model.greedy_decode(src)
    model.beam_decode(src, beam_size=2)
    stats = weight_quant_cache_stats(model)
    n_weights = sum(1 for m in model.modules()
                    if m.weight_fake_quant is not None)
    assert stats["misses"] == n_weights
    assert stats["hits"] > 0


def test_weight_quant_cache_invalidates_on_optimizer_step():
    """QAR contract: quantized weights change when the underlying weight
    changes (optimizer step bumps the version) and don't when it doesn't."""
    rng = np.random.default_rng(0)
    from repro.nn.layers import Linear
    layer = Linear(8, 8, rng=rng)
    attach_weight_quantizers(layer, QuantSpec("adaptivfloat", 8))
    wq = layer.weight_fake_quant
    x = Tensor(rng.standard_normal((4, 8)).astype(np.float32))

    q1 = wq(layer.weight).data
    q2 = wq(layer.weight).data
    np.testing.assert_array_equal(q1, q2)
    assert wq.misses == 1 and wq.hits == 1

    out = layer(x)
    out.sum().backward()
    opt = SGD(layer.parameters(), lr=0.5)
    version_before = layer.weight.version
    opt.step()
    assert layer.weight.version == version_before + 1

    q3 = wq(layer.weight).data
    assert wq.misses == 2  # cache invalidated, re-quantized
    assert not np.array_equal(q1, q3)
    q4 = wq(layer.weight).data
    np.testing.assert_array_equal(q3, q4)  # stable again until next step


def test_weight_quant_cache_opt_out(monkeypatch):
    rng = np.random.default_rng(0)
    from repro.nn.layers import Linear
    layer = Linear(4, 4, rng=rng)
    attach_weight_quantizers(layer, QuantSpec("uniform", 8))
    monkeypatch.setenv("REPRO_NO_WQCACHE", "1")
    wq = layer.weight_fake_quant
    wq(layer.weight)
    wq(layer.weight)
    assert wq.hits == 0 and wq.misses == 2
