"""Unit tests for Module parameter access and the in-place swap."""

import numpy as np
import pytest

from repro import nn
from repro.nn.quantize import QuantSpec, attach_weight_quantizers


def _model():
    return nn.Sequential(nn.Linear(4, 8, rng=np.random.default_rng(0)),
                         nn.Linear(8, 2, rng=np.random.default_rng(1)))


class TestGetParameter:
    def test_resolves_nested_names(self):
        model = _model()
        for name, param in model.named_parameters():
            assert model.get_parameter(name) is param

    def test_missing_submodule(self):
        with pytest.raises(KeyError, match="no submodule"):
            _model().get_parameter("9.weight")

    def test_missing_parameter(self):
        with pytest.raises(KeyError, match="no parameter"):
            _model().get_parameter("0.nonexistent")


class TestSwapParameter:
    def test_swap_and_restore_round_trip(self):
        model = _model()
        name = "0.weight"
        param = model.get_parameter(name)
        original = param.data
        replacement = np.full_like(original, 7.0)

        returned = model.swap_parameter(name, replacement)
        assert returned is original
        assert param.data is replacement

        back = model.swap_parameter(name, returned)
        assert back is replacement
        assert param.data is original

    def test_swap_bumps_version_both_ways(self):
        model = _model()
        param = model.get_parameter("0.weight")
        v0 = param.version
        old = model.swap_parameter("0.weight", np.zeros_like(param.data))
        assert param.version == v0 + 1
        model.swap_parameter("0.weight", old)
        assert param.version == v0 + 2

    def test_swap_casts_to_float32(self):
        model = _model()
        param = model.get_parameter("0.weight")
        model.swap_parameter("0.weight",
                             np.zeros(param.data.shape, dtype=np.float64))
        assert param.data.dtype == np.float32

    def test_shape_mismatch_rejected(self):
        model = _model()
        with pytest.raises(ValueError, match="shape mismatch"):
            model.swap_parameter("0.weight", np.zeros((1, 1),
                                                      dtype=np.float32))

    def test_swap_matches_load_state_dict_result(self):
        model_a, model_b = _model(), _model()
        state = model_a.state_dict()
        x = np.random.default_rng(3).normal(size=(5, 4)).astype(np.float32)

        faulty = state["0.weight"] * 2.0
        full = dict(state)
        full["0.weight"] = faulty
        model_a.load_state_dict(full)
        model_b.load_state_dict(state)
        model_b.swap_parameter("0.weight", faulty.astype(np.float32))

        out_a = model_a(nn.Tensor(x)).data
        out_b = model_b(nn.Tensor(x)).data
        np.testing.assert_array_equal(out_a, out_b)

    def test_swap_invalidates_weight_quant_cache(self):
        model = _model()
        attach_weight_quantizers(model, QuantSpec("adaptivfloat", 8))
        x = nn.Tensor(np.ones((2, 4), dtype=np.float32))
        model(x)
        fq = model._modules["0"].weight_fake_quant
        model(x)
        hits_before = fq.hits
        assert hits_before > 0  # second forward served from the memo

        old = model.swap_parameter("0.weight",
                                   model.get_parameter("0.weight").data * 4.0)
        misses_before = fq.misses
        model(x)
        assert fq.misses > misses_before  # version bump forced a requant

        model.swap_parameter("0.weight", old)
        misses_before = fq.misses
        model(x)
        assert fq.misses > misses_before  # restore invalidates again
