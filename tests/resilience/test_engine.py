"""Equivalence tests for the trial-vectorized fault-injection engine.

Three contracts, all bit-level:

* :meth:`repro.resilience.engine.TrialEngine.faulty_tensor`'s sparse
  patch-decode must reproduce the naive ``inject_tensor`` -> full
  ``decode_tensor`` -> float32 path exactly, for every registry format,
  every injectable field, and both targeting modes (``n_flips``/BER) —
  property-tested over random tensors and fault draws;
* the word -> value decode LUT must agree with direct decode over the
  *entire* code space (and fall back cleanly above 16-bit words);
* a sharded campaign cell must merge to the serial cell's payload, and
  the engine loop must reproduce the naive loop's fault/detection/drift
  counters.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FORMAT_NAMES, make_quantizer
from repro.formats.base import AdaptiveQuantizer
from repro.formats.codec import (MAX_DECODE_LUT_BITS, decode_lut,
                                 decode_tensor, decode_words)
from repro.resilience import campaign
from repro.resilience.engine import TrialEngine
from repro.resilience.inject import inject_tensor, register_spec


def _quantize(format_name, bits, x):
    quantizer = make_quantizer(format_name, bits)
    if isinstance(quantizer, AdaptiveQuantizer):
        params = quantizer.fit(x)
        values = quantizer.quantize_with_params(x, params)
    else:
        params = {}
        values = quantizer.quantize(x)
    return quantizer, values, params


def _fields_for(format_name, bits):
    fields = list(campaign.cell_fields(format_name, bits))
    assert "any" in fields
    return fields


# --------------------------------------------------------------- decode LUT
class TestDecodeLut:
    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_lut_matches_direct_decode_over_code_space(self, fmt):
        rng = np.random.default_rng(3)
        quantizer, values, params = _quantize(fmt, 8, rng.normal(size=64))
        table = decode_lut(quantizer, params)
        assert table is not None and table.size == 256
        every_word = np.arange(256, dtype=np.uint32)
        with np.errstate(all="ignore"):
            direct = decode_tensor(quantizer, every_word, params)
        np.testing.assert_array_equal(
            np.asarray(table), np.asarray(direct, dtype=np.float64))

    def test_wide_words_fall_back_to_direct_decode(self):
        for fmt, bits, params in (("uniform", MAX_DECODE_LUT_BITS + 2,
                                   {"scale": 0.25, "zero_point": 3.0}),
                                  ("float", MAX_DECODE_LUT_BITS + 3, None)):
            quantizer = make_quantizer(fmt, bits)
            assert decode_lut(quantizer, params) is None
            words = np.arange(0, 1 << bits, 997, dtype=np.uint32)
            np.testing.assert_array_equal(
                decode_words(quantizer, words, params),
                decode_tensor(quantizer, words, params))


# ------------------------------------------------ patch-decode equivalence
word_cases = st.one_of(
    st.integers(min_value=1, max_value=6).map(lambda n: ("n_flips", n)),
    st.floats(min_value=0.001, max_value=0.08).map(lambda b: ("ber", b)))


@settings(max_examples=60, deadline=None)
@given(fmt=st.sampled_from(FORMAT_NAMES),
       seed=st.integers(min_value=0, max_value=2**31 - 1),
       scale=st.floats(min_value=0.01, max_value=50.0),
       case=word_cases,
       data=st.data())
def test_patch_decode_matches_naive_injection(fmt, seed, scale, case, data):
    """Engine faults are bit-identical to inject_tensor's, always."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=48) * scale
    quantizer, values, params = _quantize(fmt, 8, x)
    field = data.draw(st.sampled_from(_fields_for(fmt, 8)), label="field")
    kind, amount = case
    n_flips = amount if kind == "n_flips" else 1
    ber = amount if kind == "ber" else None
    if field == "exp_bias":
        ber = None  # register faults ignore word targeting modes

    engine = TrialEngine(quantizer, {"w": (values, params)})
    with np.errstate(all="ignore"):
        faulty_naive = np.asarray(
            inject_tensor(quantizer, values, params,
                          np.random.default_rng([seed, 1]), field=field,
                          n_flips=n_flips, ber=ber).values, dtype=np.float32)
    faulty_engine, _ = engine.faulty_tensor(
        "w", np.random.default_rng([seed, 1]), field, n_flips=n_flips,
        ber=ber)
    # uint32 views: NaN payloads and signed zeros must match too
    np.testing.assert_array_equal(
        faulty_engine.view(np.uint32),
        faulty_naive.reshape(faulty_engine.shape).view(np.uint32))


def test_engine_consumes_rng_stream_identically():
    """After one fault, naive and engine generators are in the same state."""
    rng = np.random.default_rng(11)
    x = rng.normal(size=32)
    for fmt in FORMAT_NAMES:
        quantizer, values, params = _quantize(fmt, 8, x)
        engine = TrialEngine(quantizer, {"w": (values, params)})
        for field in _fields_for(fmt, 8):
            g1 = np.random.default_rng([5, 7])
            g2 = np.random.default_rng([5, 7])
            inject_tensor(quantizer, values, params, g1, field=field,
                          n_flips=2 if field != "exp_bias" else 1)
            engine.faulty_tensor("w", g2, field,
                                 n_flips=2 if field != "exp_bias" else 1)
            assert g1.integers(2**30) == g2.integers(2**30), (fmt, field)


def test_register_fault_requires_register():
    quantizer, values, params = _quantize("float", 8,
                                          np.linspace(-2, 2, 16))
    assert register_spec("float") is None
    engine = TrialEngine(quantizer, {"w": (values, params)})
    with pytest.raises(ValueError, match="no adaptive register"):
        engine.faulty_tensor("w", np.random.default_rng(0), "exp_bias")


# -------------------------------------------------- campaign-level contracts
TINY_CELL = {"table": "resilience", "profile": "tiny",
             "model": "transformer", "format": "float", "bits": 8,
             "field": "exponent", "ber": None, "n_flips": 1, "trials": 8,
             "seed": 0}


def _strip_timing(payload):
    return {k: v for k, v in payload.items() if k != "timing"}


class TestCampaignEquivalence:
    def test_sharded_chunks_merge_to_serial_payload(self):
        serial = campaign.run_cell(dict(TINY_CELL))
        chunks = [campaign.run_chunk(dict(TINY_CELL, engine=True,
                                          trial_start=start,
                                          trial_count=count))
                  for start, count in ((0, 3), (3, 2), (5, 3))]
        merged = campaign._merge_chunks(TINY_CELL, chunks)
        assert (json.dumps(_strip_timing(merged), sort_keys=True)
                == json.dumps(_strip_timing(serial), sort_keys=True))

    @pytest.mark.parametrize("fmt,field", [("float", "exponent"),
                                           ("adaptivfloat", "exp_bias"),
                                           ("uniform", "any")])
    def test_engine_counters_match_naive(self, fmt, field):
        cell = dict(TINY_CELL, format=fmt, field=field)
        eng = campaign.run_cell(dict(cell, engine=True))
        naive = campaign.run_cell(dict(cell, engine=False))
        for key in ("trials", "flips_total", "sdc_rate", "detection_rate",
                    "corrupt_rate", "nonfinite_logit_rate",
                    "masked_probe_rate", "mean_logit_rms_drift",
                    "max_logit_rms_drift", "detected_kinds", "clean_score",
                    "fp32_score"):
            assert eng[key] == naive[key], (fmt, field, key)
        assert 0.0 <= eng["masked_probe_rate"] <= 1.0

    def test_trial_count_defaults_cover_remainder(self):
        whole = campaign.run_chunk(dict(TINY_CELL, engine=True))
        tail = campaign.run_chunk(dict(TINY_CELL, engine=True,
                                       trial_start=5))
        assert whole["trial_count"] == TINY_CELL["trials"]
        assert tail["trial_start"] == 5
        assert tail["trial_count"] == TINY_CELL["trials"] - 5
