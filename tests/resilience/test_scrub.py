"""Weight-integrity scrubbing: golden streams, CRC verify, repair.

Unit coverage for :mod:`repro.resilience.scrub` — the serving-layer
closed loop lives in ``tests/serve/test_resilience.py``.
"""

import zlib

import numpy as np
import pytest

from repro import nn
from repro.nn.quantize import QuantSpec
from repro.resilience import WeightScrubber
from repro.resilience.inject import flip_float_register
from repro.resilience.scrub import float_stream_crc


def small_model():
    return nn.Sequential(nn.Linear(16, 16), nn.ReLU(), nn.Linear(16, 4))


def ptq_model(spec):
    """A small model whose weights sit exactly on ``spec``'s grid."""
    model = small_model()
    quantizer = spec.build()
    for name, param in model.named_parameters():
        model.swap_parameter(
            name, np.asarray(quantizer.quantize(param.data),
                             dtype=np.float32))
    return model


def corrupt(model, name, element=0, bit_index=1):
    """Flip one stored-register bit of a parameter (default: exponent
    MSB of float32 — the catastrophic SDC bit)."""
    param = model.get_parameter(name)
    data = param.data.copy()
    data.flat[element] = flip_float_register(data.flat[element], bit_index)
    model.swap_parameter(name, data)
    return data


class TestSnapshot:
    def test_raw_goldens_cover_every_parameter(self):
        model = small_model()
        scrubber = WeightScrubber(model)
        names = {name for name, _ in model.named_parameters()}
        assert set(scrubber.snapshot()) == names
        assert scrubber.golden_formats() == {"float32": len(names)}
        # raw golden cost is exactly 4 bytes/element
        total = sum(p.data.size for _, p in model.named_parameters())
        assert scrubber.golden_nbytes() == 4 * total

    def test_ptq_weights_get_true_nbit_goldens(self):
        spec = QuantSpec("adaptivfloat", 8)
        scrubber = WeightScrubber(ptq_model(spec), quant=spec)
        assert scrubber.golden_formats() == {"adaptivfloat8": 4}
        total = sum(g.count for g in scrubber._golden.values())
        # 8-bit streams: 1 byte/element, 4x below raw float32
        assert scrubber.golden_nbytes() == total

    def test_off_grid_weights_fall_back_to_raw(self):
        # quant given but the weight matrices NOT on the grid: their
        # n-bit encoding would not round-trip bit-exactly, so raw
        # streams must win (the all-zero biases *are* on every grid, so
        # they legitimately keep the cheap n-bit golden)
        spec = QuantSpec("adaptivfloat", 8)
        scrubber = WeightScrubber(small_model(), quant=spec)
        assert scrubber._golden["0.weight"].fmt == "float32"
        assert scrubber._golden["2.weight"].fmt == "float32"
        assert scrubber._golden["0.bias"].fmt == "adaptivfloat8"

    def test_deferred_snapshot(self):
        scrubber = WeightScrubber(small_model(), snapshot=False)
        with pytest.raises(RuntimeError, match="no golden snapshot"):
            scrubber.verify()
        scrubber.snapshot()
        assert scrubber.verify() == []


class TestVerifyRestore:
    @pytest.mark.parametrize("spec", [None, QuantSpec("adaptivfloat", 8)],
                             ids=["raw", "nbit"])
    def test_detect_and_restore_bit_identically(self, spec):
        model = ptq_model(spec) if spec else small_model()
        scrubber = WeightScrubber(model, quant=spec)
        golden_words = model.get_parameter("0.weight").data.copy()
        version = model.get_parameter("0.weight").version

        corrupt(model, "0.weight", element=5, bit_index=1)
        assert scrubber.verify() == ["0.weight"]

        report = scrubber.scrub(reason="test")
        assert report.corrupted == ["0.weight"]
        assert report.restored == ["0.weight"]
        assert report.uncorrectable == []
        assert not report.clean
        live = model.get_parameter("0.weight")
        # bit-identical repair, version bumped (weight-quant memo refresh)
        assert np.array_equal(live.data.view(np.uint32),
                              golden_words.view(np.uint32))
        assert live.version > version
        assert scrubber.generation == 1
        assert scrubber.verify() == []

    def test_scoped_verify_only_checks_named_tensors(self):
        model = small_model()
        scrubber = WeightScrubber(model)
        corrupt(model, "2.weight")
        assert scrubber.verify(["0.weight", "0.bias"]) == []
        assert scrubber.verify(["2.weight"]) == ["2.weight"]

    def test_sign_flip_is_detected(self):
        # CRC catches *finite* silent corruptions a NaN/Inf probe cannot
        model = small_model()
        scrubber = WeightScrubber(model)
        corrupt(model, "0.weight", element=0, bit_index=0)  # sign bit
        assert np.all(np.isfinite(model.get_parameter("0.weight").data))
        assert scrubber.verify() == ["0.weight"]

    def test_clean_scrub_report(self):
        scrubber = WeightScrubber(small_model())
        report = scrubber.scrub(reason="periodic")
        assert report.clean
        assert report.checked == 4
        assert report.reason == "periodic"
        assert report.restored == [] and report.uncorrectable == []


class TestUncorrectable:
    def test_corrupted_golden_stream_is_uncorrectable(self):
        model = small_model()
        scrubber = WeightScrubber(model)
        golden = scrubber._golden["0.weight"]
        # corrupt the golden copy itself (double fault): stream bytes no
        # longer match stream_crc, so restore must refuse
        bad = bytearray(golden.stream)
        bad[0] ^= 0x80
        object.__setattr__(golden, "stream", bytes(bad))

        corrupt(model, "0.weight")
        report = scrubber.scrub()
        assert report.uncorrectable == ["0.weight"]
        assert report.restored == []
        assert scrubber.uncorrectable_faults == 1
        assert scrubber.generation == 0  # nothing was swapped in

    def test_stale_golden_value_crc_is_uncorrectable(self):
        # stream intact but decode disagrees with the recorded value CRC
        model = small_model()
        scrubber = WeightScrubber(model)
        golden = scrubber._golden["0.bias"]
        object.__setattr__(golden, "value_crc", golden.value_crc ^ 1)
        corrupt(model, "0.bias")
        report = scrubber.scrub()
        assert report.uncorrectable == ["0.bias"]


class TestCounters:
    def test_lifetime_counters_accumulate(self):
        model = small_model()
        scrubber = WeightScrubber(model)
        scrubber.scrub()
        corrupt(model, "0.weight")
        scrubber.scrub()
        counters = scrubber.counters()
        assert counters["scrubs"] == 2
        assert counters["tensors_checked"] == 8
        assert counters["faults_found"] == 1
        assert counters["restores"] == 1
        assert counters["uncorrectable"] == 0
        assert counters["generation"] == 1
        assert counters["golden_nbytes"] == scrubber.golden_nbytes()
        assert counters["scrub_time_s"] >= 0.0

    def test_counters_are_json_safe(self):
        import json

        json.dumps(WeightScrubber(small_model()).counters())


class TestCrcHelpers:
    def test_float_stream_crc_matches_packed_bytes(self):
        data = np.arange(7, dtype=np.float32)
        from repro.formats.bitpack import pack_words

        words = data.view(np.uint32)
        assert float_stream_crc(data) == zlib.crc32(
            pack_words(words, 32)) & 0xFFFFFFFF

    def test_single_bit_changes_crc(self):
        data = np.ones(16, dtype=np.float32)
        flipped = data.copy()
        flipped.flat[9] = flip_float_register(flipped.flat[9], 31)  # LSB
        assert float_stream_crc(data) != float_stream_crc(flipped)
