"""Unit tests for the seeded bit-flip injectors."""

import numpy as np
import pytest

from repro.formats import make_quantizer
from repro.formats.bitpack import pack_words
from repro.resilience import inject
from repro.resilience.inject import (eligible_bits, flip_float_register,
                                     flip_int_register, flip_packed,
                                     flip_words, inject_tensor, register_spec,
                                     sample_flip_positions)


def _fitted(name, bits, x):
    quantizer = make_quantizer(name, bits)
    params = quantizer.fit(x) if hasattr(quantizer, "fit") else {}
    if params:
        values = quantizer.quantize_with_params(x, params)
    else:
        values = quantizer.quantize(x)
    return quantizer, values, params


class TestEligibleBits:
    def test_any_covers_every_bit(self):
        quantizer = make_quantizer("adaptivfloat", 8)
        offsets = eligible_bits(quantizer, 3, "any")
        assert offsets.tolist() == list(range(24))

    def test_field_offsets_follow_bit_fields(self):
        # adaptivfloat at 8 bits: sign | 3 exponent | 4 mantissa.
        quantizer = make_quantizer("adaptivfloat", 8)
        assert eligible_bits(quantizer, 1, "sign").tolist() == [0]
        assert eligible_bits(quantizer, 1, "exponent").tolist() == [1, 2, 3]
        assert eligible_bits(quantizer, 1, "mantissa").tolist() == [4, 5, 6, 7]
        # Word i's bits start at i * bits.
        assert eligible_bits(quantizer, 2, "exponent").tolist() \
            == [1, 2, 3, 9, 10, 11]

    def test_missing_field_raises(self):
        quantizer = make_quantizer("uniform", 8)
        with pytest.raises(ValueError, match="no 'exponent' bits"):
            eligible_bits(quantizer, 4, "exponent")


class TestSampling:
    def test_deterministic_for_fixed_seed(self):
        quantizer = make_quantizer("float", 8)
        draws = [sample_flip_positions(np.random.default_rng(3), quantizer,
                                       100, "exponent", n_flips=5)
                 for _ in range(2)]
        assert np.array_equal(draws[0], draws[1])

    def test_n_flips_distinct_and_eligible(self):
        quantizer = make_quantizer("float", 8)
        positions = sample_flip_positions(np.random.default_rng(0), quantizer,
                                          50, "mantissa", n_flips=20)
        assert len(set(positions.tolist())) == 20
        eligible = set(eligible_bits(quantizer, 50, "mantissa").tolist())
        assert set(positions.tolist()) <= eligible

    def test_too_many_flips_raises(self):
        quantizer = make_quantizer("float", 8)
        with pytest.raises(ValueError):
            sample_flip_positions(np.random.default_rng(0), quantizer, 2,
                                  "sign", n_flips=3)

    def test_ber_extremes(self):
        quantizer = make_quantizer("float", 8)
        rng = np.random.default_rng(0)
        assert sample_flip_positions(rng, quantizer, 10, ber=0.0).size == 0
        assert sample_flip_positions(rng, quantizer, 10, ber=1.0).size == 80
        with pytest.raises(ValueError):
            sample_flip_positions(rng, quantizer, 10, ber=1.5)


class TestBitFlipping:
    def test_flip_packed_is_involution(self):
        rng = np.random.default_rng(5)
        packed = rng.integers(0, 256, size=16, dtype=np.uint8).tobytes()
        positions = np.array([0, 7, 8, 127])
        once = flip_packed(packed, positions)
        assert once != packed
        assert flip_packed(once, positions) == packed

    def test_flip_packed_msb_first(self):
        packed = bytes([0x00, 0x00])
        assert flip_packed(packed, np.array([0])) == bytes([0x80, 0x00])
        assert flip_packed(packed, np.array([15])) == bytes([0x00, 0x01])

    def test_flip_packed_out_of_range(self):
        with pytest.raises(ValueError):
            flip_packed(bytes([0]), np.array([8]))

    def test_flip_words_targets_one_word(self):
        words = np.zeros(4, dtype=np.uint32)
        # Bit 1 of word 2 in a 4-bit stream sits at flat offset 9.
        flipped = flip_words(words, 4, np.array([9]))
        assert flipped.tolist() == [0, 0, 0b0100, 0]

    def test_flip_words_matches_manual_pack(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 256, size=9).astype(np.uint32)
        positions = np.array([3, 40, 71])
        direct = flip_words(words, 8, positions)
        manual = np.frombuffer(
            flip_packed(pack_words(words, 8), positions), dtype=np.uint8)
        assert np.array_equal(direct, manual.astype(np.uint32))


class TestRegisterFlips:
    def test_int_register_sign_bit(self):
        # Bit 0 is the stored MSB: +3 (0000_0011) -> 1000_0011 = -125.
        assert flip_int_register(3, 0, width=8) == -125
        assert flip_int_register(-125, 0, width=8) == 3  # involution

    def test_int_register_lsb(self):
        assert flip_int_register(4, 7, width=8) == 5

    def test_int_register_bounds(self):
        with pytest.raises(ValueError):
            flip_int_register(3, 8, width=8)
        with pytest.raises(ValueError):
            flip_int_register(300, 0, width=8)

    def test_float_register_sign_and_exponent(self):
        assert flip_float_register(1.5, 0) == -1.5
        exp_hit = flip_float_register(1.0, 1)  # MSB of the exponent
        assert exp_hit != 1.0
        assert flip_float_register(exp_hit, 1) == 1.0

    def test_register_spec(self):
        assert register_spec("adaptivfloat") == ("exp_bias", "int", 8)
        assert register_spec("uniform") == ("scale", "float", 32)
        assert register_spec("float") is None
        assert register_spec("posit") is None


class TestInjectTensor:
    def test_deterministic_and_bounded(self):
        x = np.random.default_rng(0).normal(size=128)
        quantizer, values, params = _fitted("adaptivfloat", 8, x)
        results = [inject_tensor(quantizer, values, params,
                                 np.random.default_rng(11), field="any",
                                 n_flips=3) for _ in range(2)]
        assert np.array_equal(results[0].values, results[1].values)
        assert np.array_equal(results[0].positions, results[1].positions)
        assert results[0].n_flips == 3
        assert int(np.sum(results[0].values != values)) <= 3

    def test_sign_flip_changes_only_sign(self):
        x = np.random.default_rng(2).normal(size=64)
        quantizer, values, params = _fitted("adaptivfloat", 8, x)
        result = inject_tensor(quantizer, values, params,
                               np.random.default_rng(0), field="sign")
        changed = np.flatnonzero(result.values != values)
        assert changed.size == 1
        assert result.values[changed[0]] == -values[changed[0]]

    def test_register_fault_rescales_whole_tensor(self):
        x = np.random.default_rng(3).normal(size=64)
        quantizer, values, params = _fitted("adaptivfloat", 8, x)
        result = inject_tensor(quantizer, values, params,
                               np.random.default_rng(4), field="exp_bias")
        assert result.register_bit is not None
        assert result.params["exp_bias"] != params["exp_bias"]
        # Every nonzero element moves by the same power of two.
        nz = values != 0.0
        ratio = result.values[nz] / values[nz]
        assert np.allclose(ratio, ratio[0])

    def test_register_fault_unsupported_format(self):
        x = np.random.default_rng(3).normal(size=16)
        quantizer, values, params = _fitted("float", 8, x)
        with pytest.raises(ValueError, match="no adaptive register"):
            inject_tensor(quantizer, values, params,
                          np.random.default_rng(0), field="exp_bias")

    def test_every_format_injectable(self):
        x = np.random.default_rng(9).normal(size=96)
        for name in ("float", "bfp", "uniform", "posit", "adaptivfloat"):
            quantizer, values, params = _fitted(name, 8, x)
            result = inject_tensor(quantizer, values, params,
                                   np.random.default_rng(1), field="any")
            assert result.values.shape == values.shape
            assert int(np.sum(result.values != values)) <= 1

    def test_fields_constant_matches_inject(self):
        assert inject.FIELDS == ("any", "sign", "exponent", "mantissa")
        assert inject.REGISTER_FIELD == "exp_bias"
