"""Integration tests for the fault-injection campaign driver.

Runs at the 'tiny' profile: numbers are meaningless at this scale, so
assertions are structural (finite metrics, cache byte-stability); the
paper-shape claims (exponent flips hurting float more than AdaptivFloat)
live in the committed ``BENCH_resilience.json`` at the 'fast' profile.
"""

import json

import pytest

from repro.resilience import campaign

FORMATS = ("adaptivfloat", "float")
FIELDS = ("any", "exponent", "exp_bias")


@pytest.fixture(autouse=True)
def tiny_cache(tmp_path_factory, monkeypatch):
    """Isolated artifact cache shared across this module's tests."""
    cache = tmp_path_factory.getbasetemp() / "resilience_cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))


def _run():
    return campaign.run(profile="tiny", models=("transformer",),
                        formats=FORMATS, bits=8, fields=FIELDS,
                        trials=2, seed=0)


class TestCellFields:
    def test_word_classes_follow_bit_fields(self):
        assert campaign.cell_fields("float", 8) \
            == ("any", "sign", "exponent", "mantissa")
        assert campaign.cell_fields("posit", 8) \
            == ("any", "sign", "exponent", "mantissa")
        # Uniform/BFP words have no exponent bits but do have a register.
        assert campaign.cell_fields("uniform", 8) \
            == ("any", "sign", "mantissa", "exp_bias")
        assert campaign.cell_fields("bfp", 8) \
            == ("any", "sign", "mantissa", "exp_bias")
        assert campaign.cell_fields("adaptivfloat", 8) \
            == campaign.DEFAULT_FIELDS


class TestValidation:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            campaign.run(profile="tiny", models=("alexnet",))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            campaign.run(profile="tiny", models=("transformer",),
                         fields=("bogus",))

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            campaign.run(profile="huge", models=("transformer",))


class TestCampaign:
    def test_tiny_campaign_end_to_end(self):
        result = _run()
        model = result["models"]["transformer"]
        assert model["metric"] and isinstance(model["fp32_score"], float)

        # AdaptivFloat supports every requested field, including the
        # exp_bias register cell — the paper-critical configuration.
        af = model["formats"]["adaptivfloat"]
        for field in FIELDS:
            cell = af[field]
            assert cell is not None, field
            assert cell["trials"] == 2
            assert cell["flips_total"] >= 2
            for rate in ("sdc_rate", "detection_rate", "corrupt_rate",
                         "nonfinite_logit_rate"):
                assert 0.0 <= cell[rate] <= 1.0, (field, rate)
            assert isinstance(cell["clean_score"], float)
            # SDC is corruption that evaded detection: never more of it
            # than there is corruption.
            assert cell["sdc_rate"] <= cell["corrupt_rate"] + 1e-12

        # float carries no adaptive register: the cell is a structural
        # gap (None), not a silently dropped key.
        fl = model["formats"]["float"]
        assert fl["exp_bias"] is None
        assert fl["exponent"] is not None

    def test_warm_rerun_is_byte_identical(self):
        first = _run()
        again = _run()
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(again, sort_keys=True)

    def test_payloads_are_strict_json(self):
        result = _run()
        encoded = json.dumps(result, allow_nan=False, sort_keys=True)
        assert json.loads(encoded) is not None

    def test_render(self):
        text = campaign.render(_run())
        assert "Resilience - transformer" in text
        for fmt in FORMATS:
            assert fmt in text
