"""Tests for BLEU, WER, accuracy and RMS-error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (bleu_score, boxplot_stats, edit_distance,
                           ngram_precisions, rms_error, top1_accuracy,
                           top_k_accuracy, wer_score)


class TestBleu:
    def test_perfect_match_is_100(self):
        refs = [[1, 2, 3, 4, 5], [6, 7, 8, 9]]
        assert bleu_score(refs, refs) == pytest.approx(100.0)

    def test_disjoint_is_zero(self):
        refs = [[1, 2, 3, 4, 5]]
        hyps = [[6, 7, 8, 9, 10]]
        assert bleu_score(refs, hyps) < 1e-6

    def test_empty_hypotheses(self):
        assert bleu_score([[1, 2, 3]], [[]]) == 0.0

    def test_brevity_penalty(self):
        refs = [[1, 2, 3, 4, 5, 6, 7, 8]]
        full = bleu_score(refs, [[1, 2, 3, 4, 5, 6, 7, 8]])
        short = bleu_score(refs, [[1, 2, 3, 4]])
        assert short < full

    def test_no_reward_for_repeating_ngrams(self):
        # Clipping: repeating a matched token must not inflate precision.
        refs = [[1, 2, 3, 4]]
        spam = bleu_score(refs, [[1, 1, 1, 1]])
        honest = bleu_score(refs, [[1, 2, 3, 4]])
        assert spam < honest

    def test_corpus_pooling(self):
        refs = [[1, 2, 3], [4, 5, 6]]
        hyps = [[1, 2, 3], [7, 8, 9]]
        pooled = bleu_score(refs, hyps)
        assert 0 < pooled < 100

    def test_precisions_counts(self):
        precisions, ref_len, hyp_len = ngram_precisions([[1, 2, 3]], [[1, 2, 4]])
        assert ref_len == hyp_len == 3
        assert precisions[0] == pytest.approx(2 / 3)
        assert precisions[1] == pytest.approx(1 / 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bleu_score([[1]], [[1], [2]])


class TestWer:
    def test_edit_distance_known_cases(self):
        assert edit_distance([1, 2, 3], [1, 2, 3]) == 0
        assert edit_distance([1, 2, 3], [1, 3]) == 1        # deletion
        assert edit_distance([1, 2], [1, 9, 2]) == 1        # insertion
        assert edit_distance([1, 2, 3], [1, 9, 3]) == 1     # substitution
        assert edit_distance([], [1, 2]) == 2
        assert edit_distance([1, 2], []) == 2

    def test_perfect_is_zero(self):
        refs = [[1, 2, 3], [4, 5]]
        assert wer_score(refs, refs) == 0.0

    def test_wer_can_exceed_100(self):
        # Hallucinating models can have WER > 100 (paper prints 'inf').
        assert wer_score([[1]], [[2, 3, 4, 5]]) > 100.0

    def test_corpus_weighting(self):
        refs = [[1] * 9, [2]]
        hyps = [[1] * 9, [3]]
        assert wer_score(refs, hyps) == pytest.approx(10.0)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            wer_score([[]], [[]])


class TestAccuracy:
    def test_top1(self):
        logits = np.array([[1.0, 3.0], [2.0, 0.0], [0.0, 5.0]])
        labels = np.array([1, 0, 0])
        assert top1_accuracy(logits, labels) == pytest.approx(100 * 2 / 3)

    def test_topk(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([2]), k=3) == 100.0
        assert top_k_accuracy(logits, np.array([3]), k=3) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((3, 2)), np.zeros(4))


class TestErrorMetrics:
    def test_rms_error_known(self):
        a = np.array([0.0, 0.0])
        b = np.array([3.0, 4.0])
        assert rms_error(a, b) == pytest.approx(np.sqrt(12.5))

    def test_rms_shape_mismatch(self):
        with pytest.raises(ValueError):
            rms_error(np.zeros(3), np.zeros(4))

    def test_boxplot_stats(self):
        stats = boxplot_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats["median"] == 3.0
        assert stats["min"] == 1.0 and stats["max"] == 5.0
        assert stats["mean"] == 3.0

    def test_boxplot_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_stats([])


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 5), max_size=12),
       st.lists(st.integers(0, 5), max_size=12))
def test_edit_distance_properties(a, b):
    d = edit_distance(a, b)
    assert d == edit_distance(b, a)                 # symmetry
    assert d >= abs(len(a) - len(b))                # length lower bound
    assert d <= max(len(a), len(b))                 # replacement upper bound
    assert (d == 0) == (a == b)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(0, 9), min_size=1, max_size=10),
                min_size=1, max_size=8))
def test_bleu_identity_property(corpus):
    assert bleu_score(corpus, corpus) == pytest.approx(100.0)
