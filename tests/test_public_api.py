"""Public-API integrity: imports, __all__ consistency, example scripts."""

import importlib
import pathlib
import subprocess
import sys

import pytest

PACKAGES = [
    "repro", "repro.formats", "repro.nn", "repro.nn.models",
    "repro.nn.layers", "repro.data", "repro.metrics", "repro.hardware",
    "repro.analysis", "repro.experiments", "repro.resilience",
    "repro.serve", "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_docstrings_present(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), name


def test_version():
    import repro
    assert repro.__version__


REPO = pathlib.Path(__file__).resolve().parents[1]


@pytest.mark.parametrize("script", ["quickstart.py", "exponent_search.py"])
def test_light_examples_run(script, tmp_path):
    """The non-training examples must run end to end."""
    result = subprocess.run(
        [sys.executable, str(REPO / "examples" / script)],
        capture_output=True, text=True, timeout=300,
        env={"PATH": "/usr/bin:/bin", "REPRO_CACHE_DIR": str(tmp_path),
             "PYTHONPATH": str(REPO / "src")})
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
