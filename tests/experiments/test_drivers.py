"""Integration smoke tests for the experiment drivers.

These run the full pipelines (training, PTQ, QAR, calibration,
rendering) at the 'tiny' profile: the *numbers* are meaningless at this
scale, so assertions are structural; the paper-shape assertions live in
``benchmarks/`` where the 'fast' profile is used.
"""

import math

import pytest

from repro.experiments import (common, fig1_weight_ranges, fig4_rms_error,
                               fig7_pe_sweep, table1_models,
                               table2_weight_quant, table3_weight_act_quant,
                               table4_accelerator)


@pytest.fixture(autouse=True)
def tiny_cache(tmp_path_factory, monkeypatch):
    """Isolated artifact cache shared across this module's tests."""
    cache = tmp_path_factory.getbasetemp() / "tiny_cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))


class TestCommon:
    def test_trained_model_caches(self):
        model1, _, score1 = common.trained_model("transformer", "tiny")
        model2, _, score2 = common.trained_model("transformer", "tiny")
        assert score1 == score2  # second call loaded from cache
        s1 = model1.state_dict()
        s2 = model2.state_dict()
        assert all((s1[k] == s2[k]).all() for k in s1)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            common.get_bundle("alexnet")

    def test_failure_scores(self):
        assert common.get_bundle("transformer").failure_score() == 0.0
        assert math.isinf(common.get_bundle("seq2seq").failure_score())


class TestDrivers:
    def test_table1(self):
        result = table1_models.run(profile="tiny")
        assert {r["model"] for r in result["rows"]} \
            == {"transformer", "seq2seq", "resnet"}
        text = table1_models.render(result)
        assert "Table 1" in text and "93M" in text

    def test_fig1(self):
        result = fig1_weight_ranges.run(profile="tiny")
        assert result["nlp_over_cnn_span"] > 1.0
        assert "Figure 1" in fig1_weight_ranges.render(result)

    def test_fig4(self):
        result = fig4_rms_error.run(profile="tiny", bits_list=(8,),
                                    models=("resnet",))
        stats = result["models"]["resnet"][8]["adaptivfloat"]["stats"]
        assert stats["min"] <= stats["median"] <= stats["max"]
        assert "resnet" in fig4_rms_error.render(result)

    def test_table2(self):
        result = table2_weight_quant.run(
            profile="tiny", bits_list=(8,),
            formats=("uniform", "adaptivfloat"), models=("transformer",))
        cell = result["models"]["transformer"]["grid"][8]["adaptivfloat"]
        assert "ptq" in cell and "qar" in cell
        assert cell["ptq"] >= 0.0 and cell["qar"] >= 0.0
        assert "Table 2" in table2_weight_quant.render(result)

    def test_table2_without_qar(self):
        result = table2_weight_quant.run(
            profile="tiny", bits_list=(8,), formats=("adaptivfloat",),
            models=("resnet",), include_qar=False)
        cell = result["models"]["resnet"]["grid"][8]["adaptivfloat"]
        assert cell["qar"] is None
        assert "Table 2" in table2_weight_quant.render(result)

    def test_table3(self):
        result = table3_weight_act_quant.run(
            profile="tiny", bits_list=(8,), formats=("adaptivfloat",),
            models=("seq2seq",))
        value = result["models"]["seq2seq"]["grid"][8]["adaptivfloat"]
        assert value >= 0.0
        assert "W8/A8" in table3_weight_act_quant.render(result)

    def test_fig7(self):
        result = fig7_pe_sweep.run()
        assert len(result["points"]) == 12
        assert "Figure 7" in fig7_pe_sweep.render(result)

    def test_table4(self):
        result = table4_accelerator.run()
        assert result["rows"]["int"]["runtime_us"] > 0
        assert "Table 4" in table4_accelerator.render(result)

    def test_model_costs(self):
        from repro.experiments import model_costs
        result = model_costs.run(profile="tiny", models=("resnet",))
        row = result["rows"][0]
        assert row["macs"] > 0
        assert row["hfint_energy_uj"] < row["int_energy_uj"]
        assert "Extension" in model_costs.render(result)

    def test_ablations_driver(self):
        from repro.experiments import ablations
        result = ablations.run(profile="tiny", bits_list=(8,))
        assert 8 in result["adaptivity"]
        assert "Ablation A" in ablations.render(result)

    def test_activation_ranges(self):
        from repro.experiments import activation_ranges
        result = activation_ranges.run(profile="tiny", bits=4,
                                       models=("transformer",))
        payload = result["models"]["transformer"]
        assert payload["sites"], "no probed sites"
        assert 0.0 <= payload["mean_underflow"] <= 1.0
        assert "Activation ranges" in activation_ranges.render(result)
