"""Tests for the parallel sweep runner and its per-cell result cache."""

import json
import pathlib

import pytest

from repro.cache import cell_cache_path, content_key, store_cached_json
from repro.experiments.runner import (cell_cache_enabled, run_cells,
                                      store_and_reload)


@pytest.fixture(autouse=True)
def tiny_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


# Cell functions must be module-level so ProcessPoolExecutor can pickle them.
def square_cell(cell):
    return {"value": cell["n"] ** 2}


def tuple_cell(cell):
    return (cell["n"], cell["n"] + 1)  # JSON round-trips to a list


def failing_cell(cell):
    if cell["n"] == 2:
        raise RuntimeError("cell blew up")
    return cell["n"]


CELLS = [{"n": n} for n in range(6)]


class TestRunCells:
    def test_serial_results_in_input_order(self):
        assert run_cells(square_cell, CELLS) == \
            [{"value": n * n} for n in range(6)]

    def test_parallel_matches_serial(self):
        serial = run_cells(square_cell, CELLS)
        parallel = run_cells(square_cell, CELLS, jobs=3)
        assert parallel == serial

    def test_empty_sweep(self):
        assert run_cells(square_cell, []) == []
        assert run_cells(square_cell, [], jobs=4) == []

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_cells(square_cell, CELLS, jobs=0)

    def test_lambda_rejected_under_jobs(self):
        with pytest.raises(ValueError, match="module-level"):
            run_cells(lambda c: c, CELLS, jobs=2)  # reprocheck: disable=PK001

    def test_nested_function_rejected_under_jobs(self):
        def local_cell(cell):
            return cell["n"]
        with pytest.raises(ValueError, match="module-level"):
            run_cells(local_cell, CELLS, jobs=2)  # reprocheck: disable=PK001

    def test_nested_function_allowed_serially(self):
        def local_cell(cell):
            return cell["n"]
        assert run_cells(local_cell, CELLS) == list(range(6))  # reprocheck: disable=PK001

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError):
            run_cells(failing_cell, CELLS)
        with pytest.raises(RuntimeError):
            run_cells(failing_cell, CELLS, jobs=2)

    def test_progress_callback_sees_every_cell(self):
        seen = []
        run_cells(square_cell, CELLS,
                  progress=lambda done, total, cell: seen.append((done, total)))
        assert seen == [(i + 1, 6) for i in range(6)]


class TestCellCache:
    def test_cache_files_created_and_reused(self, tmp_path):
        run_cells(square_cell, CELLS, cache_namespace="toy", cache_salt="v1")
        files = list((tmp_path / "cells" / "toy").glob("*.json"))
        assert len(files) == 6

        # Second run must be served from disk: poison one cached value
        # and check the poisoned value comes back instead of a recompute.
        key = content_key({"cell": CELLS[0], "salt": "v1"})
        path = cell_cache_path("toy", key)
        path.write_text(json.dumps({"value": -1}))
        again = run_cells(square_cell, CELLS, cache_namespace="toy",
                          cache_salt="v1")
        assert again[0] == {"value": -1}
        assert again[1:] == [{"value": n * n} for n in range(1, 6)]

    def test_salt_invalidates(self):
        run_cells(square_cell, CELLS, cache_namespace="toy", cache_salt="v1")
        key_v1 = content_key({"cell": CELLS[0], "salt": "v1"})
        key_v2 = content_key({"cell": CELLS[0], "salt": "v2"})
        assert key_v1 != key_v2
        assert cell_cache_path("toy", key_v1).exists()
        assert not cell_cache_path("toy", key_v2).exists()

    def test_corrupt_cache_file_is_recomputed(self, tmp_path):
        run_cells(square_cell, CELLS[:1], cache_namespace="toy",
                  cache_salt="v1")
        key = content_key({"cell": CELLS[0], "salt": "v1"})
        path = cell_cache_path("toy", key)
        path.write_text("{not json")
        out = run_cells(square_cell, CELLS[:1], cache_namespace="toy",
                        cache_salt="v1")
        assert out == [{"value": 0}]
        assert json.loads(path.read_text()) == {"value": 0}  # repaired

    def test_env_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_CACHE", "0")
        assert not cell_cache_enabled()
        run_cells(square_cell, CELLS, cache_namespace="toy", cache_salt="v1")
        assert not (tmp_path / "cells").exists()

    def test_cold_run_matches_cached_run_exactly(self):
        # Tuples are serialized to JSON lists; the runner must return the
        # round-tripped form on the COLD run too, so serial/parallel and
        # cold/warm runs assemble byte-identical result objects.
        cold = run_cells(tuple_cell, CELLS, cache_namespace="toy",
                         cache_salt="v1")
        warm = run_cells(tuple_cell, CELLS, cache_namespace="toy",
                         cache_salt="v1")
        assert cold == warm == [[n, n + 1] for n in range(6)]

    def test_store_and_reload_round_trips(self):
        value = store_and_reload("toy", {"n": 9}, "v1", (1, 2))
        assert value == [1, 2]

    def test_non_serializable_payload_raises(self, tmp_path):
        # Regression: store_cached_json used to pass ``default=str`` to
        # json.dump, silently stringifying Paths/arrays into a payload
        # that later warm runs would return in place of the real result.
        with pytest.raises(TypeError):
            store_cached_json("toy", "deadbeef",
                              {"path": pathlib.Path("/nowhere")})
        assert not cell_cache_path("toy", "deadbeef").exists()

    def test_failed_store_leaves_no_partial_file(self, tmp_path):
        key = content_key({"cell": {"n": 0}, "salt": "v1"})
        with pytest.raises(TypeError):
            # a set payload is deliberately unserializable here
            store_cached_json("toy", key,  # reprocheck: disable=CK001
                              {"bad": {1, 2}})
        assert list((tmp_path / "cells").rglob("*")) == [] or not any(
            p.suffix == ".json" for p in (tmp_path / "cells").rglob("*"))
