"""Byte-identical determinism of the cached experiment cells.

The cell cache (:mod:`repro.experiments.runner`) stores results keyed by
a content hash of the descriptor: that is only sound if a cell is a pure
function of its descriptor.  This regression test recomputes a Table 2
cell twice with the cell cache disabled (``REPRO_CELL_CACHE=0``) and
asserts the serialized results are byte-identical — the invariant the
ND001 lint rule exists to protect.
"""

import json

import pytest

from repro.experiments import table2_weight_quant
from repro.rng import reset_default_rng


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path_factory, monkeypatch):
    cache = tmp_path_factory.getbasetemp() / "determinism_cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    monkeypatch.setenv("REPRO_CELL_CACHE", "0")


def canonical(payload):
    """Stable byte serialization (sorted keys, no float reformatting)."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def run_cell_bytes(cell):
    reset_default_rng()  # a prior test may have advanced the shared stream
    return canonical(table2_weight_quant.run_cell(dict(cell)))


class TestCellDeterminism:
    CELL = {"table": "table2", "profile": "tiny", "model": "resnet",
            "bits": 6, "format": "adaptivfloat", "include_qar": True}

    def test_table2_cell_recomputes_byte_identical(self):
        first = run_cell_bytes(self.CELL)
        second = run_cell_bytes(self.CELL)
        assert first == second

    def test_ptq_only_cell_recomputes_byte_identical(self):
        cell = dict(self.CELL, include_qar=False, format="float", bits=5)
        assert run_cell_bytes(cell) == run_cell_bytes(cell)
