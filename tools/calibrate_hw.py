#!/usr/bin/env python
"""Regenerate the calibrated PPA coefficients in repro/hardware/constants.py.

Fits the linear component model of repro.hardware.pe to the 24 datapoints
of paper Fig. 7 (12 per-op energies, 12 throughput/area values) using
bounded least squares, with physically-motivated floors so no component
coefficient degenerates to zero.  Run:

    python tools/calibrate_hw.py

and copy the printed coefficients into ENERGY_16NM / AREA_16NM.
Requires scipy (test extra).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import lsq_linear

H = 256

# Paper Fig. 7: per-op energy (fJ/op), top panel.
PAPER_ENERGY = {
    ("int", 4): {4: 127.00, 8: 59.75, 16: 30.36},
    ("hfint", 4): {4: 123.12, 8: 56.39, 16: 27.77},
    ("int", 8): {4: 227.61, 8: 105.80, 16: 52.21},
    ("hfint", 8): {4: 205.27, 8: 98.38, 16: 46.88},
}

# Paper Fig. 7: throughput per area (TOPS/mm²), bottom panel.
PAPER_PERF_AREA = {
    ("int", 4): {4: 1.31, 8: 2.28, 16: 3.90},
    ("hfint", 4): {4: 1.26, 8: 2.10, 16: 3.42},
    ("int", 8): {4: 1.11, 8: 1.59, 16: 2.25},
    ("hfint", 8): {4: 1.02, 8: 1.39, 16: 1.86},
}


def _widths(kind: str, n: int):
    if kind == "int":
        acc = 2 * n + int(math.log2(H))
        return acc, 2 * n  # accumulator, scale bits
    e, m = 3, n - 4
    acc = 2 * (2 ** e - 1) + 2 * m + int(math.log2(H))
    return acc, 0


def energy_row(kind: str, n: int, K: int) -> np.ndarray:
    """Coefficient multipliers for [mult, add, shift, reg, sram, ctrl]."""
    lgk = math.log2(K)
    acc, S = _widths(kind, n)
    if kind == "int":
        e_mac = np.array([n * n, 2 * n + lgk, 0, 0, 0, 0], float)
        post = np.array([acc * S, 0, acc + S, acc + S, 0, 0], float) / H
    else:
        m = n - 4
        e_mac = np.array([(m + 1) ** 2, 4 + acc, acc, 0, 0, 0], float)
        post = np.array([0, n, acc, acc, 0, 0], float) / H
    e_lane = np.array([0, acc, 0, acc, n, 0], float) + post
    e_fix = np.array([0, 0, 0, 0, 0, 1], float)
    return e_mac / 2 + e_lane / (2 * K) + e_fix / (2 * K * K)


def area_row(kind: str, n: int, K: int) -> np.ndarray:
    """Coefficient multipliers for [mult, add, shift, reg, ctrl]."""
    lgk = math.log2(K)
    acc, S = _widths(kind, n)
    if kind == "int":
        a_mac = np.array([n * n, 2 * n + lgk, 0, n, 0], float)
        a_fix = np.array([acc * S, 0, acc + S, acc + S, 1], float)
    else:
        m = n - 4
        a_mac = np.array([(m + 1) ** 2, 4 + acc, acc, n, 0], float)
        a_fix = np.array([0, n, acc, acc, 1], float)
    a_lane = np.array([0, acc, 0, acc + n, 0], float)
    return a_mac * K * K + a_lane * K + a_fix


def fit(rows, targets, lo, hi, labels):
    A = np.array(rows)
    b = np.array(targets)
    result = lsq_linear(A, b, bounds=(lo, hi))
    pred = A @ result.x
    err = np.abs(pred / b - 1)
    print("  coefficients:")
    for name, value in zip(labels, result.x):
        print(f"    {name:12s} {value:.6g}")
    print(f"  max rel error {err.max():.1%}, mean {err.mean():.1%}")
    return result.x


def main() -> None:
    rows, targets = [], []
    for (kind, n), per_k in PAPER_ENERGY.items():
        for K, val in per_k.items():
            rows.append(energy_row(kind, n, K))
            targets.append(val)
    print("Energy fit (fJ):")
    fit(rows, targets,
        lo=[0.2, 0.08, 0.04, 0.25, 20.0, 100.0],
        hi=[1.0, 0.5, 0.3, 1.0, 400.0, 4000.0],
        labels=["mult/bit^2", "add/bit", "shift/bit", "reg/bit",
                "sram/bit", "ctrl/cycle"])

    rows, targets = [], []
    for (kind, n), per_k in PAPER_PERF_AREA.items():
        for K, tops_mm2 in per_k.items():
            rows.append(area_row(kind, n, K))
            targets.append(2 * K * K * 1e-3 / tops_mm2)  # implied area, mm²
    print("\nArea fit (mm²):")
    fit(rows, targets,
        lo=[1e-7, 1e-6, 1e-6, 1e-6, 1e-4],
        hi=[2e-5, 5e-5, 5e-5, 5e-4, 5e-2],
        labels=["mult/bit^2", "add/bit", "shift/bit", "reg/bit", "ctrl"])


if __name__ == "__main__":
    main()
