#!/usr/bin/env python3
"""Standalone launcher for the repo linter (same as ``python -m repro.lint``).

Exists so the checker can be run without setting PYTHONPATH:
``python tools/reprocheck.py [args...]``.

Useful entry points (see docs/static-analysis.md for the full surface):

    tools/reprocheck.py                        # whole tree, human output
    tools/reprocheck.py --changed origin/main  # only files changed vs a ref
    tools/reprocheck.py --format sarif         # SARIF 2.1.0 for CI viewers
    tools/reprocheck.py --hw-table             # HW001 accumulator proofs
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
