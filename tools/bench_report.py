#!/usr/bin/env python
"""Regenerate the committed benchmark records (BENCH_*.json).

Two suites:

* ``--suite formats`` (default) — quantization/codec throughput from
  ``benchmarks/test_format_kernels.py`` -> ``BENCH_formats.json``.
  ``--with-analytic`` also times the analytic reference path
  (``REPRO_NO_CODEBOOK=1``) and records per-benchmark speedup ratios.
* ``--suite decode`` — KV-cached vs naive autoregressive decoding from
  ``benchmarks/test_decode_throughput.py`` -> ``BENCH_decode.json``,
  with a ``speedup`` per cached/naive pair.
* ``--suite resilience`` — the seeded bit-flip fault-injection campaign
  (``repro.resilience``, fast profile, transformer, all five formats at
  8 bits) -> ``BENCH_resilience.json``.  The record has three blocks:
  ``campaign`` (the deterministic grid, timing stripped — byte-identical
  across machines and warm re-runs), ``throughput`` (trial-loop
  trials/sec for the naive reference loop vs the cached-encode engine,
  the full-campaign wall clocks, and the equivalence checks: per-trial
  fault checksums and campaign counters must match between the two
  paths), and ``machine``.  The engine must clear a >= 3x trial-loop
  speedup or the run fails.
* ``--suite serve`` — micro-batched vs serial request throughput
  through ``repro.serve`` (transformer greedy workload, 16 concurrent
  clients) -> ``BENCH_serve.json`` with the server's queue/batch/latency
  stats, the per-family batched-vs-serial token-identity verdicts
  (under ``deterministic_matmul``), and a ``resilience`` block: the
  closed-loop single-fault recovery record (exponent-bit weight flip
  injected mid-serve; scrub/restore/retry counters) plus the measured
  p50 latency overhead of golden-copy scrubbing and of the metrics
  spine itself (registry enabled vs disabled).  The server stats
  snapshot embeds the full ``repro.obs`` registry dump, and the record
  additionally stores the Prometheus text rendering round-tripped
  through the validating parser.  Gates: >= 3x throughput speedup,
  every family token-identical, zero failed requests + token-identical
  recovery under injection, scrub p50 overhead below 5%, obs p50
  overhead below 2%, and the Prometheus exposition must parse.

Run:  PYTHONPATH=src python tools/bench_report.py [--suite decode]

Timings are machine-dependent; the committed files record the shape of
the comparison (which paths are fast, relative speedups), not absolute
milliseconds to be matched elsewhere.  The resilience ``campaign`` block
is the exception: it is exactly reproducible.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[1]
SUITES = {
    "formats": ("benchmarks/test_format_kernels.py",
                REPO / "BENCH_formats.json"),
    "decode": ("benchmarks/test_decode_throughput.py",
               REPO / "BENCH_decode.json"),
    "resilience": (None, REPO / "BENCH_resilience.json"),
    "serve": (None, REPO / "BENCH_serve.json"),
}

#: The committed resilience campaign: every registry format at 8 bits,
#: single-flip field cells plus one BER cell, fast-profile transformer.
RESILIENCE_CONFIG = {
    "profile": "fast", "models": ("transformer",), "bits": 8,
    "formats": ("float", "bfp", "uniform", "posit", "adaptivfloat"),
    "fields": ("any", "sign", "exponent", "mantissa", "exp_bias"),
    "ber": (0.001,), "n_flips": 1, "trials": 12, "seed": 0,
}

#: Trial-loop throughput probe (the machinery the engine accelerates:
#: fault synthesis + state application + parameter scan, no scoring).
THROUGHPUT_CONFIG = {
    "profile": "fast", "model": "transformer",
    "format_name": "adaptivfloat", "bits": 8, "field": "any",
    "n_flips": 1, "trials": 200, "seed": 0,
}

#: Minimum trial-loop speedup (engine vs naive) the record must show.
MIN_TRIAL_LOOP_SPEEDUP = 3.0

#: The committed serving benchmark: the acceptance workload — transformer
#: greedy decode, 16 concurrent clients, 64 requests — plus the
#: per-family token-identity verdicts.
SERVE_CONFIG = {
    "model": "transformer", "concurrency": 16, "num_requests": 64,
    "max_batch": 16, "max_wait_ms": 5.0, "workers": 1, "seed": 0,
    "max_len": 32, "repeats": 3,
}

#: Minimum batched-vs-serial request-throughput speedup for the record.
MIN_SERVE_SPEEDUP = 3.0

#: Largest tolerated p50 latency regression with golden-copy weight
#: scrubbing enabled (per-batch CRC verify + periodic scrub daemon).
MAX_SCRUB_P50_OVERHEAD = 0.05

#: Largest tolerated p50 latency cost of the always-on metrics spine
#: (per-request instrument cost, registry enabled vs disabled, as a
#: fraction of the serve micro-benchmark p50).
MAX_OBS_P50_OVERHEAD = 0.02

#: Metric families the committed serve record must expose (the same
#: list the CI ``obs-smoke`` job asserts after scraping ``/metrics``).
REQUIRED_OBS_FAMILIES = (
    "repro_serve_requests_total", "repro_serve_batches_total",
    "repro_serve_batch_size", "repro_serve_latency_seconds",
    "repro_serve_queue_wait_seconds", "repro_serve_queue_depth",
    "repro_span_seconds", "repro_weight_quant_cache_total",
    "repro_codebook_cache", "repro_decode_lut_cache",
    "repro_scrub_passes_total", "repro_serve_degradation_state",
)


def machine_info() -> dict:
    """Interpreter/platform/numpy/threading context of a benchmark run.

    Thread and BLAS provenance matter for the timing suites: a numpy
    wheel pinned to one OpenBLAS thread and a 64-thread build produce
    very different absolute numbers for the same code.
    """
    import numpy as np

    info = {
        "python": platform.python_version(),
        "system": f"{platform.system()} {platform.machine()}",
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "thread_env": {
            var: os.environ[var]
            for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                        "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS")
            if var in os.environ
        },
    }
    try:
        cfg = np.show_config(mode="dicts")
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        info["blas"] = {key: blas[key] for key in
                        ("name", "version", "openblas configuration")
                        if key in blas}
    except TypeError:  # numpy < 1.25: text-only show_config
        info["blas"] = None
    return info


def _strip_timing(obj):
    """Drop every ``timing`` block so the campaign record is machine-free."""
    if isinstance(obj, dict):
        return {k: _strip_timing(v) for k, v in obj.items() if k != "timing"}
    if isinstance(obj, list):
        return [_strip_timing(v) for v in obj]
    return obj


def _counter_view(result: dict) -> dict:
    """The fault/detection/drift counters of a campaign grid.

    Everything the naive and engine loops must agree on bit-for-bit;
    score aggregates are excluded because the engine scores masked
    faults as clean without re-running the evaluation.
    """
    keys = ("trials", "flips_total", "sdc_rate", "detection_rate",
            "corrupt_rate", "nonfinite_logit_rate", "masked_probe_rate",
            "mean_logit_rms_drift", "max_logit_rms_drift",
            "detected_kinds", "clean_score", "fp32_score")
    view = {}
    for model, payload in result["models"].items():
        for fmt, per_field in payload["formats"].items():
            for field, cell in per_field.items():
                if cell is not None:
                    view[f"{model}/{fmt}/{field}"] = {k: cell[k]
                                                      for k in keys}
    return view


def _run_resilience() -> dict:
    """Campaign + throughput record; fails below the speedup gate."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.resilience import campaign

    # Trial-loop throughput, with per-trial fault checksums: the digest
    # streams prove both loops install identical faulty tensors.
    naive_tp = campaign.measure_injection_throughput(
        engine=False, checksums=True, **THROUGHPUT_CONFIG)
    engine_tp = campaign.measure_injection_throughput(
        engine=True, checksums=True, **THROUGHPUT_CONFIG)
    checksums_identical = naive_tp.pop("checksums") == engine_tp.pop(
        "checksums")
    speedup = engine_tp["trials_per_sec"] / naive_tp["trials_per_sec"]

    # Full campaigns both ways; the committed grid is the engine one.
    naive_grid = campaign.run(engine=False, **RESILIENCE_CONFIG)
    engine_grid = campaign.run(engine=True, **RESILIENCE_CONFIG)
    counters_identical = (_counter_view(naive_grid)
                          == _counter_view(engine_grid))

    if not checksums_identical:
        raise SystemExit("naive/engine fault checksums diverge")
    if not counters_identical:
        raise SystemExit("naive/engine campaign counters diverge")
    if speedup < MIN_TRIAL_LOOP_SPEEDUP:
        raise SystemExit(f"trial-loop speedup {speedup:.2f}x below the "
                         f"{MIN_TRIAL_LOOP_SPEEDUP}x gate")

    return {
        "campaign": _strip_timing(engine_grid),
        "throughput": {
            "trial_loop": {
                "naive": naive_tp,
                "engine": engine_tp,
                "speedup": round(speedup, 2),
                "checksums_identical": checksums_identical,
            },
            "campaign_wall": {
                "naive_s": round(naive_grid["timing"]["wall_time_s"], 3),
                "engine_s": round(engine_grid["timing"]["wall_time_s"], 3),
                "naive_trials_per_sec": round(
                    naive_grid["timing"]["trials_per_sec"], 2),
                "engine_trials_per_sec": round(
                    engine_grid["timing"]["trials_per_sec"], 2),
                "speedup": round(naive_grid["timing"]["wall_time_s"]
                                 / engine_grid["timing"]["wall_time_s"], 2),
            },
            "counters_identical": counters_identical,
        },
        "machine": machine_info(),
    }


def _run_serve() -> dict:
    """Serving throughput + token-identity + resilience record.

    Three gates: batched-vs-serial speedup, per-family token identity,
    and the self-healing loop — a single exponent-bit weight fault
    injected mid-serve must be detected, restored, and retried with
    zero failed requests and token-identical output, and scrubbing must
    cost less than :data:`MAX_SCRUB_P50_OVERHEAD` of p50 latency.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro import obs
    from repro.obs import parse_prometheus
    from repro.serve.bench import (check_equivalence, measure_obs_overhead,
                                   measure_scrub_overhead,
                                   run_fault_recovery, run_serve_benchmark)

    record = run_serve_benchmark(**SERVE_CONFIG)
    identity = check_equivalence(seed=SERVE_CONFIG["seed"])
    recovery = run_fault_recovery(seed=SERVE_CONFIG["seed"])
    overhead = measure_scrub_overhead(seed=SERVE_CONFIG["seed"])
    obs_overhead = measure_obs_overhead(seed=SERVE_CONFIG["seed"])

    if record["speedup"] < MIN_SERVE_SPEEDUP:
        raise SystemExit(f"batched-vs-serial speedup {record['speedup']}x "
                         f"below the {MIN_SERVE_SPEEDUP}x gate")
    failures = [name for name, same in identity.items() if not same]
    if failures:
        raise SystemExit("batched decode not token-identical to serial "
                         f"for: {failures}")
    if recovery["failed_requests"] or not recovery["token_identical"]:
        raise SystemExit(
            "self-healing gate failed under single-fault injection: "
            f"failed={recovery['failed_requests']} "
            f"token_identical={recovery['token_identical']}")
    if not (recovery["detected"] and recovery["restored"]
            and recovery["retried"]):
        raise SystemExit("self-healing gate: fault was not "
                         f"detected/restored/retried ({recovery})")
    if overhead["p50_overhead"] > MAX_SCRUB_P50_OVERHEAD:
        raise SystemExit(
            f"scrub p50 overhead {overhead['p50_overhead']:.1%} above "
            f"the {MAX_SCRUB_P50_OVERHEAD:.0%} gate")
    if obs_overhead["p50_overhead"] > MAX_OBS_P50_OVERHEAD:
        raise SystemExit(
            f"obs p50 overhead {obs_overhead['p50_overhead']:.1%} above "
            f"the {MAX_OBS_P50_OVERHEAD:.0%} gate")

    # The exposition gate: render the registry the bench run populated
    # and push it through the validating parser — the committed record
    # must carry a scrape a real Prometheus server would accept.
    exposition = obs.render_prometheus()
    families = parse_prometheus(exposition)
    missing = [name for name in REQUIRED_OBS_FAMILIES
               if name not in families]
    if missing:
        raise SystemExit(f"obs exposition missing families: {missing}")

    return {
        "throughput": record,
        "token_identity": identity,
        "resilience": {
            "fault_recovery": recovery,
            "scrub_overhead": overhead,
        },
        "observability": {
            "obs_overhead": obs_overhead,
            "prometheus_families": len(families),
            "prometheus_parses": True,
            "registry": obs.snapshot(),
        },
        "machine": machine_info(),
    }


def _run_benchmarks(bench_file: str, extra_env: dict) -> dict:
    """Run the benchmark module and return pytest-benchmark's JSON report."""
    with tempfile.TemporaryDirectory() as tmp:
        report = pathlib.Path(tmp) / "bench.json"
        env = dict(os.environ, **extra_env)
        env["PYTHONPATH"] = str(REPO / "src")
        cmd = [sys.executable, "-m", "pytest", bench_file, "-q",
               "--benchmark-only", f"--benchmark-json={report}",
               "--benchmark-warmup=on", "--benchmark-warmup-iterations=2",
               "-p", "no:cacheprovider"]
        proc = subprocess.run(cmd, cwd=REPO, env=env,
                              stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode())
            raise SystemExit(f"benchmark run failed ({proc.returncode})")
        return json.loads(report.read_text())


def _distill(report: dict) -> dict:
    """Keep one small record per benchmark, keyed by its pytest node name."""
    out = {}
    for bench in report["benchmarks"]:
        stats = bench["stats"]
        out[bench["name"]] = {
            "median_ms": round(stats["median"] * 1e3, 4),
            "mean_ms": round(stats["mean"] * 1e3, 4),
            "rounds": stats["rounds"],
        }
    return dict(sorted(out.items()))


def _pair_cached_naive(benchmarks: dict) -> None:
    """Fold ``name[naive]`` records into ``name[cached]`` as speedups."""
    for name in list(benchmarks):
        if not name.endswith("[cached]"):
            continue
        naive = name[: -len("[cached]")] + "[naive]"
        if naive in benchmarks:
            record = benchmarks[name]
            record["naive_median_ms"] = benchmarks[naive]["median_ms"]
            record["speedup"] = round(
                benchmarks[naive]["median_ms"] / record["median_ms"], 2)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES),
                        default="formats")
    parser.add_argument("--with-analytic", action="store_true",
                        help="formats suite: also time the analytic path "
                             "(REPRO_NO_CODEBOOK=1) and record speedups")
    parser.add_argument("--output", type=pathlib.Path, default=None)
    args = parser.parse_args()

    bench_file, default_output = SUITES[args.suite]
    output = args.output or default_output
    if args.suite == "serve":
        payload = _run_serve()
        output.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
        record = payload["throughput"]
        print(f"wrote {output} (speedup {record['speedup']}x, "
              f"{record['batched']['requests_per_sec']} req/s batched vs "
              f"{record['serial']['requests_per_sec']} serial, identity "
              f"{payload['token_identity']})")
        return 0
    if args.suite == "resilience":
        payload = _run_resilience()
        output.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
        trial_loop = payload["throughput"]["trial_loop"]
        print(f"wrote {output} "
              f"({len(payload['campaign']['models'])} model(s), "
              f"{len(RESILIENCE_CONFIG['formats'])} formats, "
              f"trial-loop speedup {trial_loop['speedup']}x)")
        return 0
    fast = _distill(_run_benchmarks(bench_file, {}))
    payload = {
        "machine": machine_info(),
        "benchmarks": fast,
    }
    if args.suite == "decode":
        _pair_cached_naive(payload["benchmarks"])
    if args.with_analytic and args.suite == "formats":
        analytic = _distill(_run_benchmarks(bench_file,
                                            {"REPRO_NO_CODEBOOK": "1"}))
        for name, record in payload["benchmarks"].items():
            if name in analytic:
                record["analytic_median_ms"] = analytic[name]["median_ms"]
                record["speedup"] = round(
                    analytic[name]["median_ms"] / record["median_ms"], 2)

    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output} ({len(fast)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
