#!/usr/bin/env python
"""Regenerate BENCH_formats.json, the committed format-kernel benchmark record.

Runs the quantization throughput / codec benchmarks in
``benchmarks/test_format_kernels.py`` under pytest-benchmark, distills
the JSON report into a compact per-benchmark summary (median/mean wall
time, rounds), and writes it to ``BENCH_formats.json`` at the repo root.

Two modes:

* fast-path numbers (default) — the codebook kernels as shipped;
* ``--with-analytic`` also measures the analytic reference path
  (``REPRO_NO_CODEBOOK=1``) and records per-benchmark speedup ratios.

Run:  PYTHONPATH=src python tools/bench_report.py [--with-analytic]

Timings are machine-dependent; the committed file records the shape of
the comparison (which kernels are table-driven, relative speedups), not
absolute milliseconds to be matched elsewhere.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[1]
BENCH_FILE = "benchmarks/test_format_kernels.py"
OUTPUT = REPO / "BENCH_formats.json"


def _run_benchmarks(extra_env: dict) -> dict:
    """Run the benchmark module and return pytest-benchmark's JSON report."""
    with tempfile.TemporaryDirectory() as tmp:
        report = pathlib.Path(tmp) / "bench.json"
        env = dict(os.environ, **extra_env)
        env["PYTHONPATH"] = str(REPO / "src")
        cmd = [sys.executable, "-m", "pytest", BENCH_FILE, "-q",
               "--benchmark-only", f"--benchmark-json={report}",
               "--benchmark-warmup=on", "--benchmark-warmup-iterations=2",
               "-p", "no:cacheprovider"]
        proc = subprocess.run(cmd, cwd=REPO, env=env,
                              stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode())
            raise SystemExit(f"benchmark run failed ({proc.returncode})")
        return json.loads(report.read_text())


def _distill(report: dict) -> dict:
    """Keep one small record per benchmark, keyed by its pytest node name."""
    out = {}
    for bench in report["benchmarks"]:
        stats = bench["stats"]
        out[bench["name"]] = {
            "median_ms": round(stats["median"] * 1e3, 4),
            "mean_ms": round(stats["mean"] * 1e3, 4),
            "rounds": stats["rounds"],
        }
    return dict(sorted(out.items()))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--with-analytic", action="store_true",
                        help="also time the analytic path "
                             "(REPRO_NO_CODEBOOK=1) and record speedups")
    parser.add_argument("--output", type=pathlib.Path, default=OUTPUT)
    args = parser.parse_args()

    fast = _distill(_run_benchmarks({}))
    payload = {
        "machine": {
            "python": platform.python_version(),
            "system": f"{platform.system()} {platform.machine()}",
        },
        "benchmarks": fast,
    }
    if args.with_analytic:
        analytic = _distill(_run_benchmarks({"REPRO_NO_CODEBOOK": "1"}))
        for name, record in payload["benchmarks"].items():
            if name in analytic:
                record["analytic_median_ms"] = analytic[name]["median_ms"]
                record["speedup"] = round(
                    analytic[name]["median_ms"] / record["median_ms"], 2)

    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output} ({len(fast)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
