#!/usr/bin/env python
"""Regenerate the committed benchmark records (BENCH_*.json).

Two suites:

* ``--suite formats`` (default) — quantization/codec throughput from
  ``benchmarks/test_format_kernels.py`` -> ``BENCH_formats.json``.
  ``--with-analytic`` also times the analytic reference path
  (``REPRO_NO_CODEBOOK=1``) and records per-benchmark speedup ratios.
* ``--suite decode`` — KV-cached vs naive autoregressive decoding from
  ``benchmarks/test_decode_throughput.py`` -> ``BENCH_decode.json``,
  with a ``speedup`` per cached/naive pair.
* ``--suite resilience`` — the seeded bit-flip fault-injection campaign
  (``repro.resilience``, fast profile, transformer, all five formats at
  8 bits) -> ``BENCH_resilience.json``.  Unlike the timing suites this
  record is fully deterministic — no machine info, no wall clock — so a
  re-run from the warm cell cache is byte-identical.

Run:  PYTHONPATH=src python tools/bench_report.py [--suite decode]

Timings are machine-dependent; the committed files record the shape of
the comparison (which paths are fast, relative speedups), not absolute
milliseconds to be matched elsewhere.  The resilience record is the
exception: it is exactly reproducible.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[1]
SUITES = {
    "formats": ("benchmarks/test_format_kernels.py",
                REPO / "BENCH_formats.json"),
    "decode": ("benchmarks/test_decode_throughput.py",
               REPO / "BENCH_decode.json"),
    "resilience": (None, REPO / "BENCH_resilience.json"),
}

#: The committed resilience campaign: every registry format at 8 bits,
#: single-flip field cells plus one BER cell, fast-profile transformer.
RESILIENCE_CONFIG = {
    "profile": "fast", "models": ("transformer",), "bits": 8,
    "formats": ("float", "bfp", "uniform", "posit", "adaptivfloat"),
    "fields": ("any", "sign", "exponent", "mantissa", "exp_bias"),
    "ber": (0.001,), "n_flips": 1, "trials": 12, "seed": 0,
}


def _run_resilience() -> dict:
    """Run the campaign in-process and return its (deterministic) grid."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.resilience import campaign
    return campaign.run(**RESILIENCE_CONFIG)


def _run_benchmarks(bench_file: str, extra_env: dict) -> dict:
    """Run the benchmark module and return pytest-benchmark's JSON report."""
    with tempfile.TemporaryDirectory() as tmp:
        report = pathlib.Path(tmp) / "bench.json"
        env = dict(os.environ, **extra_env)
        env["PYTHONPATH"] = str(REPO / "src")
        cmd = [sys.executable, "-m", "pytest", bench_file, "-q",
               "--benchmark-only", f"--benchmark-json={report}",
               "--benchmark-warmup=on", "--benchmark-warmup-iterations=2",
               "-p", "no:cacheprovider"]
        proc = subprocess.run(cmd, cwd=REPO, env=env,
                              stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode())
            raise SystemExit(f"benchmark run failed ({proc.returncode})")
        return json.loads(report.read_text())


def _distill(report: dict) -> dict:
    """Keep one small record per benchmark, keyed by its pytest node name."""
    out = {}
    for bench in report["benchmarks"]:
        stats = bench["stats"]
        out[bench["name"]] = {
            "median_ms": round(stats["median"] * 1e3, 4),
            "mean_ms": round(stats["mean"] * 1e3, 4),
            "rounds": stats["rounds"],
        }
    return dict(sorted(out.items()))


def _pair_cached_naive(benchmarks: dict) -> None:
    """Fold ``name[naive]`` records into ``name[cached]`` as speedups."""
    for name in list(benchmarks):
        if not name.endswith("[cached]"):
            continue
        naive = name[: -len("[cached]")] + "[naive]"
        if naive in benchmarks:
            record = benchmarks[name]
            record["naive_median_ms"] = benchmarks[naive]["median_ms"]
            record["speedup"] = round(
                benchmarks[naive]["median_ms"] / record["median_ms"], 2)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES),
                        default="formats")
    parser.add_argument("--with-analytic", action="store_true",
                        help="formats suite: also time the analytic path "
                             "(REPRO_NO_CODEBOOK=1) and record speedups")
    parser.add_argument("--output", type=pathlib.Path, default=None)
    args = parser.parse_args()

    bench_file, default_output = SUITES[args.suite]
    output = args.output or default_output
    if args.suite == "resilience":
        payload = _run_resilience()
        output.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")
        print(f"wrote {output} "
              f"({len(payload['models'])} model(s), "
              f"{len(RESILIENCE_CONFIG['formats'])} formats)")
        return 0
    fast = _distill(_run_benchmarks(bench_file, {}))
    payload = {
        "machine": {
            "python": platform.python_version(),
            "system": f"{platform.system()} {platform.machine()}",
        },
        "benchmarks": fast,
    }
    if args.suite == "decode":
        _pair_cached_naive(payload["benchmarks"])
    if args.with_analytic and args.suite == "formats":
        analytic = _distill(_run_benchmarks(bench_file,
                                            {"REPRO_NO_CODEBOOK": "1"}))
        for name, record in payload["benchmarks"].items():
            if name in analytic:
                record["analytic_median_ms"] = analytic[name]["median_ms"]
                record["speedup"] = round(
                    analytic[name]["median_ms"] / record["median_ms"], 2)

    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output} ({len(fast)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
