"""Benchmark/regeneration of paper Table 1 (models under evaluation)."""

from repro.experiments import table1_models


def test_table1_models(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: table1_models.run(profile="fast"), rounds=1, iterations=1)
    report_sink("table1_models", table1_models.render(result))
    rows = {r["model"]: r for r in result["rows"]}
    # Shape: the sequence models span at least the CNN's weight range
    # (paper Table 1 column 6; the paper's 93M transformer reaches +-20,
    # which our scaled-down model emulates via Fig. 1's calibrated
    # distributions rather than its own trained range).
    span = {m: max(abs(r["w_min"]), r["w_max"]) for m, r in rows.items()}
    assert span["seq2seq"] > span["resnet"] * 0.9
    assert span["transformer"] > span["resnet"] * 0.7
    # All three models must be usefully trained (far above chance).
    assert rows["transformer"]["fp32"] > 50.0    # BLEU
    assert rows["seq2seq"]["fp32"] < 50.0        # WER
    assert rows["resnet"]["fp32"] > 50.0         # Top-1
