"""Benchmark/regeneration of paper Figure 7 (PE energy & perf/area sweep)."""

import pytest

from repro.experiments import fig7_pe_sweep


def test_fig7_pe_sweep(benchmark, report_sink):
    result = benchmark.pedantic(fig7_pe_sweep.run, rounds=3, iterations=1)
    report_sink("fig7_pe_sweep", fig7_pe_sweep.render(result))

    # Every modeled point lands within the calibration band of the paper.
    for point in result["points"]:
        assert point["energy_fj_per_op"] == pytest.approx(
            point["paper_energy"], rel=0.15), point
        assert point["tops_per_mm2"] == pytest.approx(
            point["paper_tops_mm2"], rel=0.25), point

    # Headline ratios: HFINT energy ratio shrinks 0.97x -> 0.90x with
    # growing size; INT always wins perf/area by 1.04x-1.21x-ish.
    r_small = result["ratios"]["4b_K4"]
    r_large = result["ratios"]["8b_K16"]
    assert r_large["hfint_over_int_energy"] < r_small["hfint_over_int_energy"] < 1.0
    for ratios in result["ratios"].values():
        assert 1.0 < ratios["int_over_hfint_perf_area"] < 1.35
