"""Benchmark/regeneration of the design-choice ablations (DESIGN.md §7)."""

from repro.experiments import ablations


def test_ablations(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: ablations.run(profile="fast"), rounds=1, iterations=1)
    report_sink("ablations", ablations.render(result))

    # A: the adaptive exp_bias is what rescues low-bit accuracy — at
    # 4-bit the same geometry with a fixed IEEE bias collapses.
    assert result["adaptivity"][4]["adaptivfloat"] \
        > result["adaptivity"][4]["float"] + 10.0

    # B: per-channel granularity is a wash on homogeneous layers — it
    # refines small rows but clamps each row's maxima harder (REPORT.md
    # finding); require the two within 25% of each other.
    for stats in result["granularity"].values():
        ratio = stats["per_channel"] / stats["per_layer"]
        assert 0.75 < ratio < 1.25, stats

    # C: deterministic nearest rounding beats stochastic on RMS.
    for stats in result["round_modes"].values():
        assert stats["nearest-even"] <= stats["stochastic"]

    # D: finer BFP blocks help, but AdaptivFloat still wins at 4-bit.
    for bits, stats in result["bfp_blocks"].items():
        assert stats["block-16"] <= stats["whole-tensor"]
    assert result["bfp_blocks"][4]["adaptivfloat"] \
        < result["bfp_blocks"][4]["whole-tensor"]
