"""Serving-throughput benchmarks: micro-batched vs serial request paths.

``tools/bench_report.py --suite serve`` commits the full acceptance
workload (16 concurrent clients, 64 requests, >= 3x gate) into
``BENCH_serve.json``.  This module is the CI-sized companion: the
speed-gate test at the bottom runs under ``--benchmark-disable`` in the
``serve-smoke`` job and trips if micro-batching stops clearing 2x over
the serial reference at reduced concurrency.
"""

import pytest

from repro.serve import ModelPool
from repro.serve.bench import (build_requests, check_equivalence,
                               run_serve_benchmark)
from repro.serve.batching import serial_reference

CONCURRENCY = 16
NUM_REQUESTS = 32
MAX_LEN = 24


@pytest.fixture(scope="module")
def warm_pool():
    pool = ModelPool()
    pool.get("transformer")
    return pool


@pytest.fixture(scope="module")
def workload():
    return build_requests("transformer", NUM_REQUESTS, seed=0,
                          max_len=MAX_LEN)


def test_serial_reference(benchmark, warm_pool, workload):
    entry = warm_pool.get("transformer")
    results = benchmark(serial_reference, entry, workload)
    assert len(results) == NUM_REQUESTS


def test_batched_serving(benchmark, warm_pool, workload):
    from repro.serve.bench import _submit_all
    from repro.serve.engine import InferenceServer

    def run():
        server = InferenceServer(warm_pool, max_batch=16, max_wait_ms=5.0)
        with server:
            results = _submit_all(server, workload, CONCURRENCY)
            server.drain()
        return results

    results = benchmark(run)
    assert len(results) == NUM_REQUESTS


def test_serve_speedup_gate():
    """CI tripwire (runs under --benchmark-disable): micro-batched
    serving must stay >= 2x the serial reference at concurrency 16 and
    return the same tokens for every request (BLAS path)."""
    record = run_serve_benchmark(
        model="transformer", concurrency=CONCURRENCY,
        num_requests=NUM_REQUESTS, max_batch=16, max_wait_ms=5.0,
        seed=0, max_len=MAX_LEN, repeats=2)
    assert record["blas_token_match_rate"] == 1.0, record
    assert record["speedup"] >= 2.0, (
        f"micro-batching speedup regressed: {record['speedup']:.2f}x")


def test_obs_overhead_gate():
    """CI tripwire: the enabled metrics registry must cost < 2% p50 on
    the serve micro-benchmark vs the disabled (branch-only) path."""
    from repro.serve.bench import measure_obs_overhead

    record = measure_obs_overhead(
        model="transformer", concurrency=8, num_requests=32,
        max_batch=16, max_wait_ms=5.0, seed=0, max_len=MAX_LEN, repeats=3)
    assert record["p50_overhead"] < 0.02, (
        f"obs instrumentation overhead regressed: "
        f"{record['p50_overhead']:.3%} of p50 "
        f"({record['obs_cost_per_request_us']:.1f}us/request vs p50 "
        f"{record['p50_ms']:.2f}ms)")


def test_serve_token_identity_gate():
    """Batched padded decode must be token-identical to serial decode
    under deterministic_matmul for every model family."""
    verdicts = check_equivalence(num_requests=8, concurrency=4,
                                 max_batch=4, seed=0, max_len=12)
    assert all(verdicts.values()), verdicts
