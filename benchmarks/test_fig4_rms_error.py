"""Benchmark/regeneration of paper Figure 4 (per-layer RMS error boxplots)."""

from repro.experiments import fig4_rms_error


def test_fig4_rms_error(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: fig4_rms_error.run(profile="fast"), rounds=1, iterations=1)
    report_sink("fig4_rms_error", fig4_rms_error.render(result))
    # Shape (paper Section 4.1): AdaptivFloat has the lowest mean RMS
    # error on the wide-distribution sequence models; on the narrow-
    # distribution CNN the uniform grid is competitive at our scale
    # (paper's ResNet-50 has far more cross-layer scale diversity), so
    # there we require AdaptivFloat to beat every *non-uniform* format
    # and stay within 15% of the best (EXPERIMENTS.md deviation note).
    for model, per_bits in result["models"].items():
        for bits, per_fmt in per_bits.items():
            means = {fmt: p["stats"]["mean"] for fmt, p in per_fmt.items()}
            best = min(means, key=means.get)
            if model in ("transformer", "seq2seq") and int(bits) <= 4:
                assert best == "adaptivfloat", (model, bits, means)
            else:
                assert means["adaptivfloat"] <= 1.4 * means[best], \
                    (model, bits, means)
            for rival in ("float", "posit", "bfp"):
                assert means["adaptivfloat"] < means[rival], \
                    (model, bits, rival, means)
