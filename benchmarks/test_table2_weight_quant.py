"""Benchmark/regeneration of paper Table 2 (weight compression, PTQ/QAR).

Runs the scaled-down ('fast' profile) grid over {8, 6, 4} bits x five
formats x three models and checks the paper's qualitative shape:
everything is fine at 8-bit, and at 4-bit AdaptivFloat is the most
resilient format while the non-adaptive float/posit collapse on the
wide-distribution Transformer.
"""

from repro.experiments import table2_weight_quant

_BITS = (8, 6, 4)


def _score(payload, bits, fmt, key):
    return payload["grid"][bits][fmt][key]


def test_table2_weight_quant(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: table2_weight_quant.run(profile="fast", bits_list=_BITS),
        rounds=1, iterations=1)
    report_sink("table2_weight_quant", table2_weight_quant.render(result))

    transformer = result["models"]["transformer"]
    fp32 = transformer["fp32"]
    # 8-bit: every format is close to FP32 (within 15 BLEU).
    for fmt in result["formats"]:
        assert _score(transformer, 8, fmt, "ptq") > fp32 - 15.0, fmt
    # 4-bit: non-adaptive float and posit collapse on the Transformer...
    assert _score(transformer, 4, "float", "ptq") < 0.3 * fp32
    assert _score(transformer, 4, "posit", "ptq") < 0.3 * fp32
    # ...while AdaptivFloat stays the best format (PTQ and QAR).
    for key in ("ptq", "qar"):
        scores = {fmt: _score(transformer, 4, fmt, key)
                  for fmt in result["formats"]}
        assert max(scores, key=scores.get) == "adaptivfloat", (key, scores)
    # QAR recovers accuracy over PTQ for 4-bit AdaptivFloat.
    assert (_score(transformer, 4, "adaptivfloat", "qar")
            >= _score(transformer, 4, "adaptivfloat", "ptq") - 1.0)

    # seq2seq (WER: lower is better): AdaptivFloat best at 4-bit QAR.
    seq2seq = result["models"]["seq2seq"]
    wer = {fmt: _score(seq2seq, 4, fmt, "qar") for fmt in result["formats"]}
    assert min(wer, key=wer.get) == "adaptivfloat", wer

    # resnet: modest degradation for AdaptivFloat at 4-bit after QAR
    # (paper: only 1.1 points below FP32).
    resnet = result["models"]["resnet"]
    assert _score(resnet, 4, "adaptivfloat", "qar") > resnet["fp32"] - 20.0
