"""Fault-injection trial-loop throughput: naive reference vs TrialEngine.

``repro.resilience.campaign.measure_injection_throughput`` times the
machinery the engine accelerates — fault synthesis, installing the
corrupted tensor, and the detection scan — with the scoring work (probe
forward + task evaluation, identical in both paths) excluded.  The
benchmark entries record both paths; the gate test at the bottom also
runs in CI under ``--benchmark-disable`` as a regression tripwire: the
engine loop must stay at least 3x the naive loop's trials/sec *and*
install byte-identical faulty tensors (per-trial checksums).
"""

import pytest

from repro.experiments.common import trained_model
from repro.resilience.campaign import measure_injection_throughput

TRIALS = 64
GATE_TRIALS = 96
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module", autouse=True)
def tiny_checkpoint():
    # Warm the FP32 checkpoint so it never trains inside a timed region.
    trained_model("transformer", "tiny")


@pytest.mark.parametrize("path", ["engine", "naive"])
@pytest.mark.parametrize("fmt,field", [("adaptivfloat", "any"),
                                       ("float", "exponent"),
                                       ("adaptivfloat", "exp_bias")])
def test_trial_loop(benchmark, path, fmt, field):
    holder = {}

    def run():
        holder["result"] = measure_injection_throughput(
            profile="tiny", format_name=fmt, field=field, trials=TRIALS,
            seed=0, engine=(path == "engine"))

    benchmark(run)
    result = holder["result"]
    assert result["trials"] == TRIALS
    assert result["flips_total"] >= TRIALS  # every trial flipped something
    if result["trials_per_sec"]:
        benchmark.extra_info["trials_per_sec"] = round(
            result["trials_per_sec"], 1)


def test_trial_loop_speedup_gate():
    """CI tripwire (runs under --benchmark-disable): the engine trial
    loop must be >=3x the naive loop and install identical faults."""
    naive = measure_injection_throughput(profile="tiny", trials=GATE_TRIALS,
                                         seed=0, engine=False,
                                         checksums=True)
    engine = measure_injection_throughput(profile="tiny", trials=GATE_TRIALS,
                                          seed=0, engine=True,
                                          checksums=True)
    assert engine["checksums"] == naive["checksums"]
    assert engine["flips_total"] == naive["flips_total"]
    assert engine["findings_total"] == naive["findings_total"]
    speedup = engine["trials_per_sec"] / naive["trials_per_sec"]
    assert speedup >= MIN_SPEEDUP, (
        f"trial-engine speedup regressed: {speedup:.2f}x "
        f"(engine {engine['trials_per_sec']:.0f}/s vs "
        f"naive {naive['trials_per_sec']:.0f}/s)")
