"""Benchmark/regeneration of paper Figure 1 (weight ranges, CNN vs NLP)."""

from repro.experiments import fig1_weight_ranges


def test_fig1_weight_ranges(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: fig1_weight_ranges.run(profile="fast"),
        rounds=1, iterations=1)
    report_sink("fig1_weight_ranges", fig1_weight_ranges.render(result))
    # Shape check: NLP models span >10x the CNN range (the paper's claim).
    assert result["nlp_over_cnn_span"] > 10.0
