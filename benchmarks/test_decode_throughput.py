"""Decode-throughput benchmarks: KV-cached vs naive autoregressive paths.

The cached/naive pairing is what ``tools/bench_report.py --suite decode``
distills into ``BENCH_decode.json`` (per-pair speedups).  The speed-gate
test at the bottom also runs in CI under ``--benchmark-disable`` as a
regression tripwire: greedy decode must stay at least 2x faster than the
naive path.
"""

import time

import numpy as np
import pytest

from repro.nn.models.seq2seq import Seq2Seq, Seq2SeqConfig
from repro.nn.models.transformer import Transformer, TransformerConfig

MAX_LEN = 64
BEAM_SIZE = 4


@pytest.fixture(scope="module")
def transformer_setup():
    # seed 0 decodes to full max_len (no early EOS) — the regime the
    # paper's Table 1-3 evaluation loops actually spend their time in
    rng = np.random.default_rng(0)
    model = Transformer(TransformerConfig(max_len=MAX_LEN), rng=rng)
    model.eval()
    src = rng.integers(3, 64, size=(8, 24))
    return model, src


@pytest.fixture(scope="module")
def seq2seq_setup():
    rng = np.random.default_rng(0)
    cfg = Seq2SeqConfig(max_len=32)
    model = Seq2Seq(cfg, rng=rng)
    model.eval()
    frames = rng.standard_normal((4, 16, cfg.input_dim)).astype(np.float32)
    return model, frames


@pytest.mark.parametrize("path", ["cached", "naive"])
def test_transformer_greedy(benchmark, transformer_setup, path):
    model, src = transformer_setup
    out = benchmark(model.greedy_decode, src, use_cache=(path == "cached"))
    assert out.shape[0] == src.shape[0]


@pytest.mark.parametrize("path", ["cached", "naive"])
def test_transformer_beam(benchmark, transformer_setup, path):
    model, src = transformer_setup
    out = benchmark(model.beam_decode, src[:1], beam_size=BEAM_SIZE,
                    use_cache=(path == "cached"))
    assert out.shape[0] == 1


@pytest.mark.parametrize("path", ["cached", "naive"])
def test_seq2seq_beam(benchmark, seq2seq_setup, path):
    model, frames = seq2seq_setup
    out = benchmark(model.beam_decode, frames[:2], beam_size=BEAM_SIZE,
                    use_cache=(path == "cached"))
    assert out.shape[0] == 2


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_greedy_speedup_gate(transformer_setup):
    """CI tripwire (runs under --benchmark-disable): the cached greedy
    path must be >=2x the naive path and emit the same token ids."""
    model, src = transformer_setup
    t_naive, ids_naive = _best_of(
        lambda: model.greedy_decode(src, use_cache=False), repeats=2)
    t_cached, ids_cached = _best_of(
        lambda: model.greedy_decode(src, use_cache=True), repeats=3)
    np.testing.assert_array_equal(ids_naive, ids_cached)
    speedup = t_naive / t_cached
    assert speedup >= 2.0, f"greedy KV-cache speedup regressed: {speedup:.2f}x"
