"""Benchmark/regeneration of paper Table 4 (accelerator system PPA)."""

import pytest

from repro.experiments import table4_accelerator


def test_table4_accelerator(benchmark, report_sink):
    result = benchmark.pedantic(table4_accelerator.run, rounds=3, iterations=1)
    report_sink("table4_accelerator", table4_accelerator.render(result))

    rows = result["rows"]
    # Latency: both systems identical, matching the paper's 81.2 us.
    assert rows["int"]["runtime_us"] == rows["hfint"]["runtime_us"]
    assert rows["int"]["runtime_us"] == pytest.approx(81.2, rel=0.01)
    # Power: within ~10% of the paper's absolute numbers, and the HFINT
    # system cheaper (paper ratio 0.92x; direction must hold).
    assert rows["int"]["power_mw"] == pytest.approx(61.38, rel=0.10)
    assert rows["hfint"]["power_mw"] == pytest.approx(56.22, rel=0.10)
    assert result["ratios"]["power"] < 1.0
    # Area: HFINT larger (paper ratio 1.14x; our component model yields a
    # smaller but same-direction gap - see EXPERIMENTS.md).
    assert result["ratios"]["area"] > 1.0
