"""Benchmark/regeneration of paper Table 3 (weight + activation quantization).

Scaled-down grid over {8, 4} bits x five formats x three models with
calibrated activation grids + QAR.  Shape checks: W8/A8 AdaptivFloat is
near FP32 on every model; at W4/A4 the CNN survives AdaptivFloat
quantization far better than the attention models degrade (paper
Section 4.3).
"""

from repro.experiments import table3_weight_act_quant

_BITS = (8, 4)


def test_table3_weight_act_quant(benchmark, report_sink):
    result = benchmark.pedantic(
        lambda: table3_weight_act_quant.run(profile="fast", bits_list=_BITS),
        rounds=1, iterations=1)
    report_sink("table3_weight_act_quant",
                table3_weight_act_quant.render(result))

    for name, payload in result["models"].items():
        fp32 = payload["fp32"]
        w8a8 = payload["grid"][8]["adaptivfloat"]
        if payload["higher_is_better"]:
            assert w8a8 > fp32 - 12.0, (name, w8a8, fp32)
        else:
            assert w8a8 < fp32 + 12.0, (name, w8a8, fp32)

    # W4/A4: the CNN retains most of its accuracy under AdaptivFloat
    # (paper: 72.4 vs 76.2 FP32) - relative drop under ~40%.
    resnet = result["models"]["resnet"]
    assert resnet["grid"][4]["adaptivfloat"] > 0.6 * resnet["fp32"]

    # W4/A4 AdaptivFloat is still the best (or tied-best) format on the
    # wide-distribution transformer.
    transformer = result["models"]["transformer"]
    scores = transformer["grid"][4]
    best = max(scores, key=scores.get)
    assert scores["adaptivfloat"] >= scores[best] - 1.0, scores
