"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure (scaled down to the
``fast`` profile where training is involved) and writes the rendered
ASCII table under ``artifacts/reports/`` in addition to printing it, so
``pytest benchmarks/ --benchmark-only`` leaves the full set of
reproduced tables on disk.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cache import cache_dir


def pytest_configure(config):
    (cache_dir() / "reports").mkdir(parents=True, exist_ok=True)


@pytest.fixture
def report_sink():
    """Write a rendered table to artifacts/reports/<name>.txt and echo it."""

    def _sink(name: str, text: str) -> pathlib.Path:
        path = cache_dir() / "reports" / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")
        return path

    return _sink
