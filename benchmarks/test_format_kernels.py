"""Throughput microbenchmarks of the quantization kernels themselves.

Not a paper artifact, but the number that matters to a downstream user
adopting the library: how fast each format quantizes a million-element
weight tensor, and how fast the bit-accurate HFINT datapath simulates.
"""

import numpy as np
import pytest

from repro.formats import AdaptivFloat, make_quantizer
from repro.hardware import HFIntVectorMac

_N = 1_000_000


@pytest.fixture(scope="module")
def tensor():
    return np.random.default_rng(0).standard_normal(_N) * 0.1


@pytest.mark.parametrize("fmt", ["adaptivfloat", "float", "bfp", "uniform",
                                 "posit", "fixedpoint"])
def test_quantize_throughput(benchmark, tensor, fmt):
    quantizer = make_quantizer(fmt, 8)
    result = benchmark(quantizer.quantize, tensor)
    assert result.shape == tensor.shape


def test_adaptivfloat_encode_decode_throughput(benchmark, tensor):
    fmt = AdaptivFloat(8, 3)
    params = fmt.fit(tensor)
    values = fmt.quantize_with_params(tensor, params)

    def roundtrip():
        words = fmt.encode(values, params["exp_bias"])
        return fmt.decode(words, params["exp_bias"])

    out = benchmark(roundtrip)
    np.testing.assert_allclose(out, values)


def test_hfint_datapath_sim_throughput(benchmark):
    rng = np.random.default_rng(1)
    mac = HFIntVectorMac(bits=8, exp_bits=3)
    fmt = AdaptivFloat(8, 3)
    w = rng.normal(size=(64, 256)) * 0.2
    a = rng.normal(size=256)
    bw = int(fmt.fit(w)["exp_bias"])
    ba = int(fmt.fit(a)["exp_bias"])
    w_words = fmt.encode(fmt.quantize_with_params(w, {"exp_bias": bw}), bw)
    a_words = fmt.encode(fmt.quantize_with_params(a, {"exp_bias": ba}), ba)
    acc = benchmark(mac.accumulate, w_words, a_words)
    assert acc.shape == (64,)
