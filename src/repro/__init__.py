"""AdaptivFloat: algorithm-hardware co-design of adaptive floating-point
encodings for resilient deep learning inference (DAC 2020) — a full
from-scratch reproduction.

Subpackages
-----------
``repro.formats``
    AdaptivFloat (paper Algorithm 1) and the baseline number formats
    (IEEE-like float, block floating point, uniform/integer, posit,
    fixed point), with bit-exact encode/decode and bit packing.
``repro.nn``
    A NumPy autodiff NN framework: layers, the paper's three model
    families, optimizers, and fake-quantization for PTQ/QAR.
``repro.data`` / ``repro.metrics``
    Synthetic substitutes for WMT'17 / LibriSpeech / ImageNet and the
    BLEU / WER / Top-1 / RMS-error metrics.
``repro.hardware``
    The INT and HFINT processing elements: calibrated energy/area
    models, bit-accurate datapath simulation, and the 4-PE accelerator.
``repro.experiments``
    One driver per paper table/figure.
``repro.resilience``
    Seeded bit-flip fault injection over packed bitstreams and the
    campaign driver scoring SDC rate, drift, and sanitizer coverage.
``repro.serve``
    Dynamic micro-batching inference serving: a concurrent request
    server with a bounded queue, padded micro-batch coalescing over the
    KV-cached decode paths, and a shared warm-model pool.
``repro.obs``
    The unified telemetry spine: thread-safe metric registry, the
    injectable monotonic clock, trace spans, Prometheus/JSON exposition
    and the optional HTTP ``/metrics`` endpoint.

Quick start::

    import numpy as np
    from repro.formats import AdaptivFloat

    w = np.random.randn(64, 64).astype(np.float32)
    q = AdaptivFloat(bits=8, exp_bits=3)
    w_q = q.quantize(w)
"""

from . import (analysis, data, formats, hardware, metrics, nn, obs,
               resilience, rng, serve)
from .formats import AdaptivFloat, adaptivfloat_quantize, make_quantizer

__version__ = "1.0.0"

__all__ = [
    "AdaptivFloat", "adaptivfloat_quantize", "analysis", "data", "formats",
    "hardware", "make_quantizer", "metrics", "nn", "obs", "resilience",
    "rng", "serve", "__version__",
]
