"""Unified observability spine (docs/observability.md).

Every measured claim this repo makes — serving latency under faults,
scrub overhead, cache hit rates, campaign wall time — lands on the same
instruments:

* :mod:`~repro.obs.registry` — thread-safe labeled ``Counter`` /
  ``Gauge`` / ``Histogram`` families in a lock-striped
  :class:`Registry`; near-zero cost when disabled.
* :mod:`~repro.obs.clock` — the single injectable monotonic clock all
  serving/resilience timing reads (no more mixed
  ``perf_counter``/``monotonic`` domains).
* :mod:`~repro.obs.trace` — lightweight spans with per-request trace
  ids riding through the serving engine.
* :mod:`~repro.obs.export` — Prometheus text-format and JSON
  exposition plus a validating parser.
* :mod:`~repro.obs.http` — an optional stdlib HTTP endpoint
  (``/metrics``) for scrapers.

This module hosts the process-default :data:`REGISTRY` and
:data:`TRACER`; the module-level helpers (:func:`counter`,
:func:`snapshot`, :func:`render_prometheus`, ...) all act on them.
Instrumented subsystems (``repro.serve``, ``repro.resilience``,
``repro.formats``, ``repro.nn.quantize``) create their families against
the default registry at import time, so ``repro.obs.snapshot()``
reaches every counter surface in the process with one call.  Set the
``REPRO_OBS=0`` environment variable (or call :func:`set_enabled`) to
disable recording.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Dict, Iterator, Sequence

from . import clock
from .clock import ManualClock
from .export import parse_prometheus, to_json, to_prometheus
from .http import PROMETHEUS_CONTENT_TYPE, MetricsServer
from .registry import (LATENCY_BUCKETS, SIZE_BUCKETS, WIDE_SECONDS_BUCKETS,
                       Counter, Gauge, Histogram, MetricError, Registry)
from .trace import Span, Tracer, new_trace_id

__all__ = [
    "Counter", "Gauge", "Histogram", "LATENCY_BUCKETS", "ManualClock",
    "MetricError", "MetricsServer", "PROMETHEUS_CONTENT_TYPE", "REGISTRY",
    "Registry", "SIZE_BUCKETS",
    "Span", "TRACER", "Tracer", "WIDE_SECONDS_BUCKETS", "clock", "counter",
    "disabled", "gauge", "histogram", "new_trace_id", "parse_prometheus",
    "register_collector", "render_json", "render_prometheus", "set_enabled",
    "snapshot", "to_json", "to_prometheus",
]

#: The process-default registry every in-repo instrument records into.
REGISTRY = Registry(enabled=os.environ.get("REPRO_OBS", "1") != "0")

#: The process-default tracer (spans feed ``repro_span_seconds``).
TRACER = Tracer(REGISTRY)


def counter(name: str, help: str,
            labelnames: Sequence[str] = ()) -> Counter:
    """A counter family on the default registry (idempotent)."""
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
    """A gauge family on the default registry (idempotent)."""
    return REGISTRY.gauge(name, help, labelnames)


def histogram(name: str, help: str, labelnames: Sequence[str] = (),
              buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
    """A histogram family on the default registry (idempotent)."""
    return REGISTRY.histogram(name, help, labelnames, buckets)


def register_collector(collector) -> None:
    """Hook a pull collector into the default registry."""
    REGISTRY.register_collector(collector)


def snapshot() -> Dict[str, Any]:
    """JSON-safe dump of every metric family in the default registry."""
    return REGISTRY.snapshot()


def render_prometheus() -> str:
    """The default registry in Prometheus text exposition format."""
    return to_prometheus(REGISTRY)


def render_json() -> str:
    """The default registry as a JSON document."""
    return to_json(REGISTRY)


def set_enabled(enabled: bool) -> None:
    """Turn the default registry's record path on or off."""
    if enabled:
        REGISTRY.enable()
    else:
        REGISTRY.disable()


@contextlib.contextmanager
def disabled() -> Iterator[None]:
    """Temporarily disable the default registry (overhead benchmarks)."""
    previous = REGISTRY.enabled
    REGISTRY.disable()
    try:
        yield
    finally:
        if previous:
            REGISTRY.enable()
