"""Thread-safe labeled metrics: counters, gauges, histograms.

One :class:`Registry` holds every metric family the process exposes.
The design targets the serving hot path:

* **Lock striping** — each family is pinned to one of the registry's
  lock stripes by a CRC of its name, so concurrent mutation of
  unrelated metrics never contends on a single global lock while a
  :meth:`Registry.snapshot` still observes each family consistently.
* **Near-zero disabled path** — every mutation starts with one
  attribute read and a branch on the registry's ``enabled`` flag; with
  the registry disabled no lock is taken and no state changes, so
  instrumented code costs a few dozen nanoseconds per call site
  (gated <2% on the serve benchmark by
  ``benchmarks/test_serve_throughput.py``).
* **Fixed bucket schemas** — histograms declare their bucket bounds at
  family creation (:data:`LATENCY_BUCKETS` / :data:`SIZE_BUCKETS` /
  :data:`WIDE_SECONDS_BUCKETS` or custom), so two processes exporting
  the same family are always aggregatable.
* **Pull collectors** — :meth:`Registry.register_collector` hooks run
  before every snapshot/export and copy external counter surfaces
  (codebook LRU, decode-LUT cache, ...) into gauges, which is how the
  legacy ad-hoc stats dicts stay reachable from one
  ``repro.obs.snapshot()``.

Family creation is idempotent: asking for an existing name with the
same type/labels/buckets returns the existing family; a conflicting
re-declaration raises :class:`MetricError`.
"""

from __future__ import annotations

import bisect
import re
import threading
import zlib
from collections import OrderedDict
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricError", "Registry",
    "LATENCY_BUCKETS", "SIZE_BUCKETS", "WIDE_SECONDS_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Sub-millisecond to 10 s: request latency, queue wait, scrub passes.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Powers of two for batch sizes and other small cardinalities.
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Seconds up to minutes: campaign cells, model builds.
WIDE_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0)


class MetricError(ValueError):
    """Bad metric/label name, negative counter step, or a family
    re-declared with a conflicting type/label/bucket signature."""


class _Child:
    """One (family, label-values) time series."""

    __slots__ = ("_registry", "_lock", "label_values")

    def __init__(self, family: "_Family",
                 label_values: Tuple[str, ...]) -> None:
        self._registry = family._registry
        self._lock = family._lock
        self.label_values = label_values


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, family: "_Family",
                 label_values: Tuple[str, ...]) -> None:
        super().__init__(family, label_values)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry._enabled:
            return
        if amount < 0:
            raise MetricError(f"counters only go up (inc {amount})")
        with self._lock:
            self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, family: "_Family",
                 label_values: Tuple[str, ...]) -> None:
        super().__init__(family, label_values)
        self.value = 0.0

    def set(self, value: float) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self.value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (high-water mark)."""
        if not self._registry._enabled:
            return
        with self._lock:
            if value > self.value:
                self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild(_Child):
    __slots__ = ("_uppers", "counts", "sum", "count")

    def __init__(self, family: "Histogram",
                 label_values: Tuple[str, ...]) -> None:
        super().__init__(family, label_values)
        self._uppers = family.buckets
        self.counts = [0] * (len(self._uppers) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._registry._enabled:
            return
        idx = bisect.bisect_left(self._uppers, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


class _Family:
    """Base class for a named metric family holding labeled children."""

    kind = "untyped"
    _child_cls: type = _Child

    def __init__(self, registry: "Registry", name: str, help: str,
                 labelnames: Tuple[str, ...]) -> None:
        self._registry = registry
        self._lock = registry._stripe(name)
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: "OrderedDict[Tuple[str, ...], _Child]" = \
            OrderedDict()
        if not labelnames:
            self._default: Optional[_Child] = self._child_for(())
        else:
            self._default = None

    def _child_for(self, values: Tuple[str, ...]) -> _Child:
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._child_cls(self, values)
                self._children[values] = child
            return child

    def labels(self, **label_values: str) -> Any:
        """The child time series for these label values (created lazily)."""
        if tuple(sorted(label_values)) != tuple(sorted(self.labelnames)):
            raise MetricError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(label_values))}")
        values = tuple(str(label_values[name]) for name in self.labelnames)
        return self._child_for(values)

    def children(self) -> List[Tuple[Dict[str, str], _Child]]:
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.labelnames, values)), child)
                for values, child in items]

    def _signature(self) -> Tuple:
        return (self.kind, self.labelnames)

    def _reset(self) -> None:
        with self._lock:
            if self.labelnames:
                self._children.clear()
            else:
                self._children.clear()
                self._default = None
        if not self.labelnames:
            self._default = self._child_for(())

    def to_dict(self) -> Dict[str, Any]:
        samples = []
        for labels, child in self.children():
            samples.append(dict(self._sample_dict(child), labels=labels))
        return {"type": self.kind, "help": self.help,
                "labels": list(self.labelnames), "samples": samples}

    def _sample_dict(self, child: _Child) -> Dict[str, Any]:
        raise NotImplementedError


class Counter(_Family):
    """Monotonically increasing count (resets only with the process)."""

    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        return self._default.value if self._default is not None else 0.0

    def _sample_dict(self, child: _Child) -> Dict[str, Any]:
        return {"value": child.value}


class Gauge(_Family):
    """A value that can go up and down (depths, states, cache sizes)."""

    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._default.set(value)

    def set_max(self, value: float) -> None:
        self._default.set_max(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    @property
    def value(self) -> float:
        return self._default.value if self._default is not None else 0.0

    def _sample_dict(self, child: _Child) -> Dict[str, Any]:
        return {"value": child.value}


class Histogram(_Family):
    """Cumulative-bucket histogram with a fixed bound schema."""

    kind = "histogram"
    _child_cls = _HistogramChild

    def __init__(self, registry: "Registry", name: str, help: str,
                 labelnames: Tuple[str, ...],
                 buckets: Sequence[float]) -> None:
        uppers = tuple(float(b) for b in buckets)
        if not uppers:
            raise MetricError(f"{name}: histogram needs >= 1 bucket bound")
        if any(b >= a for b, a in zip(uppers, uppers[1:])):
            raise MetricError(f"{name}: bucket bounds must increase "
                              f"strictly: {uppers}")
        self.buckets = uppers
        super().__init__(registry, name, help, labelnames)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def _signature(self) -> Tuple:
        return (self.kind, self.labelnames, self.buckets)

    def _sample_dict(self, child: _Child) -> Dict[str, Any]:
        return {"count": child.count, "sum": child.sum,
                "counts": list(child.counts)}

    def to_dict(self) -> Dict[str, Any]:
        out = super().to_dict()
        out["buckets"] = list(self.buckets)
        return out


class Registry:
    """A process's metric families plus pull collectors.

    Parameters
    ----------
    enabled:
        Initial state of the record path.  Disabled registries accept
        every call but mutate nothing (the near-zero path).
    stripes:
        Number of locks families are striped over.
    """

    def __init__(self, enabled: bool = True, stripes: int = 16) -> None:
        if stripes < 1:
            raise MetricError(f"stripes must be >= 1, got {stripes}")
        self._locks = [threading.Lock() for _ in range(stripes)]
        self._meta_lock = threading.Lock()
        self._families: "OrderedDict[str, _Family]" = OrderedDict()
        self._collectors: List[Callable[["Registry"], None]] = []
        self._enabled = bool(enabled)
        self.collector_errors = 0

    # ----------------------------------------------------------- enabling
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # ----------------------------------------------------------- plumbing
    def _stripe(self, name: str) -> threading.Lock:
        return self._locks[zlib.crc32(name.encode()) % len(self._locks)]

    def _family(self, cls: type, name: str, help: str,
                labelnames: Sequence[str],
                **extra: Any) -> _Family:
        if not _NAME_RE.match(name):
            raise MetricError(f"bad metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricError(f"bad label name {label!r} on {name}")
        with self._meta_lock:
            existing = self._families.get(name)
            if existing is not None:
                probe = (cls.kind, labelnames)
                if cls is Histogram:
                    probe = probe + (tuple(float(b)
                                           for b in extra["buckets"]),)
                if existing._signature() != probe:
                    raise MetricError(
                        f"{name} already registered as {existing._signature()}"
                        f", re-declared as {probe}")
                return existing
            family = cls(self, name, help, labelnames, **extra)
            self._families[name] = family
            return family

    # ------------------------------------------------------------ factory
    def counter(self, name: str, help: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._family(Histogram, name, help, labelnames,
                            buckets=buckets)

    # --------------------------------------------------------- collectors
    def register_collector(self,
                           collector: Callable[["Registry"], None]) -> None:
        """Run ``collector(registry)`` before every snapshot/export.

        Collectors copy external counter surfaces into gauges; a raising
        collector is counted (``collector_errors``) and skipped rather
        than breaking the snapshot.
        """
        with self._meta_lock:
            self._collectors.append(collector)

    def run_collectors(self) -> None:
        with self._meta_lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector(self)
            except Exception:
                self.collector_errors += 1

    # ------------------------------------------------------------ reading
    def families(self) -> List[_Family]:
        with self._meta_lock:
            return list(self._families.values())

    def get(self, name: str) -> Optional[_Family]:
        with self._meta_lock:
            return self._families.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every family (collectors run first)."""
        self.run_collectors()
        return {family.name: family.to_dict()
                for family in self.families()}

    def reset(self) -> None:
        """Zero every family's children (tests/benchmarks only)."""
        for family in self.families():
            family._reset()


#: Type accepted wherever a metric value may be read back.
MetricValue = Union[int, float]
