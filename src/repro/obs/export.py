"""Exposition formats: Prometheus text 0.0.4 and JSON, plus a validator.

:func:`to_prometheus` renders a :class:`~repro.obs.registry.Registry`
in the Prometheus text exposition format (``# HELP`` / ``# TYPE`` lines,
cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series for
histograms).  :func:`to_json` is the same data as an indented JSON
document for humans and for embedding in benchmark records.

:func:`parse_prometheus` is a small *validating* parser used by the CI
``obs-smoke`` job and the test suite: it checks metric/label syntax,
requires every sample to belong to a ``# TYPE``-declared family, and
verifies histogram invariants (cumulative non-decreasing buckets, a
``+Inf`` bucket equal to ``_count``).  It is intentionally strict — a
scrape target that fails it would also upset a real Prometheus server.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Optional, Tuple

from .registry import Registry

__all__ = ["parse_prometheus", "to_json", "to_prometheus"]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^ ]+)$")
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(labels: Dict[str, str],
               extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, labels[k]) for k in labels]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def to_prometheus(registry: Registry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    registry.run_collectors()
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.children():
            if family.kind == "histogram":
                cumulative = 0
                for upper, count in zip(family.buckets, child.counts):
                    cumulative += count
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_label_str(labels, ('le', _format_value(upper)))}"
                        f" {cumulative}")
                cumulative += child.counts[-1]
                lines.append(f"{family.name}_bucket"
                             f"{_label_str(labels, ('le', '+Inf'))}"
                             f" {cumulative}")
                lines.append(f"{family.name}_sum{_label_str(labels)}"
                             f" {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{_label_str(labels)}"
                             f" {child.count}")
            else:
                lines.append(f"{family.name}{_label_str(labels)}"
                             f" {_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def to_json(registry: Registry, indent: Optional[int] = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _unescape(value: str) -> str:
    return (value.replace(r"\"", '"').replace(r"\n", "\n")
            .replace(r"\\", "\\"))


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse + validate Prometheus exposition text.

    Returns ``{family: {"type", "help", "samples": [(name, labels,
    value), ...]}}``.  Raises :class:`ValueError` on any syntax or
    consistency violation (see module docstring for what is checked).
    """
    families: Dict[str, Dict[str, Any]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP: {raw!r}")
            families.setdefault(parts[2], {"type": None, "samples": []})[
                "help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
            family = families.setdefault(parts[2],
                                         {"type": None, "samples": []})
            if family["type"] is not None:
                raise ValueError(f"line {lineno}: duplicate TYPE for "
                                 f"{parts[2]}")
            family["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {raw!r}")
        name = match.group("name")
        label_text = match.group("labels") or ""
        labels = {key: _unescape(value)
                  for key, value in _LABEL_PAIR_RE.findall(label_text)}
        # Labels must round-trip: anything the pair regex did not
        # consume is a syntax error (e.g. an unquoted value).
        reassembled = ",".join(f'{k}="{v}"' for k, v
                               in _LABEL_PAIR_RE.findall(label_text))
        stripped = label_text.rstrip(",")
        if stripped and len(reassembled) != len(stripped):
            raise ValueError(f"line {lineno}: malformed labels: {raw!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(f"line {lineno}: unparseable sample value: "
                             f"{raw!r}") from None
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and families.get(trimmed, {}).get("type") == \
                    "histogram":
                base = trimmed
                break
        if base not in families or families[base]["type"] is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no "
                             f"preceding # TYPE")
        families[base]["samples"].append((name, labels, value))

    for fname, family in families.items():
        if family["type"] == "histogram":
            _validate_histogram(fname, family["samples"])
    return families


def _validate_histogram(name: str,
                        samples: List[Tuple[str, Dict[str, str], float]]
                        ) -> None:
    """Check cumulative buckets, +Inf presence, and _count agreement."""
    series: Dict[Tuple[Tuple[str, str], ...], Dict[str, Any]] = {}
    for sample_name, labels, value in samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        entry = series.setdefault(key, {"buckets": [], "count": None})
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                raise ValueError(f"{name}: bucket sample without le label")
            entry["buckets"].append((_parse_value(labels["le"]), value))
        elif sample_name == f"{name}_count":
            entry["count"] = value
    for key, entry in series.items():
        buckets = sorted(entry["buckets"])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f"{name}{dict(key)}: missing +Inf bucket")
        counts = [count for _, count in buckets]
        if any(b > a for b, a in zip(counts, counts[1:])):
            raise ValueError(f"{name}{dict(key)}: buckets not cumulative: "
                             f"{counts}")
        if entry["count"] is not None and entry["count"] != counts[-1]:
            raise ValueError(
                f"{name}{dict(key)}: _count {entry['count']} != +Inf "
                f"bucket {counts[-1]}")
