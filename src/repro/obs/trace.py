"""Lightweight trace spans with propagated per-request trace ids.

A :class:`Span` is one named, timed phase of a request's life (queue
wait, batch execution, total residence).  Spans sharing a ``trace_id``
belong to one request, so the path of any single request through the
serving engine can be reconstructed from the span log.

The tracer is deliberately small: no context propagation machinery, no
sampling — phases in this codebase cross threads with explicit state
(the engine's ``_Pending`` carries its ``trace_id``), so spans are
recorded with explicit start/end timestamps read from the shared
:mod:`repro.obs.clock`.  Every finished span

* observes its duration into the ``repro_span_seconds{name=...}``
  histogram of the tracer's registry (the aggregate view), and
* lands in a bounded ring of recent spans (the per-request view,
  :meth:`Tracer.recent`).

With the registry disabled both effects are skipped, keeping the
disabled serving path at a branch per span.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import os
import threading
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

from . import clock
from .registry import LATENCY_BUCKETS, Registry

__all__ = ["Span", "Tracer", "new_trace_id"]

#: Process-unique prefix so trace ids from different processes (e.g.
#: campaign workers) never collide in a merged log.
_PREFIX = os.urandom(4).hex()
_SEQUENCE = itertools.count(1)


def new_trace_id() -> str:
    """A short process-unique trace id (``<prefix>-<sequence>``)."""
    return f"{_PREFIX}-{next(_SEQUENCE):08x}"


@dataclasses.dataclass(frozen=True)
class Span:
    """One finished, named, timed phase of a trace."""

    name: str
    trace_id: str
    start: float
    end: float
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "trace_id": self.trace_id,
                "start": self.start, "end": self.end,
                "duration_s": self.duration_s, "attrs": dict(self.attrs)}


class Tracer:
    """Span sink: duration histogram + bounded recent-span ring."""

    def __init__(self, registry: Registry, max_spans: int = 512) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._registry = registry
        self._seconds = registry.histogram(
            "repro_span_seconds", "Duration of trace spans by span name.",
            ("name",), buckets=LATENCY_BUCKETS)
        self._lock = threading.Lock()
        self._spans: Deque[Span] = deque(maxlen=max_spans)

    def record(self, name: str, start: float, end: float,
               trace_id: Optional[str] = None,
               **attrs: Any) -> Optional[Span]:
        """Record a finished span from explicit clock readings.

        Returns the :class:`Span`, or ``None`` when the registry is
        disabled (nothing was recorded).
        """
        if not self._registry.enabled:
            return None
        span = Span(name=name, trace_id=trace_id or new_trace_id(),
                    start=start, end=end, attrs=attrs)
        self._seconds.labels(name=name).observe(span.duration_s)
        with self._lock:
            self._spans.append(span)
        return span

    @contextlib.contextmanager
    def span(self, name: str, trace_id: Optional[str] = None,
             **attrs: Any) -> Iterator[Dict[str, Any]]:
        """Context manager timing its body on the obs clock.

        Yields the (mutable) attrs dict so the body can annotate the
        span before it is recorded.
        """
        start = clock.now()
        try:
            yield attrs
        finally:
            self.record(name, start, clock.now(), trace_id=trace_id,
                        **attrs)

    def recent(self, n: Optional[int] = None,
               trace_id: Optional[str] = None) -> List[Span]:
        """The most recent spans, newest last, optionally one trace's."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [span for span in spans if span.trace_id == trace_id]
        if n is not None:
            spans = spans[-n:]
        return spans

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-safe dump of the recent-span ring."""
        return [span.to_dict() for span in self.recent()]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
