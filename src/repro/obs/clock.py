"""The one monotonic clock for serving/resilience timing.

Before this module existed the serving stack mixed two clock domains:
``serve.engine`` stamped request submit times and deadlines with
``time.perf_counter()`` while ``InferenceServer.drain()`` and the
circuit breaker used ``time.monotonic()``.  Both are monotonic, but
their epochs differ, so any absolute timestamp computed in one domain
and compared in the other is garbage — the classic latent bug that only
fires when a refactor moves a deadline check across the boundary.

Every serving/resilience component now reads :func:`now` instead, which
makes the domain single by construction *and* injectable: tests swap in
a :class:`ManualClock` (via :func:`set_source` or the :func:`patched`
context manager) and drive deadline / breaker-dwell arithmetic
deterministically instead of sleeping.

``tests/obs/test_clock.py`` enforces the seam with a source scan: the
serving/resilience modules must not call ``time.monotonic()`` or
``time.perf_counter()`` directly.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterator

__all__ = ["ManualClock", "now", "patched", "reset_source", "set_source"]

#: The active time source.  Defaults to ``time.monotonic`` — the clock
#: the stdlib recommends for interval/deadline arithmetic (unaffected by
#: wall-clock steps, never goes backwards).
_source: Callable[[], float] = time.monotonic


def now() -> float:
    """Seconds on the injected monotonic clock."""
    return _source()


def set_source(source: Callable[[], float]) -> None:
    """Install a replacement time source (e.g. a :class:`ManualClock`)."""
    if not callable(source):
        raise TypeError(f"clock source must be callable, got {source!r}")
    global _source
    _source = source


def reset_source() -> None:
    """Restore the default ``time.monotonic`` source."""
    global _source
    _source = time.monotonic


@contextlib.contextmanager
def patched(source: Callable[[], float]) -> Iterator[Callable[[], float]]:
    """Temporarily swap the time source; always restores the previous one."""
    global _source
    previous = _source
    set_source(source)
    try:
        yield source
    finally:
        _source = previous


class ManualClock:
    """A hand-cranked clock for deterministic timing tests.

    Calling the instance returns the current reading; :meth:`advance`
    moves it forward (negative steps are rejected — the contract of the
    seam is monotonicity).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"a monotonic clock cannot rewind ({seconds})")
        self._now += seconds
        return self._now
