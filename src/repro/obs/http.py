"""Optional stdlib exposition endpoint for the metrics registry.

:class:`MetricsServer` wraps ``http.server.ThreadingHTTPServer`` in a
daemon thread and serves

* ``GET /metrics``       — Prometheus text format 0.0.4 (what a
  Prometheus scraper or the CI ``obs-smoke`` job reads), and
* ``GET /metrics.json``  — the same registry as JSON.

``port=0`` (the default) binds an ephemeral port; read it back from
:attr:`MetricsServer.port` / :attr:`MetricsServer.url`.  The
:class:`~repro.serve.engine.InferenceServer` starts one of these when
constructed with ``metrics_port=...`` and closes it on shutdown.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .export import to_json, to_prometheus
from .registry import Registry

__all__ = ["MetricsServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve one registry over HTTP until :meth:`close`."""

    def __init__(self, registry: Registry, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    body = to_prometheus(server.registry).encode()
                    content_type = PROMETHEUS_CONTENT_TYPE
                elif path == "/metrics.json":
                    body = to_json(server.registry).encode()
                    content_type = "application/json"
                else:
                    self.send_error(404, "unknown path (try /metrics)")
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *_args) -> None:
                pass  # scrapes must not spam the serving process's stderr

        self.registry = registry
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="obs-exposition", daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self, timeout: Optional[float] = 5.0) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
