"""Artifact cache location shared by experiments and reporting."""

from __future__ import annotations

import os
import pathlib

__all__ = ["cache_dir"]


def cache_dir() -> pathlib.Path:
    """Artifact cache root (override with ``REPRO_CACHE_DIR``).

    Holds trained-model checkpoints and experiment result JSONs.
    """
    root = pathlib.Path(os.environ.get("REPRO_CACHE_DIR", "artifacts"))
    root.mkdir(parents=True, exist_ok=True)
    return root
