"""Artifact cache shared by experiments and reporting.

Besides the cache root, this module provides content-addressed JSON
caching for individual experiment cells: :func:`content_key` hashes an
arbitrary JSON-serializable description of the work (model, format,
bits, profile, code salt) and :func:`store_cached_json` /
:func:`load_cached_json` persist results under that key.  Writes are
atomic (temp file + rename) so concurrent workers — the parallel sweep
runner — can share one cache directory safely.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Optional

__all__ = ["cache_dir", "content_key", "cell_cache_path",
           "load_cached_json", "store_cached_json"]


def cache_dir() -> pathlib.Path:
    """Artifact cache root (override with ``REPRO_CACHE_DIR``).

    Holds trained-model checkpoints and experiment result JSONs.
    """
    root = pathlib.Path(os.environ.get("REPRO_CACHE_DIR", "artifacts"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def content_key(payload: Any) -> str:
    """A stable sha256 hex digest of a JSON-serializable payload.

    Keys are insensitive to dict ordering (``sort_keys``) and to
    int/float formatting quirks only insofar as ``json`` canonicalizes
    them; anything non-serializable is a ``TypeError`` — cache keys must
    be explicit.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cell_cache_path(namespace: str, key: str) -> pathlib.Path:
    """Path of a cached cell result (file may or may not exist)."""
    safe_ns = namespace.replace(os.sep, "_")
    return cache_dir() / "cells" / safe_ns / f"{key}.json"


def load_cached_json(namespace: str, key: str) -> Optional[Any]:
    """Return the cached value for ``key``, or ``None`` on miss/corruption."""
    path = cell_cache_path(namespace, key)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def store_cached_json(namespace: str, key: str, value: Any) -> pathlib.Path:
    """Atomically persist ``value`` under ``key``; returns the path.

    The temp-file + ``os.replace`` dance means a concurrent reader sees
    either nothing or a complete JSON document, never a partial write.
    Non-JSON-serializable payloads raise ``TypeError`` (mirroring
    :func:`content_key`) rather than being silently stringified into a
    poisoned cell that every later warm run would faithfully replay.
    """
    path = cell_cache_path(namespace, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(value, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
