"""Seeded random-number-generation helpers shared by the whole package.

Every stochastic code path in the reproduction — parameter init, dropout,
stochastic rounding, data synthesis, reservoir sampling — must be
deterministic end to end: the experiment runner caches sweep-cell results
under a content hash of the cell descriptor, so an unseeded generator
anywhere silently breaks byte-identical re-runs (and the ``reprocheck``
rule ND001 flags it).  This module is the one sanctioned home for
generator construction:

* :func:`default_rng` returns the caller's generator unchanged, or the
  process-wide generator seeded with :data:`GLOBAL_SEED`;
* :func:`fresh_rng` builds an independent generator from an explicit
  seed (use this for per-stream seeds, e.g. ``seed + offset`` schemes).

``repro.nn.init`` re-exports :func:`default_rng` and :data:`GLOBAL_SEED`
for backwards compatibility.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["GLOBAL_SEED", "default_rng", "fresh_rng", "reset_default_rng"]

#: Seed of the process-wide generator used whenever a caller does not
#: pass an explicit one, keeping every experiment reproducible end to end.
GLOBAL_SEED = 0x5EED

_shared_rng: Optional[np.random.Generator] = None


def default_rng(rng: Optional[np.random.Generator] = None) -> np.random.Generator:
    """Return ``rng`` or the process-wide deterministic generator."""
    global _shared_rng
    if rng is not None:
        return rng
    if _shared_rng is None:
        _shared_rng = np.random.default_rng(GLOBAL_SEED)
    return _shared_rng


def fresh_rng(seed: Union[int, Sequence[int]]) -> np.random.Generator:
    """An independent generator for an explicit stream seed.

    Accepts anything ``np.random.default_rng`` does for a *seeded*
    stream: an int, or a sequence of ints for hierarchical per-stream
    keys (e.g. ``[campaign_seed, cell_hash, trial]``).
    """
    return np.random.default_rng(seed)


def reset_default_rng() -> None:
    """Re-seed the process-wide generator (test isolation helper)."""
    global _shared_rng
    _shared_rng = None
