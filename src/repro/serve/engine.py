"""The inference server: bounded ingress, micro-batch scheduler, workers.

Request lifecycle::

    submit() ──> ingress queue ──> scheduler ──> bucket pends ──┐
                (backpressure)     (coalesce)                   │ dispatch
                                                                v
    future.result() <── worker demux <── run_microbatch <── batch queue

* **Backpressure** — at most ``max_queue`` requests may be in flight
  (submitted, not yet resolved).  ``submit(block=True)`` waits for a
  slot; ``block=False`` raises :class:`ServerSaturated` immediately.
* **Coalescing** — the scheduler thread groups compatible requests
  (same :func:`~repro.serve.batching.bucket_key`) and dispatches a
  micro-batch when it reaches ``max_batch`` or when its oldest request
  has waited ``max_wait_ms`` — the classic throughput/latency dial.
* **Workers** — ``workers`` threads run batches through the warm models
  from the shared :class:`~repro.serve.pool.ModelPool` and resolve the
  per-request futures.  Autodiff mode flags are thread-local, so
  concurrent workers cannot race on each other's ``no_grad`` scopes.
* **Drain/shutdown** — :meth:`InferenceServer.drain` blocks until every
  accepted request has resolved; :meth:`InferenceServer.shutdown`
  (also the context-manager exit) optionally drains, then stops the
  threads.  Requests submitted after shutdown raise
  :class:`ServerClosed`.
"""

from __future__ import annotations

import collections
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Deque, Dict, Hashable, List, Optional, Tuple

from ..nn import deterministic_matmul
from .batching import Request, bucket_key, run_microbatch
from .pool import ModelPool
from .stats import ServerStats

__all__ = ["InferenceServer", "ServeError", "ServerClosed",
           "ServerSaturated"]


class ServeError(RuntimeError):
    """Base class for serving-engine errors."""


class ServerClosed(ServeError):
    """Submit after shutdown (or before start)."""


class ServerSaturated(ServeError):
    """Bounded queue full and the caller declined to wait."""


class _Pending:
    """A request riding through the engine with its timing and future."""

    __slots__ = ("request", "future", "t_submit", "t_dispatch")

    def __init__(self, request: Request) -> None:
        self.request = request
        self.future: "Future[Any]" = Future()
        self.t_submit = time.perf_counter()
        self.t_dispatch = 0.0


_STOP = object()  # worker sentinel


class InferenceServer:
    """Dynamic micro-batching server over the quantized model zoo.

    Parameters
    ----------
    pool:
        The shared :class:`ModelPool` (models resolve lazily on first
        request for each family).
    max_batch:
        Largest micro-batch the scheduler will form.
    max_wait_ms:
        Longest a request may sit in a partial bucket before the
        scheduler flushes it anyway (the latency bound at low load).
    max_queue:
        In-flight request bound enforced at ``submit`` (backpressure).
    workers:
        Worker threads running batches (one is usually right for the
        NumPy models: BLAS already uses the cores, and a single worker
        maximizes coalescing).
    length_bucket:
        Source-length granule for translate batching
        (:func:`~repro.serve.batching.bucket_key`).
    deterministic:
        Run worker decodes under ``deterministic_matmul`` (the mode
        flags are thread-local, so an equivalence test's context on the
        client thread would not reach the workers otherwise).  Slower;
        meant for the token-identity checks, not production serving.
    """

    def __init__(self, pool: Optional[ModelPool] = None, *,
                 max_batch: int = 16, max_wait_ms: float = 2.0,
                 max_queue: int = 256, workers: int = 1,
                 length_bucket: int = 8, deterministic: bool = False) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.pool = pool or ModelPool()
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.length_bucket = length_bucket
        self.deterministic = deterministic
        self.stats = ServerStats()
        self._slots = threading.BoundedSemaphore(max_queue)
        self._ingress: "queue.Queue[Optional[_Pending]]" = queue.Queue()
        self._batches: "queue.Queue[Any]" = queue.Queue()
        self._buckets: Dict[Hashable, Deque[_Pending]] = \
            collections.OrderedDict()
        self._inflight = 0
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._closed = False
        self._started = False
        self._scheduler: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = [
            threading.Thread(target=self._worker_loop,
                             name=f"serve-worker-{i}", daemon=True)
            for i in range(workers)]

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "InferenceServer":
        if self._started:
            return self
        self._started = True
        self._scheduler = threading.Thread(target=self._scheduler_loop,
                                           name="serve-scheduler",
                                           daemon=True)
        self._scheduler.start()
        for worker in self._workers:
            worker.start()
        return self

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, *exc) -> None:
        self.shutdown(drain=exc_type is None)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted request has resolved.

        Returns False if ``timeout`` elapsed with work still in flight.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop accepting requests, optionally drain, stop the threads.

        With ``drain=False`` requests still queued or batched are failed
        with :class:`ServerClosed` rather than silently dropped.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        if not self._started:
            return
        if drain:
            self.drain(timeout)
        self._ingress.put(None)            # wake + stop the scheduler
        self._scheduler.join(timeout=30.0)
        for _ in self._workers:
            self._batches.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=30.0)
        if not drain:
            self._fail_remaining()

    def _fail_remaining(self) -> None:
        error = ServerClosed("server shut down before this request ran")
        leftovers: List[_Pending] = []
        with self._state_lock:
            for pends in self._buckets.values():
                leftovers.extend(pends)
            self._buckets.clear()
        while True:
            try:
                item = self._ingress.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                leftovers.append(item)
        while True:
            try:
                job = self._batches.get_nowait()
            except queue.Empty:
                break
            if job is not _STOP:
                leftovers.extend(job[1])
        for pending in leftovers:
            self._resolve(pending, error=error)

    # --------------------------------------------------------------- submit
    def submit(self, kind: str, payload: Any, *,
               max_len: Optional[int] = None,
               beam_size: Optional[int] = None, block: bool = True,
               timeout: Optional[float] = None) -> "Future[Any]":
        """Enqueue one request; returns a ``concurrent.futures.Future``.

        The future resolves to a token list (translate/transcribe) or an
        ``int`` label (classify).  Raises :class:`ServerClosed` after
        shutdown and :class:`ServerSaturated` when the in-flight bound
        is hit and ``block`` is False (or ``timeout`` elapses).
        """
        if not self._started:
            raise ServerClosed("server not started; use start() or a "
                               "'with' block")
        request = Request(kind, payload, max_len=max_len,
                          beam_size=beam_size)
        if self._closed:
            raise ServerClosed("server is shut down")
        if not self._slots.acquire(blocking=block, timeout=timeout):
            self.stats.record_reject()
            raise ServerSaturated(
                f"{self.max_queue} requests already in flight")
        with self._state_lock:
            if self._closed:
                self._slots.release()
                raise ServerClosed("server is shut down")
            self._inflight += 1
        pending = _Pending(request)
        self.stats.record_submit()
        self._ingress.put(pending)
        return pending.future

    # ------------------------------------------------------------ scheduler
    def _scheduler_loop(self) -> None:
        max_wait_s = self.max_wait_ms / 1e3
        while True:
            timeout = self._next_flush_in(max_wait_s)
            try:
                item = self._ingress.get(timeout=timeout)
            except queue.Empty:
                item = False                      # flush tick
            if item is None:                      # shutdown
                self._flush_all()
                return
            if item is not False:
                key = bucket_key(item.request, self.length_bucket)
                with self._state_lock:
                    self._buckets.setdefault(
                        key, collections.deque()).append(item)
            self._dispatch_ready(max_wait_s)

    def _next_flush_in(self, max_wait_s: float) -> Optional[float]:
        """Seconds until the oldest pending bucket must flush."""
        now = time.perf_counter()
        with self._state_lock:
            oldest = min((pends[0].t_submit for pends
                          in self._buckets.values() if pends),
                         default=None)
        if oldest is None:
            return None
        return max(oldest + max_wait_s - now, 0.0) or 1e-4

    def _dispatch_ready(self, max_wait_s: float) -> None:
        now = time.perf_counter()
        jobs: List[Tuple[Hashable, List[_Pending]]] = []
        with self._state_lock:
            for key in list(self._buckets):
                pends = self._buckets[key]
                while len(pends) >= self.max_batch:
                    jobs.append((key, [pends.popleft()
                                       for _ in range(self.max_batch)]))
                if pends and now - pends[0].t_submit >= max_wait_s:
                    jobs.append((key, list(pends)))
                    pends.clear()
                if not pends:
                    del self._buckets[key]
        for job in jobs:
            self._emit(job)

    def _flush_all(self) -> None:
        with self._state_lock:
            jobs = [(key, list(pends)) for key, pends
                    in self._buckets.items() if pends]
            self._buckets.clear()
        for key, pends in jobs:
            while pends:
                self._emit((key, pends[:self.max_batch]))
                pends = pends[self.max_batch:]

    def _emit(self, job: Tuple[Hashable, List[_Pending]]) -> None:
        now = time.perf_counter()
        for pending in job[1]:
            pending.t_dispatch = now
        self.stats.record_batch(len(job[1]))
        self._batches.put(job)

    # -------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        while True:
            job = self._batches.get()
            if job is _STOP:
                return
            _, pends = job
            try:
                entry = self.pool.get(pends[0].request.model_name)
                requests = [p.request for p in pends]
                if self.deterministic:
                    with deterministic_matmul():
                        results = run_microbatch(entry, requests)
                else:
                    results = run_microbatch(entry, requests)
            except BaseException as error:  # resolve, don't kill the worker
                for pending in pends:
                    self._resolve(pending, error=error)
                continue
            for pending, result in zip(pends, results):
                self._resolve(pending, result=result)

    def _resolve(self, pending: _Pending, result: Any = None,
                 error: Optional[BaseException] = None) -> None:
        now = time.perf_counter()
        queue_wait = (pending.t_dispatch or now) - pending.t_submit
        self.stats.record_done(now - pending.t_submit, queue_wait,
                               failed=error is not None)
        self._slots.release()
        with self._idle:
            self._inflight -= 1
            if not self._inflight:
                self._idle.notify_all()
        if error is not None:
            pending.future.set_exception(error)
        else:
            pending.future.set_result(result)
