"""The inference server: bounded ingress, micro-batch scheduler, workers.

Request lifecycle::

    submit() ──> ingress queue ──> scheduler ──> bucket pends ──┐
                (backpressure)     (coalesce)                   │ dispatch
                                                                v
    future.result() <── worker demux <── run_microbatch <── batch queue

* **Backpressure** — at most ``max_queue`` requests may be in flight
  (submitted, not yet resolved).  ``submit(block=True)`` waits for a
  slot; ``block=False`` raises :class:`ServerSaturated` immediately.
* **Coalescing** — the scheduler thread groups compatible requests
  (same :func:`~repro.serve.batching.bucket_key`) and dispatches a
  micro-batch when it reaches ``max_batch`` or when its oldest request
  has waited ``max_wait_ms`` — the classic throughput/latency dial.
* **Workers** — ``workers`` threads run batches through the warm models
  from the shared :class:`~repro.serve.pool.ModelPool` and resolve the
  per-request futures.  Autodiff mode flags are thread-local, so
  concurrent workers cannot race on each other's ``no_grad`` scopes.
* **Drain/shutdown** — :meth:`InferenceServer.drain` blocks until every
  accepted request has resolved; :meth:`InferenceServer.shutdown`
  (also the context-manager exit) optionally drains, then stops the
  threads.  Requests submitted after shutdown raise
  :class:`ServerClosed`.
"""

from __future__ import annotations

import collections
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Deque, Dict, Hashable, List, Optional, Tuple

from .. import obs
from ..nn import Sanitizer, deterministic_matmul
from ..obs import clock
from .batching import Request, bucket_key, run_microbatch
from .pool import ModelPool
from .resilient import PROBE_KINDS, CircuitBreaker, ResilienceConfig
from .stats import ServerStats

__all__ = ["InferenceServer", "ServeError", "ServerClosed",
           "ServerSaturated", "ServerDegraded", "DeadlineExceeded"]


class ServeError(RuntimeError):
    """Base class for serving-engine errors."""


class ServerClosed(ServeError):
    """Submit after shutdown (or before start)."""


class ServerSaturated(ServeError):
    """Bounded queue full and the caller declined to wait."""


class ServerDegraded(ServeError):
    """An uncorrectable fault: the scrubber could not repair the model
    (or retries were exhausted), or the circuit breaker is shedding
    load after repeated uncorrectable faults."""


class DeadlineExceeded(ServeError):
    """The request's deadline expired before a worker could serve it."""


#: Exceptions caught by the engine's broad worker/scheduler handlers.
#: Most are *routed* into the request's future rather than dropped, but
#: every one disappears from its own thread — this counter is the audit
#: trail.  ``site`` names the handler, ``exc`` the exception type.
_SWALLOWED = obs.counter(
    "repro_serve_swallowed_exceptions_total",
    "Exceptions caught by broad serve/resilience handlers, by handler "
    "site and exception type.", ("site", "exc"))


def _count_swallowed(site: str, error: BaseException) -> None:
    _SWALLOWED.labels(site=site, exc=type(error).__name__).inc()


class _Pending:
    """A request riding through the engine with its timing and future.

    All timestamps (``t_submit``, ``t_dispatch``, ``deadline``) are
    readings of the single :mod:`repro.obs.clock` — the scheduler's
    flush arithmetic and ``drain()``'s timeout compare against the same
    clock, so absolute times never cross clock domains.  (An earlier
    version stamped submit times with ``time.perf_counter()`` while
    ``drain()`` and the circuit breaker read ``time.monotonic()``;
    the two have unrelated epochs, which made any future mixing of
    those absolutes silently wrong.)
    """

    __slots__ = ("request", "future", "t_submit", "t_dispatch", "deadline",
                 "trace_id")

    def __init__(self, request: Request,
                 deadline_s: Optional[float] = None) -> None:
        self.request = request
        self.future: "Future[Any]" = Future()
        self.t_submit = clock.now()
        self.t_dispatch = 0.0
        self.trace_id = obs.new_trace_id()
        #: absolute obs-clock time after which the request fails with
        #: DeadlineExceeded instead of riding further retries.
        self.deadline = (None if deadline_s is None
                         else self.t_submit + deadline_s)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


_STOP = object()  # worker sentinel


class InferenceServer:
    """Dynamic micro-batching server over the quantized model zoo.

    Parameters
    ----------
    pool:
        The shared :class:`ModelPool` (models resolve lazily on first
        request for each family).
    max_batch:
        Largest micro-batch the scheduler will form.
    max_wait_ms:
        Longest a request may sit in a partial bucket before the
        scheduler flushes it anyway (the latency bound at low load).
    max_queue:
        In-flight request bound enforced at ``submit`` (backpressure).
    workers:
        Worker threads running batches (one is usually right for the
        NumPy models: BLAS already uses the cores, and a single worker
        maximizes coalescing).
    length_bucket:
        Source-length granule for translate batching
        (:func:`~repro.serve.batching.bucket_key`).
    deterministic:
        Run worker decodes under ``deterministic_matmul`` (the mode
        flags are thread-local, so an equivalence test's context on the
        client thread would not reach the workers otherwise).  Slower;
        meant for the token-identity checks, not production serving.
    resilience:
        A :class:`~repro.serve.resilient.ResilienceConfig` enables the
        self-healing path: golden-copy scrubbing of the pooled models
        (periodic daemon + per-batch CRC verify), a Sanitizer probe
        quarantining numerically-faulty batches, bounded-backoff batch
        retry after repair, per-request deadlines, and a circuit
        breaker shedding load with :class:`ServerDegraded` after
        repeated uncorrectable faults.  ``None`` (default) serves
        exactly as before.
    metrics_port:
        When not ``None``, start a :class:`~repro.obs.MetricsServer`
        exposing the process metrics registry over HTTP (``/metrics``
        Prometheus text, ``/metrics.json``) for the server's lifetime;
        ``0`` binds an ephemeral port (read it back from
        ``server.metrics.url``).  The endpoint closes on shutdown.
    """

    def __init__(self, pool: Optional[ModelPool] = None, *,
                 max_batch: int = 16, max_wait_ms: float = 2.0,
                 max_queue: int = 256, workers: int = 1,
                 length_bucket: int = 8, deterministic: bool = False,
                 resilience: Optional[ResilienceConfig] = None,
                 metrics_port: Optional[int] = None) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if length_bucket < 1:
            # bucket_key rejects this per request; validating here keeps
            # a bad dial from poisoning the scheduler at runtime.
            raise ValueError(
                f"length_bucket must be >= 1, got {length_bucket}")
        self.pool = pool or ModelPool()
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.length_bucket = length_bucket
        self.deterministic = deterministic
        self.resilience = resilience
        self._breaker: Optional[CircuitBreaker] = None
        self._scrub_thread: Optional[threading.Thread] = None
        self._scrub_stop = threading.Event()
        if resilience is not None:
            self._breaker = CircuitBreaker(resilience.breaker_threshold,
                                           resilience.breaker_reset_s)
            self.pool.enable_scrubbing()
        self.stats = ServerStats()
        self.metrics: Optional[obs.MetricsServer] = None
        if metrics_port is not None:
            self.metrics = obs.MetricsServer(obs.REGISTRY,
                                             port=metrics_port)
        self._slots = threading.BoundedSemaphore(max_queue)
        self._ingress: "queue.Queue[Optional[_Pending]]" = queue.Queue()
        self._batches: "queue.Queue[Any]" = queue.Queue()
        self._buckets: Dict[Hashable, Deque[_Pending]] = \
            collections.OrderedDict()
        self._inflight = 0
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._closed = False
        self._started = False
        self._scheduler: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = [
            threading.Thread(target=self._worker_loop,
                             name=f"serve-worker-{i}", daemon=True)
            for i in range(workers)]

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "InferenceServer":
        if self._started:
            return self
        self._started = True
        self._scheduler = threading.Thread(target=self._scheduler_loop,
                                           name="serve-scheduler",
                                           daemon=True)
        self._scheduler.start()
        for worker in self._workers:
            worker.start()
        if self.resilience is not None \
                and self.resilience.scrub_interval_s is not None:
            self._scrub_thread = threading.Thread(
                target=self._scrub_loop, name="serve-scrubber", daemon=True)
            self._scrub_thread.start()
        return self

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, *exc) -> None:
        self.shutdown(drain=exc_type is None)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted request has resolved.

        Returns False if ``timeout`` elapsed with work still in flight.
        """
        deadline = None if timeout is None else clock.now() + timeout
        with self._idle:
            while self._inflight:
                remaining = None if deadline is None \
                    else deadline - clock.now()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop accepting requests, optionally drain, stop the threads.

        With ``drain=False`` requests still queued or batched are failed
        with :class:`ServerClosed` rather than silently dropped.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        if not self._started:
            if self.metrics is not None:
                self.metrics.close()
            return
        if drain:
            self.drain(timeout)
        if self.metrics is not None:
            self.metrics.close()
        self._scrub_stop.set()
        self._ingress.put(None)            # wake + stop the scheduler
        self._scheduler.join(timeout=30.0)
        for _ in self._workers:
            self._batches.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=30.0)
        if self._scrub_thread is not None:
            self._scrub_thread.join(timeout=30.0)
        if not drain:
            self._fail_remaining()

    def _fail_remaining(self) -> None:
        error = ServerClosed("server shut down before this request ran")
        leftovers: List[_Pending] = []
        with self._state_lock:
            for pends in self._buckets.values():
                leftovers.extend(pends)
            self._buckets.clear()
        while True:
            try:
                item = self._ingress.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                leftovers.append(item)
        while True:
            try:
                job = self._batches.get_nowait()
            except queue.Empty:
                break
            if job is not _STOP:
                leftovers.extend(job[1])
        for pending in leftovers:
            self._resolve(pending, error=error)

    # --------------------------------------------------------------- submit
    def submit(self, kind: str, payload: Any, *,
               max_len: Optional[int] = None,
               beam_size: Optional[int] = None, block: bool = True,
               timeout: Optional[float] = None,
               deadline_s: Optional[float] = None) -> "Future[Any]":
        """Enqueue one request; returns a ``concurrent.futures.Future``.

        The future resolves to a token list (translate/transcribe) or an
        ``int`` label (classify).  Raises :class:`ServerClosed` after
        shutdown, :class:`ServerSaturated` when the in-flight bound is
        hit and ``block`` is False (or ``timeout`` elapses), and
        :class:`ServerDegraded` while the resilience circuit breaker is
        shedding load.  ``deadline_s`` bounds this request's total
        residence time (default: the resilience config's
        ``request_deadline_s``; expired requests resolve with
        :class:`DeadlineExceeded`).
        """
        if not self._started:
            raise ServerClosed("server not started; use start() or a "
                               "'with' block")
        if deadline_s is None and self.resilience is not None:
            deadline_s = self.resilience.request_deadline_s
        request = Request(kind, payload, max_len=max_len,
                          beam_size=beam_size)
        if self._closed:
            raise ServerClosed("server is shut down")
        if self._breaker is not None and not self._breaker.allow():
            # Shed before taking a slot: a degraded server must not let
            # doomed requests consume backpressure capacity.
            self.stats.record_degraded_rejection()
            raise ServerDegraded(
                "circuit breaker open after repeated uncorrectable "
                "faults; retry after the breaker's reset window")
        if not self._slots.acquire(blocking=block, timeout=timeout):
            self.stats.record_reject()
            raise ServerSaturated(
                f"{self.max_queue} requests already in flight")
        with self._state_lock:
            if self._closed:
                self._slots.release()
                raise ServerClosed("server is shut down")
            self._inflight += 1
        pending = _Pending(request, deadline_s=deadline_s)
        self.stats.record_submit()
        self._ingress.put(pending)
        return pending.future

    # ------------------------------------------------------------ scheduler
    def _scheduler_loop(self) -> None:
        max_wait_s = self.max_wait_ms / 1e3
        while True:
            timeout = self._next_flush_in(max_wait_s)
            try:
                item = self._ingress.get(timeout=timeout)
            except queue.Empty:
                item = False                      # flush tick
            if item is None:                      # shutdown
                self._flush_all()
                return
            if item is not False:
                try:
                    key = bucket_key(item.request, self.length_bucket)
                except BaseException as error:
                    # A malformed request must fail *its own* future —
                    # an uncaught raise here would kill the scheduler,
                    # leak the request's queue-depth slot, and hang
                    # every later drain().
                    _count_swallowed("scheduler.bucket_key", error)
                    self._resolve(item, error=error)
                    key = None
                if key is not None:
                    with self._state_lock:
                        self._buckets.setdefault(
                            key, collections.deque()).append(item)
            self._dispatch_ready(max_wait_s)

    def _next_flush_in(self, max_wait_s: float) -> Optional[float]:
        """Seconds until the oldest pending bucket must flush."""
        now = clock.now()
        with self._state_lock:
            oldest = min((pends[0].t_submit for pends
                          in self._buckets.values() if pends),
                         default=None)
        if oldest is None:
            return None
        return max(oldest + max_wait_s - now, 0.0) or 1e-4

    def _dispatch_ready(self, max_wait_s: float) -> None:
        now = clock.now()
        jobs: List[Tuple[Hashable, List[_Pending]]] = []
        with self._state_lock:
            for key in list(self._buckets):
                pends = self._buckets[key]
                while len(pends) >= self.max_batch:
                    jobs.append((key, [pends.popleft()
                                       for _ in range(self.max_batch)]))
                if pends and now - pends[0].t_submit >= max_wait_s:
                    jobs.append((key, list(pends)))
                    pends.clear()
                if not pends:
                    del self._buckets[key]
        for job in jobs:
            self._emit(job)

    def _flush_all(self) -> None:
        with self._state_lock:
            jobs = [(key, list(pends)) for key, pends
                    in self._buckets.items() if pends]
            self._buckets.clear()
        for key, pends in jobs:
            while pends:
                self._emit((key, pends[:self.max_batch]))
                pends = pends[self.max_batch:]

    def _emit(self, job: Tuple[Hashable, List[_Pending]]) -> None:
        now = clock.now()
        for pending in job[1]:
            pending.t_dispatch = now
            obs.TRACER.record("serve.queue", pending.t_submit, now,
                              trace_id=pending.trace_id,
                              kind=pending.request.kind)
        self.stats.record_batch(len(job[1]))
        self._batches.put(job)

    # -------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        while True:
            job = self._batches.get()
            if job is _STOP:
                return
            _, pends = job
            pends = self._drop_expired(pends)
            if not pends:
                continue
            if self.resilience is not None:
                self._process_resilient(pends)
                continue
            t_batch = clock.now()
            try:
                entry = self.pool.get(pends[0].request.model_name)
                results = self._run_batch(entry, [p.request for p in pends])
            except BaseException as error:  # resolve, don't kill the worker
                _count_swallowed("worker.batch", error)
                for pending in pends:
                    self._resolve(pending, error=error)
                continue
            obs.TRACER.record("serve.batch", t_batch, clock.now(),
                              trace_id=pends[0].trace_id, size=len(pends))
            for pending, result in zip(pends, results):
                self._resolve(pending, result=result)

    def _run_batch(self, entry: Any, requests: List[Request]) -> List[Any]:
        if self.deterministic:
            with deterministic_matmul():
                return run_microbatch(entry, requests)
        return run_microbatch(entry, requests)

    def _drop_expired(self, pends: List[_Pending]) -> List[_Pending]:
        """Fail deadline-expired requests; return the still-live rest."""
        now = clock.now()
        live = []
        for pending in pends:
            if pending.expired(now):
                self.stats.record_deadline()
                self._resolve(pending, error=DeadlineExceeded(
                    "request deadline expired before the batch ran"))
            else:
                live.append(pending)
        return live

    # ------------------------------------------------- self-healing path
    def _probe_batch(self, entry: Any,
                     requests: List[Request]) -> Tuple[List[Any],
                                                       Optional[str]]:
        """Run the batch under a collecting Sanitizer.

        Returns ``(results, finding kind)`` where the kind is the first
        quarantine-worthy numeric finding (:data:`PROBE_KINDS`) the
        forward produced, or None for a numerically clean batch.
        """
        cfg = self.resilience
        with Sanitizer(entry.model, action="collect",
                       clamp_storm=cfg.clamp_storm) as report:
            results = self._run_batch(entry, requests)
        for finding in report.findings:
            if finding.kind in PROBE_KINDS:
                return results, finding.kind
        return results, None

    def _process_resilient(self, pends: List[_Pending]) -> None:
        """Run one micro-batch with detect / repair / retry / degrade.

        Per attempt: run the batch (optionally under the Sanitizer
        probe), then CRC-verify the served model against its golden
        streams.  A detected weight fault is restored by the scrubber
        and the batch retries with exponential backoff (the restore
        bumped ``Parameter.version``, so the weight-quant memo refreshes
        itself).  The scrubber's ``generation`` counter guards the
        daemon race: if a periodic scrub repaired the weights *during*
        our forward, the post-batch CRC looks clean even though the
        forward read corrupted values — a generation change across the
        attempt forces a retry.  Uncorrectable faults (corrupted golden
        copy, retries exhausted) fail the batch with
        :class:`ServerDegraded` and feed the circuit breaker.
        """
        cfg = self.resilience
        try:
            entry = self.pool.get(pends[0].request.model_name)
        except BaseException as error:
            _count_swallowed("resilient.pool_get", error)
            for pending in pends:
                self._resolve(pending, error=error)
            return
        scrubber = entry.scrubber
        attempt = 0
        live = pends
        while True:
            live = self._drop_expired(live)
            if not live:
                return
            requests = [p.request for p in live]
            gen_before = scrubber.generation if scrubber is not None else 0
            fault: Optional[str] = None
            results: Optional[List[Any]] = None
            error: Optional[BaseException] = None
            t_batch = clock.now()
            try:
                if cfg.probe:
                    results, probe_kind = self._probe_batch(entry, requests)
                    if probe_kind is not None:
                        fault = "probe"
                else:
                    results = self._run_batch(entry, requests)
            except BaseException as err:
                _count_swallowed("resilient.attempt", err)
                error = err
            obs.TRACER.record("serve.batch", t_batch, clock.now(),
                              trace_id=live[0].trace_id, size=len(live),
                              attempt=attempt)
            report = None
            if scrubber is not None and (
                    fault is not None or error is not None
                    or cfg.verify_batches):
                report = scrubber.scrub(
                    reason="probe" if fault else
                    ("exception" if error is not None else "verify"))
                self.stats.record_scrub(
                    report.checked, len(report.restored),
                    len(report.uncorrectable), report.duration_s)
                if report.corrupted and fault is None:
                    fault = "exception" if error is not None else "crc"
            if report is not None and report.uncorrectable:
                self._fail_degraded(live, ServerDegraded(
                    "weight fault is uncorrectable (golden copy for "
                    f"{report.uncorrectable} failed its self-checksum)"))
                return
            if error is not None and fault is None:
                # A plain software error with verified-clean weights is
                # not a hardware fault; propagate it as before.
                for pending in live:
                    self._resolve(pending, error=error)
                return
            gen_now = scrubber.generation if scrubber is not None else 0
            if fault is None and gen_now == gen_before:
                if attempt:
                    self.stats.record_recovered()
                if self._breaker is not None:
                    self._breaker.record_success()
                    self._sync_degradation()
                for pending, result in zip(live, results):
                    self._resolve(pending, result=result)
                return
            # fault detected (or the daemon repaired under us): retry
            if fault is not None:
                self.stats.record_fault(fault)
            attempt += 1
            if attempt > cfg.max_retries:
                self.stats.record_uncorrectable()
                self._fail_degraded(live, ServerDegraded(
                    f"fault persisted through {cfg.max_retries} "
                    "retries"))
                return
            self.stats.record_retry()
            backoff = cfg.backoff(attempt - 1)
            if backoff > 0:
                time.sleep(backoff)

    def _fail_degraded(self, pends: List[_Pending],
                       error: ServerDegraded) -> None:
        if self._breaker is not None:
            self._breaker.record_uncorrectable()
            self._sync_degradation()
        for pending in pends:
            self._resolve(pending, error=error)

    def _sync_degradation(self) -> None:
        state = self._breaker.state
        self.stats.set_degradation("ok" if state == "closed" else state)

    def _scrub_loop(self) -> None:
        """Periodic golden-copy sweep over every pooled model."""
        interval = self.resilience.scrub_interval_s
        while not self._scrub_stop.wait(interval):
            for scrubber in self.pool.scrubbers().values():
                report = scrubber.scrub(reason="periodic")
                self.stats.record_scrub(
                    report.checked, len(report.restored),
                    len(report.uncorrectable), report.duration_s)
                if report.corrupted:
                    self.stats.record_fault("crc")
                if report.uncorrectable and self._breaker is not None:
                    self._breaker.record_uncorrectable()
                    self._sync_degradation()

    def _resolve(self, pending: _Pending, result: Any = None,
                 error: Optional[BaseException] = None) -> None:
        now = clock.now()
        queue_wait = (pending.t_dispatch or now) - pending.t_submit
        self.stats.record_done(now - pending.t_submit, queue_wait,
                               failed=error is not None)
        obs.TRACER.record("serve.request", pending.t_submit, now,
                          trace_id=pending.trace_id,
                          kind=pending.request.kind,
                          outcome="error" if error is not None else "ok")
        self._slots.release()
        with self._idle:
            self._inflight -= 1
            if not self._inflight:
                self._idle.notify_all()
        # A client may have cancelled the future; InvalidStateError here
        # must not kill the worker mid-demux (that would leak the queue
        # depth of every later pending in the same batch).
        try:
            if error is not None:
                pending.future.set_exception(error)
            else:
                pending.future.set_result(result)
        except Exception as swallowed:
            _count_swallowed("resolve.set_future", swallowed)
