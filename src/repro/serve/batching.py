"""Micro-batch assembly: bucket keys, padded batch building, demux.

The scheduler coalesces waiting requests into *micro-batches* that run
through the existing KV-cached batched decode paths.  Two rules decide
which requests may share a batch (the bucket key):

* **translate** (Transformer) — requests are padded to the longest
  source in the batch, so any lengths could share a batch; a
  ``length_bucket`` granule groups similar lengths to bound padding
  waste.  Padding is inert (pad keys get softmax weight exactly 0.0),
  so batch composition cannot change a request's tokens.
* **transcribe** (seq2seq LSTM) — frames bucket by *exact* frame count:
  the encoder LSTM runs over every frame and the additive attention is
  unmasked, so zero-padding frames would *not* be inert.  Exact-length
  bucketing keeps batched decode token-identical to serial decode.
* **classify** (ResNet) — images share a batch when their shapes match.

Decode options (``max_len``, ``beam_size``) join the key: requests with
different decode settings never share a batch.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import no_grad
from ..nn.decoding import assemble_source_batch, strip_hypotheses
from .pool import PooledModel

__all__ = ["KINDS", "Request", "bucket_key", "run_microbatch",
           "serial_reference"]

#: The request kinds the engine serves, mapped to model families.
KINDS = {"translate": "transformer", "transcribe": "seq2seq",
         "classify": "resnet"}


@dataclasses.dataclass
class Request:
    """One queued inference request (engine-internal record)."""

    kind: str
    payload: Any                     # token list / frame array / image array
    max_len: Optional[int] = None
    beam_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}; "
                             f"known: {tuple(KINDS)}")
        if self.kind == "translate":
            self.payload = [int(t) for t in self.payload]
            if not self.payload:
                raise ValueError("translate request needs >= 1 source token")
        elif self.kind == "transcribe":
            self.payload = np.asarray(self.payload, dtype=np.float32)
            if self.payload.ndim != 2 or not self.payload.shape[0]:
                raise ValueError("transcribe request needs (T, feat) frames "
                                 f"with T >= 1, got shape "
                                 f"{self.payload.shape}")
        else:
            self.payload = np.asarray(self.payload, dtype=np.float32)
            if self.payload.ndim != 3:
                raise ValueError("classify request needs one (C, H, W) "
                                 f"image, got shape {self.payload.shape}")

    @property
    def model_name(self) -> str:
        return KINDS[self.kind]


def bucket_key(request: Request, length_bucket: int) -> Hashable:
    """Batch-compatibility key: requests sharing a key may share a batch."""
    options = (request.max_len, request.beam_size)
    if request.kind == "translate":
        if length_bucket < 1:
            raise ValueError(f"length_bucket must be >= 1, got "
                             f"{length_bucket}")
        granule = math.ceil((len(request.payload) + 1) / length_bucket)
        return ("translate", granule, options)
    if request.kind == "transcribe":
        return ("transcribe", request.payload.shape[0], options)
    return ("classify", request.payload.shape, options)


def _decode(model, inputs: np.ndarray, max_len: Optional[int],
            beam_size: Optional[int]) -> np.ndarray:
    if beam_size is not None:
        return model.beam_decode(inputs, beam_size=beam_size,
                                 max_len=max_len)
    return model.greedy_decode(inputs, max_len=max_len)


def run_microbatch(entry: PooledModel,
                   requests: Sequence[Request]) -> List[Any]:
    """Run one coalesced batch and demultiplex per-request results.

    All requests must share a bucket key (the scheduler guarantees it).
    Returns one result per request, in order: token lists for
    translate/transcribe, ``int`` class labels for classify.
    """
    if not requests:
        raise ValueError("empty micro-batch")
    first = requests[0]
    max_len, beam = first.max_len, first.beam_size
    if first.kind == "translate":
        cfg = entry.model.config
        src = assemble_source_batch([r.payload for r in requests],
                                    cfg.pad_id, cfg.eos_id)
        out = _decode(entry.model, src, max_len, beam)
        return strip_hypotheses(out, cfg.pad_id, cfg.eos_id)
    if first.kind == "transcribe":
        cfg = entry.model.config
        frames = np.stack([r.payload for r in requests])
        out = _decode(entry.model, frames, max_len, beam)
        return strip_hypotheses(out, cfg.pad_id, cfg.eos_id)
    images = np.stack([r.payload for r in requests])
    with no_grad():
        logits = entry.model(images).data
    return [int(label) for label in logits.argmax(axis=-1)]


def serial_reference(entry: PooledModel,
                     requests: Sequence[Request]) -> List[Any]:
    """One-request-at-a-time reference path (no coalescing).

    The correctness bar for the engine: :func:`run_microbatch` over any
    compatible request set must return exactly what this returns for
    each request (token-identical under ``deterministic_matmul``).
    """
    results: List[Any] = []
    for request in requests:
        results.extend(run_microbatch(entry, [request]))
    return results
