"""Dynamic micro-batching inference serving (docs/serving.md).

The ROADMAP north star is serving the paper's quantized model zoo under
heavy concurrent traffic; this package turns the per-call inference
kernels (KV-cached decode, weight-quant memoization) into sustained
request throughput:

* :class:`InferenceServer` (``engine``) — bounded ingress queue with
  backpressure, a scheduler coalescing concurrent requests into padded
  micro-batches (``max_batch`` / ``max_wait_ms`` / length bucketing),
  worker threads, per-request futures, graceful drain/shutdown.
* :class:`ModelPool` (``pool``) — warm models shared across requests;
  quantized weights resolve once through the ``WeightFakeQuant`` memo.
* ``batching`` — bucket keys and padded batch assembly/demux; batched
  padded decode is token-identical to serial one-request-at-a-time
  decode (bit-exact under ``deterministic_matmul``).
* :class:`ServerStats` (``stats``) — p50/p95/p99 latency, queue depth,
  batch-size histogram, weight-cache hit counters, scrub/fault/retry
  counters and the degradation state; every event also mirrors into the
  process-wide :mod:`repro.obs` registry, and ``snapshot()`` embeds the
  registry dump.
* ``resilient`` — the self-healing policy layer
  (:class:`ResilienceConfig`, :class:`CircuitBreaker`): golden-copy
  weight scrubbing via :mod:`repro.resilience.scrub`, Sanitizer-backed
  batch quarantine, bounded-backoff retry, per-request deadlines, and
  circuit-breaker load shedding (:class:`ServerDegraded`).
* ``bench`` — the batched-vs-serial throughput harness behind
  ``repro serve-bench`` and ``BENCH_serve.json``, plus the closed-loop
  fault-recovery and scrub-overhead probes of the resilience block.
"""

from .batching import KINDS, Request, bucket_key, run_microbatch, \
    serial_reference
from .engine import DeadlineExceeded, InferenceServer, ServeError, \
    ServerClosed, ServerDegraded, ServerSaturated
from .pool import ModelPool, PooledModel
from .resilient import CircuitBreaker, ResilienceConfig
from .stats import LatencyRecorder, ServerStats

__all__ = [
    "CircuitBreaker", "DeadlineExceeded", "InferenceServer", "KINDS",
    "LatencyRecorder", "ModelPool", "PooledModel", "Request",
    "ResilienceConfig", "ServeError", "ServerClosed", "ServerDegraded",
    "ServerSaturated", "ServerStats", "bucket_key", "run_microbatch",
    "serial_reference",
]
