"""Dynamic micro-batching inference serving (docs/serving.md).

The ROADMAP north star is serving the paper's quantized model zoo under
heavy concurrent traffic; this package turns the per-call inference
kernels (KV-cached decode, weight-quant memoization) into sustained
request throughput:

* :class:`InferenceServer` (``engine``) — bounded ingress queue with
  backpressure, a scheduler coalescing concurrent requests into padded
  micro-batches (``max_batch`` / ``max_wait_ms`` / length bucketing),
  worker threads, per-request futures, graceful drain/shutdown.
* :class:`ModelPool` (``pool``) — warm models shared across requests;
  quantized weights resolve once through the ``WeightFakeQuant`` memo.
* ``batching`` — bucket keys and padded batch assembly/demux; batched
  padded decode is token-identical to serial one-request-at-a-time
  decode (bit-exact under ``deterministic_matmul``).
* :class:`ServerStats` (``stats``) — p50/p95/p99 latency, queue depth,
  batch-size histogram, weight-cache hit counters.
* ``bench`` — the batched-vs-serial throughput harness behind
  ``repro serve-bench`` and ``BENCH_serve.json``.
"""

from .batching import KINDS, Request, bucket_key, run_microbatch, \
    serial_reference
from .engine import InferenceServer, ServeError, ServerClosed, \
    ServerSaturated
from .pool import ModelPool, PooledModel
from .stats import LatencyRecorder, ServerStats

__all__ = [
    "InferenceServer", "KINDS", "LatencyRecorder", "ModelPool",
    "PooledModel", "Request", "ServeError", "ServerClosed",
    "ServerSaturated", "ServerStats", "bucket_key", "run_microbatch",
    "serial_reference",
]
