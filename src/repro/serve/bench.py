"""Batched-vs-serial serving benchmark shared by the CLI, pytest and
``tools/bench_report.py --suite serve``.

The measured comparison: ``concurrency`` client threads submitting a
seeded synthetic request mix through the micro-batching server, against
the serial one-request-at-a-time reference over the *same* requests on
the *same* warm model.  The speedup is pure batching gain — both paths
use the KV-cached decode and the warm pool.

The correctness companion (:func:`check_equivalence`) replays a ragged
request mix through a ``deterministic=True`` server and asserts the
demultiplexed results are token-identical to the serial reference for
every model family.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..nn import deterministic_matmul
from ..rng import fresh_rng
from .batching import KINDS, Request, serial_reference
from .engine import InferenceServer
from .pool import ModelPool
from .resilient import ResilienceConfig
from .stats import ServerStats

__all__ = ["build_requests", "check_equivalence", "run_serve_benchmark",
           "run_fault_recovery", "measure_scrub_overhead",
           "measure_obs_overhead"]

_HARVEST_ERRORS = obs.counter(
    "repro_serve_swallowed_exceptions_total",
    "Exceptions caught by broad serve/resilience handlers, by handler "
    "site and exception type.", ("site", "exc"))

#: Kind served per model family (inverse of batching.KINDS).
_KIND_OF = {model: kind for kind, model in KINDS.items()}

#: Decode cap for the synthetic benchmark workloads: long enough that
#: decode dominates scheduling overhead, short enough to run in CI.
DEFAULT_MAX_LEN = 32


def build_requests(model: str, count: int, seed: int = 0,
                   max_len: Optional[int] = DEFAULT_MAX_LEN,
                   min_len: int = 4, max_src_len: int = 12
                   ) -> List[Request]:
    """A seeded ragged request mix for one model family."""
    if model not in _KIND_OF:
        raise ValueError(f"unknown model {model!r}; known: "
                         f"{tuple(_KIND_OF)}")
    rng = fresh_rng([seed, count])
    kind = _KIND_OF[model]
    requests = []
    for _ in range(count):
        length = int(rng.integers(min_len, max_src_len + 1))
        if kind == "translate":
            payload: Any = rng.integers(3, 64, size=length).tolist()
        elif kind == "transcribe":
            payload = rng.standard_normal((length, 16)).astype("float32")
        else:
            payload = rng.standard_normal((3, 16, 16)).astype("float32")
        requests.append(Request(kind, payload, max_len=max_len))
    return requests


def _submit_all(server: InferenceServer, requests: Sequence[Request],
                concurrency: int) -> List[Any]:
    """Submit ``requests`` from ``concurrency`` client threads; return
    the resolved results in request order."""
    import threading

    futures: List[Optional[Future]] = [None] * len(requests)

    def client(worker: int) -> None:
        for i in range(worker, len(requests), concurrency):
            req = requests[i]
            futures[i] = server.submit(req.kind, req.payload,
                                       max_len=req.max_len,
                                       beam_size=req.beam_size)

    clients = [threading.Thread(target=client, args=(w,))
               for w in range(concurrency)]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    return [future.result(timeout=300.0) for future in futures]


def run_serve_benchmark(model: str = "transformer", concurrency: int = 16,
                        num_requests: int = 64, max_batch: int = 16,
                        max_wait_ms: float = 5.0, workers: int = 1,
                        seed: int = 0, profile: Optional[str] = None,
                        quant: Optional[object] = None,
                        max_len: Optional[int] = DEFAULT_MAX_LEN,
                        repeats: int = 2) -> Dict:
    """Measure serial vs micro-batched request throughput.

    Returns a JSON-safe record: wall-clock seconds and requests/sec for
    both paths, the speedup, the server's stats snapshot (queue depth,
    batch histogram, latency percentiles) and the pool's weight-cache
    counters.  ``repeats`` keeps the best wall clock of each path (the
    usual best-of-N benchmark discipline).
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    pool = ModelPool(profile=profile, quant=quant)
    entry = pool.get(model)           # warm before either timed path
    requests = build_requests(model, num_requests, seed=seed,
                              max_len=max_len)

    serial_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        serial_results = serial_reference(entry, requests)
        serial_s = min(serial_s, time.perf_counter() - t0)

    batched_s = float("inf")
    stats: Dict = {}
    for _ in range(repeats):
        server = InferenceServer(pool, max_batch=max_batch,
                                 max_wait_ms=max_wait_ms, workers=workers)
        with server:
            t0 = time.perf_counter()
            batched_results = _submit_all(server, requests, concurrency)
            server.drain()
            elapsed = time.perf_counter() - t0
        if elapsed < batched_s:
            batched_s = elapsed
            stats = server.stats.snapshot()

    matches = sum(1 for a, b in zip(serial_results, batched_results)
                  if _same_result(a, b))
    return {
        "config": {
            "model": model, "concurrency": concurrency,
            "num_requests": num_requests, "max_batch": max_batch,
            "max_wait_ms": max_wait_ms, "workers": workers,
            "max_len": max_len, "seed": seed,
            "profile": profile,
            "quant": getattr(quant, "label", quant and str(quant)),
        },
        "serial": {
            "wall_s": round(serial_s, 4),
            "requests_per_sec": round(num_requests / serial_s, 2),
        },
        "batched": {
            "wall_s": round(batched_s, 4),
            "requests_per_sec": round(num_requests / batched_s, 2),
        },
        "speedup": round(serial_s / batched_s, 2),
        "blas_token_match_rate": round(matches / num_requests, 4),
        "server_stats": stats,
        "weight_cache": pool.weight_cache_stats(),
    }


def _same_result(a: Any, b: Any) -> bool:
    return a == b


def run_fault_recovery(model: str = "transformer", num_requests: int = 12,
                       max_batch: int = 4, seed: int = 0, bit_index: int = 1,
                       target: Optional[str] = None,
                       max_len: Optional[int] = 16,
                       quant: Optional[object] = None) -> Dict:
    """Closed-loop self-healing check: inject, serve, verify recovery.

    Serves half the seeded request mix, injects a single
    ``bit_index`` register flip (default 1 = the float32 exponent MSB,
    the paper's catastrophic-SDC bit) into one element of a pooled
    weight tensor via :func:`repro.resilience.inject.flip_float_register`
    + ``swap_parameter`` — exactly what the campaign engine does — then
    serves the second half *through the fault*.  The resilient server
    must detect (probe or CRC), restore from the golden stream, retry,
    and deliver every request token-identical to the clean serial
    reference with zero failures.

    Deterministic by construction: the periodic scrub daemon is
    disabled so detection happens via the per-batch verify on the first
    faulty batch, and both sides decode under ``deterministic_matmul``.
    """
    from ..resilience.inject import flip_float_register
    pool = ModelPool(quant=quant)
    entry = pool.get(model)
    requests = build_requests(model, num_requests, seed=seed,
                              max_len=max_len)
    with deterministic_matmul():
        expected = serial_reference(entry, requests)
    config = ResilienceConfig(scrub_interval_s=None, verify_batches=True,
                              probe=True)
    server = InferenceServer(pool, max_batch=max_batch, max_wait_ms=10.0,
                             deterministic=True, resilience=config)
    half = max(1, num_requests // 2)
    with server:
        futures = [server.submit(r.kind, r.payload, max_len=r.max_len)
                   for r in requests[:half]]
        server.drain()
        if target is None:
            target = next(name for name, _ in entry.model.named_parameters()
                          if name.endswith(".weight") or name == "weight")
        param = entry.model.get_parameter(target)
        rng = fresh_rng([seed, 0xFA117])
        element = int(rng.integers(param.data.size))
        faulty = param.data.copy()
        faulty.flat[element] = flip_float_register(
            float(faulty.flat[element]), bit_index)
        entry.model.swap_parameter(target, faulty)
        futures += [server.submit(r.kind, r.payload, max_len=r.max_len)
                    for r in requests[half:]]
        server.drain()
        results: List[Any] = []
        errors = 0
        for future in futures:
            try:
                results.append(future.result(timeout=300.0))
            except Exception as error:
                # Expected when recovery fails; counted, not dropped.
                _HARVEST_ERRORS.labels(site="bench.fault_recovery",
                                       exc=type(error).__name__).inc()
                errors += 1
                results.append(None)
        stats = server.stats.snapshot()
    resilience = stats["resilience"]
    token_identical = (errors == 0 and
                       all(_same_result(a, b)
                           for a, b in zip(expected, results)))
    return {
        "config": {
            "model": model, "num_requests": num_requests,
            "max_batch": max_batch, "max_len": max_len, "seed": seed,
            "quant": getattr(quant, "label", quant and str(quant)),
        },
        "injected": {"tensor": target, "bit_index": bit_index,
                     "element": element},
        "token_identical": token_identical,
        "failed_requests": stats["requests"]["failed"],
        "detected": resilience["faults_detected"] >= 1,
        "restored": resilience["restores"] >= 1,
        "retried": resilience["retries"] >= 1,
        "resilience": resilience,
    }


def measure_scrub_overhead(model: str = "transformer",
                           concurrency: int = 8, num_requests: int = 48,
                           max_batch: int = 16, max_wait_ms: float = 5.0,
                           seed: int = 0, max_len: Optional[int] = 32,
                           repeats: int = 3,
                           scrub_interval_s: float = 0.05) -> Dict:
    """p50 latency cost of scrubbing: baseline vs scrub-enabled server.

    The scrub-enabled run uses the integrity machinery alone (per-batch
    CRC verify + an aggressive periodic daemon; the Sanitizer probe is
    off — it instruments every op and is priced separately): this is the
    "scrubbing enabled" configuration the <5% p50 acceptance gate
    covers.  Best-of-``repeats`` p50 on both sides on the same warm
    pool/request mix.
    """
    pool = ModelPool()
    pool.get(model)                   # warm before either timed path
    requests = build_requests(model, num_requests, seed=seed,
                              max_len=max_len)

    def best_p50(resilience: Optional[ResilienceConfig]) -> Dict:
        best: Optional[Dict] = None
        for _ in range(repeats):
            server = InferenceServer(pool, max_batch=max_batch,
                                     max_wait_ms=max_wait_ms,
                                     resilience=resilience)
            with server:
                _submit_all(server, requests, concurrency)
                server.drain()
            snapshot = server.stats.snapshot()
            if best is None or (snapshot["latency"]["p50_ms"]
                                < best["latency"]["p50_ms"]):
                best = snapshot
        return best

    baseline = best_p50(None)
    scrub_config = ResilienceConfig(scrub_interval_s=scrub_interval_s,
                                    verify_batches=True, probe=False)
    scrubbed = best_p50(scrub_config)
    base_p50 = baseline["latency"]["p50_ms"]
    scrub_p50 = scrubbed["latency"]["p50_ms"]
    return {
        "config": {
            "model": model, "concurrency": concurrency,
            "num_requests": num_requests, "max_batch": max_batch,
            "max_wait_ms": max_wait_ms, "max_len": max_len, "seed": seed,
            "repeats": repeats, "scrub_interval_s": scrub_interval_s,
        },
        "baseline_p50_ms": base_p50,
        "scrubbed_p50_ms": scrub_p50,
        "p50_overhead": round(scrub_p50 / base_p50 - 1.0, 4)
        if base_p50 else 0.0,
        "scrub_counters": scrubbed["resilience"],
    }


def measure_obs_overhead(model: str = "transformer",
                         concurrency: int = 8, num_requests: int = 48,
                         max_batch: int = 16, max_wait_ms: float = 5.0,
                         seed: int = 0, max_len: Optional[int] = 32,
                         repeats: int = 3) -> Dict:
    """p50 latency cost of the metrics spine on the serve micro-bench.

    End-to-end A/B timing cannot resolve this overhead: the serve p50
    jitters several percent run to run (batch-formation timing under
    thread scheduling), while the spine's true cost is microseconds per
    request.  So the measurement is split:

    1. the serve micro-benchmark (best-of-``repeats`` p50 with the
       registry enabled, the shipping configuration) sets the latency
       budget, and
    2. one request's worth of instrument calls — the ``ServerStats``
       mirror events plus the three tracer spans the engine emits — is
       micro-timed in a tight loop, once with the registry recording
       and once disabled via :func:`repro.obs.disabled` (every
       instrument reduced to one attribute read + branch).  The
       ``ServerStats`` dict/lock work runs identically on both sides,
       so the difference isolates the obs mirror: child lock + float
       adds, span ring appends, histogram bisects.

    ``p50_overhead`` is that per-request cost as a fraction of the p50;
    the committed benchmark gates it below 2% (measured well under
    0.1%) — the spine must be cheap enough to leave on.
    """
    pool = ModelPool()
    pool.get(model)                   # warm before the timed runs
    requests = build_requests(model, num_requests, seed=seed,
                              max_len=max_len)

    def one_p50() -> float:
        server = InferenceServer(pool, max_batch=max_batch,
                                 max_wait_ms=max_wait_ms)
        with server:
            _submit_all(server, requests, concurrency)
            server.drain()
        return server.stats.latency.summary()["p50_ms"]

    one_p50()                         # warm untimed
    p50_ms = min(one_p50() for _ in range(repeats))

    stats = ServerStats()
    iters = 20_000

    def bundle_cost_us() -> float:
        """Mean microseconds for one request's instrumentation."""
        t0 = time.perf_counter()
        for _ in range(iters):
            stats.record_submit()
            stats.record_batch(max_batch)   # >= actual (1/batch amortized)
            stats.record_done(0.01, 0.001)
            obs.TRACER.record("serve.queue", 0.0, 0.001, trace_id="bench")
            obs.TRACER.record("serve.batch", 0.0, 0.01, trace_id="bench",
                              size=max_batch)
            obs.TRACER.record("serve.request", 0.0, 0.01, trace_id="bench",
                              kind="bench", outcome="ok")
        return (time.perf_counter() - t0) / iters * 1e6

    bundle_cost_us()                  # warm untimed
    enabled_us = min(bundle_cost_us() for _ in range(repeats))
    with obs.disabled():
        disabled_us = min(bundle_cost_us() for _ in range(repeats))
    cost_us = max(0.0, enabled_us - disabled_us)
    return {
        "config": {
            "model": model, "concurrency": concurrency,
            "num_requests": num_requests, "max_batch": max_batch,
            "max_wait_ms": max_wait_ms, "max_len": max_len, "seed": seed,
            "repeats": repeats, "bundle_iters": iters,
        },
        "p50_ms": p50_ms,
        "enabled_bundle_us": round(enabled_us, 3),
        "disabled_bundle_us": round(disabled_us, 3),
        "obs_cost_per_request_us": round(cost_us, 3),
        "p50_overhead": round(cost_us / (p50_ms * 1e3), 6)
        if p50_ms else 0.0,
    }


def check_equivalence(models: Sequence[str] = ("transformer", "seq2seq",
                                               "resnet"),
                      num_requests: int = 12, concurrency: int = 6,
                      max_batch: int = 4, seed: int = 0,
                      quant: Optional[object] = None,
                      max_len: Optional[int] = 16) -> Dict[str, bool]:
    """Token-identity of micro-batched vs serial decode, per family.

    Runs under ``deterministic_matmul`` on both sides (server workers
    via ``deterministic=True``), so any mismatch is a real batching bug,
    not BLAS shape-dependent rounding.
    """
    pool = ModelPool(quant=quant)
    verdicts: Dict[str, bool] = {}
    for model in models:
        entry = pool.get(model)
        requests = build_requests(model, num_requests, seed=seed,
                                  max_len=max_len)
        with deterministic_matmul():
            expected = serial_reference(entry, requests)
        server = InferenceServer(pool, max_batch=max_batch,
                                 max_wait_ms=20.0, deterministic=True)
        with server:
            actual = _submit_all(server, requests, concurrency)
        verdicts[model] = all(_same_result(a, b)
                              for a, b in zip(expected, actual))
    return verdicts
