"""Thread-safe serving metrics: counters, latency percentiles, histograms.

The paper motivates AdaptivFloat by the efficiency of *deployed*
inference (Table 4 budgets 81.2 us per inference on the accelerator);
the serving engine therefore measures itself the way a deployment
would: request/batch counters, queue-depth high-water marks, a
batch-size histogram (how well the scheduler coalesces), and latency
percentiles split into queue wait vs. total.

All mutation goes through one lock; reads (:meth:`ServerStats.snapshot`)
produce a plain JSON-safe dict so benchmarks can embed it verbatim in
``BENCH_serve.json``.

Every ``record_*`` call is also mirrored into the process-wide
:mod:`repro.obs` registry (``repro_serve_*`` families), so the same
events that feed this per-server snapshot are scrapeable via the
Prometheus/JSON exporters; :meth:`ServerStats.snapshot` embeds the
registry dump under the ``"obs"`` key.  With the registry disabled the
mirror costs one branch per event.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from .. import obs
from ..obs.registry import SIZE_BUCKETS

__all__ = ["LatencyRecorder", "ServerStats"]

#: Latency samples kept per recorder; enough for every benchmark in the
#: repo while bounding memory for long-running servers (beyond the cap,
#: new samples overwrite the oldest — percentile estimates stay recent).
_SAMPLE_CAP = 100_000

# ---- process-wide obs mirror of the per-server counters ----------------
_REQUESTS = obs.counter(
    "repro_serve_requests_total",
    "Request lifecycle events across every InferenceServer in the "
    "process.", ("event",))
_REQ_SUBMITTED = _REQUESTS.labels(event="submitted")
_REQ_COMPLETED = _REQUESTS.labels(event="completed")
_REQ_FAILED = _REQUESTS.labels(event="failed")
_REQ_REJECTED = _REQUESTS.labels(event="rejected")
_REQ_DEADLINE = _REQUESTS.labels(event="deadline_expired")
_REQ_DEGRADED = _REQUESTS.labels(event="degraded_rejected")
_QUEUE_DEPTH = obs.gauge(
    "repro_serve_queue_depth", "In-flight requests (submitted, not yet "
    "resolved), summed over servers.")
_QUEUE_PEAK = obs.gauge(
    "repro_serve_queue_depth_peak", "High-water mark of any one server's "
    "queue depth.")
_BATCHES = obs.counter(
    "repro_serve_batches_total", "Micro-batches dispatched by the "
    "scheduler.")
_BATCH_SIZE = obs.histogram(
    "repro_serve_batch_size", "Requests coalesced per dispatched "
    "micro-batch.", buckets=SIZE_BUCKETS)
_LATENCY = obs.histogram(
    "repro_serve_latency_seconds", "Total request residence time "
    "(submit to resolve), successful requests only.")
_QUEUE_WAIT = obs.histogram(
    "repro_serve_queue_wait_seconds", "Submit-to-dispatch wait inside "
    "the scheduler, successful requests only.")
_SCRUB_PASSES = obs.counter(
    "repro_serve_scrubs_total", "Scrub passes observed by serving "
    "(periodic daemon + on-demand).")
_SCRUB_TENSORS = obs.counter(
    "repro_serve_scrub_tensors_total", "Tensors CRC-checked by scrub "
    "passes observed by serving.")
_SCRUB_SECONDS = obs.histogram(
    "repro_serve_scrub_seconds", "Duration of scrub passes observed by "
    "serving.")
_FAULTS = obs.counter(
    "repro_serve_faults_total", "Detected weight/numeric faults by "
    "detector kind.", ("kind",))
_RETRIES = obs.counter(
    "repro_serve_retries_total", "Micro-batch retry attempts after a "
    "detected-and-repaired fault.")
_RESTORES = obs.counter(
    "repro_serve_restores_total", "Tensors repaired from golden streams, "
    "as observed by serving.")
_RECOVERED = obs.counter(
    "repro_serve_recovered_batches_total", "Micro-batches that survived "
    "a fault through retry.")
_UNCORRECTABLE = obs.counter(
    "repro_serve_uncorrectable_total", "Faults the scrubber could not "
    "repair (corrupted golden or retries exhausted).")
_DEGRADATION = obs.gauge(
    "repro_serve_degradation_state", "Circuit-breaker degradation: "
    "0=ok, 1=half-open, 2=open.")

#: Breaker state -> numeric gauge level.
_DEGRADATION_LEVELS = {"ok": 0.0, "closed": 0.0, "half-open": 1.0,
                       "open": 2.0}


class LatencyRecorder:
    """Ring buffer of latency samples with percentile summaries."""

    def __init__(self, cap: int = _SAMPLE_CAP) -> None:
        # cap=0 used to slip through and blow up later inside record()
        # with a ZeroDivisionError on the ring modulo; reject it here.
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self._cap = cap
        self._samples: List[float] = []
        self._next = 0
        self.count = 0
        self.total = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self._samples) < self._cap:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self._cap

    def summary(self) -> Optional[Dict[str, float]]:
        """Windowed ``{mean, p50, p95, p99, max}`` in ms, or None if empty.

        Every statistic describes the *same* population: the (up to)
        ``cap`` most recent samples in the ring.  Mixing the lifetime
        mean with windowed percentiles (as an earlier version did) made
        the summary internally inconsistent once the ring wrapped — a
        latency regression would move the percentiles while a long calm
        history pinned the mean.  The lifetime request count survives
        under the separate ``count_lifetime`` key; ``window`` is the
        sample count the other fields were computed over.  A 1-sample
        window is well-defined: every percentile equals the sample.
        """
        if not self._samples:
            return None
        arr = np.asarray(self._samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
        return {
            "mean_ms": round(float(arr.mean()) * 1e3, 4),
            "p50_ms": round(float(p50) * 1e3, 4),
            "p95_ms": round(float(p95) * 1e3, 4),
            "p99_ms": round(float(p99) * 1e3, 4),
            "max_ms": round(float(arr.max()) * 1e3, 4),
            "window": int(arr.size),
            "count_lifetime": self.count,
        }


class ServerStats:
    """Aggregated counters for one :class:`~repro.serve.InferenceServer`.

    ``record_*`` methods are called from client threads (submit), the
    scheduler (dispatch), and workers (completion); every one takes the
    internal lock, so a :meth:`snapshot` observes a consistent view.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.batches = 0
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.batch_histogram: Dict[int, int] = {}
        self.latency = LatencyRecorder()
        self.queue_wait = LatencyRecorder()
        # ---- resilience (self-healing serving path) --------------------
        self.scrubs = 0                    # scrub passes (periodic+on-demand)
        self.scrub_tensors = 0             # tensors CRC-checked
        self.scrub_time_s = 0.0
        self.faults_detected = 0
        self.fault_kinds: Dict[str, int] = {}   # crc / probe / exception
        self.retries = 0                   # micro-batch retry attempts
        self.restores = 0                  # tensors repaired from golden
        self.recovered_batches = 0         # batches that survived a fault
        self.uncorrectable = 0             # faults the scrubber couldn't fix
        self.deadline_expired = 0
        self.degraded_rejections = 0       # submits shed by the breaker
        self.degradation = "ok"            # "ok" | breaker state when tripped

    # ------------------------------------------------------------ mutation
    def record_submit(self) -> None:
        with self._lock:
            self.submitted += 1
            self.queue_depth += 1
            self.queue_depth_peak = max(self.queue_depth_peak,
                                        self.queue_depth)
            peak = self.queue_depth_peak
        _REQ_SUBMITTED.inc()
        _QUEUE_DEPTH.inc()
        _QUEUE_PEAK.set_max(peak)

    def record_reject(self) -> None:
        with self._lock:
            self.rejected += 1
        _REQ_REJECTED.inc()

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batch_histogram[size] = self.batch_histogram.get(size, 0) + 1
        _BATCHES.inc()
        _BATCH_SIZE.observe(size)

    def record_done(self, latency_s: float, queue_wait_s: float,
                    failed: bool = False) -> None:
        with self._lock:
            self.queue_depth -= 1
            if failed:
                self.failed += 1
            else:
                self.completed += 1
                self.latency.record(latency_s)
                self.queue_wait.record(queue_wait_s)
        _QUEUE_DEPTH.dec()
        if failed:
            _REQ_FAILED.inc()
        else:
            _REQ_COMPLETED.inc()
            _LATENCY.observe(latency_s)
            _QUEUE_WAIT.observe(queue_wait_s)

    # -------------------------------------------------------- resilience
    def record_scrub(self, checked: int, restored: int, uncorrectable: int,
                     duration_s: float) -> None:
        with self._lock:
            self.scrubs += 1
            self.scrub_tensors += checked
            self.scrub_time_s += duration_s
            self.restores += restored
            self.uncorrectable += uncorrectable
        _SCRUB_PASSES.inc()
        _SCRUB_TENSORS.inc(checked)
        _SCRUB_SECONDS.observe(duration_s)
        if restored:
            _RESTORES.inc(restored)
        if uncorrectable:
            _UNCORRECTABLE.inc(uncorrectable)

    def record_fault(self, kind: str) -> None:
        with self._lock:
            self.faults_detected += 1
            self.fault_kinds[kind] = self.fault_kinds.get(kind, 0) + 1
        _FAULTS.labels(kind=kind).inc()

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1
        _RETRIES.inc()

    def record_recovered(self) -> None:
        with self._lock:
            self.recovered_batches += 1
        _RECOVERED.inc()

    def record_uncorrectable(self) -> None:
        with self._lock:
            self.uncorrectable += 1
        _UNCORRECTABLE.inc()

    def record_deadline(self) -> None:
        with self._lock:
            self.deadline_expired += 1
        _REQ_DEADLINE.inc()

    def record_degraded_rejection(self) -> None:
        with self._lock:
            self.degraded_rejections += 1
        _REQ_DEGRADED.inc()

    def set_degradation(self, state: str) -> None:
        with self._lock:
            self.degradation = state
        _DEGRADATION.set(_DEGRADATION_LEVELS.get(state, 2.0))

    # ------------------------------------------------------------- reading
    def snapshot(self) -> Dict:
        """JSON-safe summary of everything recorded so far.

        The ``"obs"`` key carries the process-wide registry dump
        (:func:`repro.obs.snapshot`), so any record embedding this
        snapshot — ``BENCH_serve.json`` in particular — also embeds
        every metric family in the process.
        """
        obs_dump = obs.snapshot()
        with self._lock:
            histogram = {str(size): count for size, count
                         in sorted(self.batch_histogram.items())}
            mean_batch = (sum(size * count for size, count
                              in self.batch_histogram.items())
                          / self.batches) if self.batches else 0.0
            return {
                "requests": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "rejected": self.rejected,
                },
                "queue": {
                    "depth": self.queue_depth,
                    "depth_peak": self.queue_depth_peak,
                },
                "batches": {
                    "count": self.batches,
                    "mean_size": round(mean_batch, 3),
                    "histogram": histogram,
                },
                "latency": self.latency.summary(),
                "queue_wait": self.queue_wait.summary(),
                "resilience": {
                    "scrubs": self.scrubs,
                    "scrub_tensors": self.scrub_tensors,
                    "scrub_time_s": round(self.scrub_time_s, 6),
                    "faults_detected": self.faults_detected,
                    "fault_kinds": dict(sorted(self.fault_kinds.items())),
                    "retries": self.retries,
                    "restores": self.restores,
                    "recovered_batches": self.recovered_batches,
                    "uncorrectable": self.uncorrectable,
                    "deadline_expired": self.deadline_expired,
                    "degraded_rejections": self.degraded_rejections,
                    "degradation": self.degradation,
                },
                "obs": obs_dump,
            }
