"""Shared warm-model pool: build once, quantize once, serve many.

A serving process must not pay model construction, checkpoint loading,
or weight quantization per request.  :class:`ModelPool` resolves each
model family once (optionally from the trained on-disk checkpoint cache,
optionally with fake-quantizers attached) and hands every worker the
same instance:

* **Weight quantization is memoized across requests** — the attached
  :class:`~repro.nn.quantize.WeightFakeQuant` caches the quantized
  array per weight tensor keyed on ``Parameter.version``, so a frozen
  served model quantizes each weight exactly once for its whole
  lifetime.  :meth:`ModelPool.weight_cache_stats` exposes the hit/miss
  counters as a serving metric.
* **Warmup** primes that memo (and any lazy kernel tables) with one
  tiny inference at build time, keeping the first real request off the
  cold path.

Sharing one model across worker threads is safe for inference: eval
mode is stateless (dropout is identity, BatchNorm uses running stats),
decodes run under the thread-local ``no_grad``, and the weight-quant
memo only ever re-derives identical entries.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Optional, Tuple

from ..experiments.common import get_bundle, trained_model
from ..nn import no_grad
from ..nn.quantize import QuantSpec, attach_weight_quantizers
from ..rng import fresh_rng

__all__ = ["ModelPool", "PooledModel"]


@dataclasses.dataclass
class PooledModel:
    """One resolved (model, task) pair plus its provenance."""

    name: str
    model: object
    task: object
    profile: Optional[str]
    quant: Optional[QuantSpec]
    fp32_score: Optional[float]


class ModelPool:
    """Lazy, thread-safe registry of warm inference models.

    ``profile=None`` (the default) builds untrained seeded models —
    instant, deterministic, and exactly what throughput benchmarks
    need (decode cost does not depend on the weight values).  A named
    profile (``"tiny"``/``"fast"``/``"full"``) routes through
    :func:`repro.experiments.common.trained_model`, which trains on
    first use and caches the checkpoint on disk.

    ``quant=("adaptivfloat", 8)`` (or a :class:`QuantSpec`) attaches
    weight fake-quantizers so the pool serves the quantized model zoo.
    """

    def __init__(self, profile: Optional[str] = None,
                 quant: Optional[object] = None, seed: int = 1,
                 warmup: bool = True) -> None:
        if isinstance(quant, tuple):
            quant = QuantSpec(quant[0], int(quant[1]))
        self.profile = profile
        self.quant: Optional[QuantSpec] = quant
        self.seed = seed
        self.warmup = warmup
        self._lock = threading.Lock()
        self._models: Dict[str, PooledModel] = {}
        self._building: Dict[str, threading.Lock] = {}

    # ------------------------------------------------------------ resolving
    def get(self, name: str) -> PooledModel:
        """The warm model for ``name``, building it on first use.

        Concurrent first requests for the same name serialize on a
        per-name build lock; requests for other names are not blocked.
        """
        with self._lock:
            entry = self._models.get(name)
            if entry is not None:
                return entry
            build_lock = self._building.setdefault(name, threading.Lock())
        with build_lock:
            with self._lock:
                entry = self._models.get(name)
                if entry is not None:
                    return entry
            entry = self._build(name)
            with self._lock:
                self._models[name] = entry
            return entry

    def _build(self, name: str) -> PooledModel:
        bundle = get_bundle(name)
        if self.profile is None:
            model, task = bundle.build(self.seed)
            score: Optional[float] = None
        else:
            model, task, score = trained_model(name, self.profile)
        if self.quant is not None:
            attach_weight_quantizers(model, self.quant)
        model.eval()
        entry = PooledModel(name=name, model=model, task=task,
                            profile=self.profile, quant=self.quant,
                            fp32_score=score)
        if self.warmup:
            self._warm(entry)
        return entry

    def _warm(self, entry: PooledModel) -> None:
        """One tiny inference to prime weight-quant memo and lazy tables."""
        rng = fresh_rng(self.seed)
        model = entry.model
        with no_grad():
            if entry.name == "transformer":
                cfg = model.config
                src = rng.integers(3, cfg.src_vocab,
                                   size=(1, 2)).astype("int64")
                model.greedy_decode(src, max_len=2)
            elif entry.name == "seq2seq":
                cfg = model.config
                frames = rng.standard_normal(
                    (1, 2, cfg.input_dim)).astype("float32")
                model.greedy_decode(frames, max_len=2)
            else:
                cfg = model.config
                images = rng.standard_normal(
                    (1, cfg.in_channels, cfg.image_size, cfg.image_size)
                ).astype("float32")
                model(images)

    # ------------------------------------------------------------- metrics
    def warm_models(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._models))

    def weight_cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-model WeightFakeQuant hit/miss counters (empty when the
        pool serves unquantized models)."""
        from ..nn.quantize import weight_quant_cache_stats
        out: Dict[str, Dict[str, int]] = {}
        if self.quant is None:
            return out
        with self._lock:
            entries = list(self._models.items())
        for name, entry in entries:
            out[name] = weight_quant_cache_stats(entry.model)
        return out
