"""Shared warm-model pool: build once, quantize once, serve many.

A serving process must not pay model construction, checkpoint loading,
or weight quantization per request.  :class:`ModelPool` resolves each
model family once (optionally from the trained on-disk checkpoint cache,
optionally with fake-quantizers attached) and hands every worker the
same instance:

* **Weight quantization is memoized across requests** — the attached
  :class:`~repro.nn.quantize.WeightFakeQuant` caches the quantized
  array per weight tensor keyed on ``Parameter.version``, so a frozen
  served model quantizes each weight exactly once for its whole
  lifetime.  :meth:`ModelPool.weight_cache_stats` exposes the hit/miss
  counters as a serving metric.
* **Warmup** primes that memo (and any lazy kernel tables) with one
  tiny inference at build time, keeping the first real request off the
  cold path.

Sharing one model across worker threads is safe for inference: eval
mode is stateless (dropout is identity, BatchNorm uses running stats),
decodes run under the thread-local ``no_grad``, and the weight-quant
memo only ever re-derives identical entries.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Optional, Tuple

from .. import obs
from ..experiments.common import get_bundle, trained_model
from ..nn import no_grad
from ..nn.quantize import QuantSpec, attach_weight_quantizers
from ..obs import clock
from ..rng import fresh_rng

__all__ = ["ModelPool", "PooledModel"]

_HITS = obs.counter(
    "repro_pool_hits_total", "Pool lookups served from an already-warm "
    "model.", ("model",))
_BUILDS = obs.counter(
    "repro_pool_builds_total", "Cold model builds (construct + quantize "
    "+ warm).", ("model",))
_BUILD_SECONDS = obs.histogram(
    "repro_pool_build_seconds", "Wall time of cold model builds.",
    ("model",), buckets=obs.WIDE_SECONDS_BUCKETS)


@dataclasses.dataclass
class PooledModel:
    """One resolved (model, task) pair plus its provenance."""

    name: str
    model: object
    task: object
    profile: Optional[str]
    quant: Optional[QuantSpec]
    fp32_score: Optional[float]
    #: golden-copy integrity scrubber (populated when the pool scrubs;
    #: see :meth:`ModelPool.enable_scrubbing`).
    scrubber: Optional[object] = None


class ModelPool:
    """Lazy, thread-safe registry of warm inference models.

    ``profile=None`` (the default) builds untrained seeded models —
    instant, deterministic, and exactly what throughput benchmarks
    need (decode cost does not depend on the weight values).  A named
    profile (``"tiny"``/``"fast"``/``"full"``) routes through
    :func:`repro.experiments.common.trained_model`, which trains on
    first use and caches the checkpoint on disk.

    ``quant=("adaptivfloat", 8)`` (or a :class:`QuantSpec`) attaches
    weight fake-quantizers so the pool serves the quantized model zoo.
    """

    def __init__(self, profile: Optional[str] = None,
                 quant: Optional[object] = None, seed: int = 1,
                 warmup: bool = True, scrub: bool = False) -> None:
        if isinstance(quant, tuple):
            quant = QuantSpec(quant[0], int(quant[1]))
        self.profile = profile
        self.quant: Optional[QuantSpec] = quant
        self.seed = seed
        self.warmup = warmup
        self.scrub = scrub
        self._lock = threading.Lock()
        self._models: Dict[str, PooledModel] = {}
        self._building: Dict[str, threading.Lock] = {}

    # ------------------------------------------------------------ resolving
    def get(self, name: str) -> PooledModel:
        """The warm model for ``name``, building it on first use.

        Concurrent first requests for the same name serialize on a
        per-name build lock; requests for other names are not blocked.
        """
        with self._lock:
            entry = self._models.get(name)
            if entry is not None:
                _HITS.labels(model=name).inc()
                return entry
            build_lock = self._building.setdefault(name, threading.Lock())
        with build_lock:
            with self._lock:
                entry = self._models.get(name)
                if entry is not None:
                    _HITS.labels(model=name).inc()
                    return entry
            # A build failure (e.g. the quantizer raising mid-attach, a
            # checkpoint load dying) must leave *no trace*: the entry is
            # only published after `_build` returned a fully-warmed
            # model, so the exception propagates to this caller, every
            # concurrently-waiting `get` retries the build cleanly, and
            # nothing half-constructed is ever served.
            t0 = clock.now()
            entry = self._build(name)
            _BUILDS.labels(model=name).inc()
            _BUILD_SECONDS.labels(model=name).observe(clock.now() - t0)
            with self._lock:
                self._models[name] = entry
            return entry

    def _build(self, name: str) -> PooledModel:
        bundle = get_bundle(name)
        if self.profile is None:
            model, task = bundle.build(self.seed)
            score: Optional[float] = None
        else:
            model, task, score = trained_model(name, self.profile)
        if self.quant is not None:
            attach_weight_quantizers(model, self.quant)
        model.eval()
        entry = PooledModel(name=name, model=model, task=task,
                            profile=self.profile, quant=self.quant,
                            fp32_score=score)
        if self.warmup:
            self._warm(entry)
        if self.scrub:
            entry.scrubber = self._make_scrubber(entry)
        return entry

    def _make_scrubber(self, entry: PooledModel):
        # Snapshot *after* warmup: the weights are final (warm forwards
        # never mutate parameters) and known-good, which is the golden
        # copy's correctness precondition.
        from ..resilience.scrub import WeightScrubber
        return WeightScrubber(entry.model, quant=self.quant)

    def _warm(self, entry: PooledModel) -> None:
        """One tiny inference to prime weight-quant memo and lazy tables."""
        rng = fresh_rng(self.seed)
        model = entry.model
        with no_grad():
            if entry.name == "transformer":
                cfg = model.config
                src = rng.integers(3, cfg.src_vocab,
                                   size=(1, 2)).astype("int64")
                model.greedy_decode(src, max_len=2)
            elif entry.name == "seq2seq":
                cfg = model.config
                frames = rng.standard_normal(
                    (1, 2, cfg.input_dim)).astype("float32")
                model.greedy_decode(frames, max_len=2)
            else:
                cfg = model.config
                images = rng.standard_normal(
                    (1, cfg.in_channels, cfg.image_size, cfg.image_size)
                ).astype("float32")
                model(images)

    # ---------------------------------------------------------- scrubbing
    def enable_scrubbing(self) -> None:
        """Turn on golden-copy scrubbing for current and future models.

        Models built from now on snapshot at build time; already-built
        models snapshot immediately (their weights are presumed good at
        the moment scrubbing is enabled).  Idempotent.
        """
        self.scrub = True
        with self._lock:
            entries = list(self._models.values())
        for entry in entries:
            if entry.scrubber is None:
                entry.scrubber = self._make_scrubber(entry)

    def scrubbers(self) -> Dict[str, object]:
        """Name -> :class:`~repro.resilience.scrub.WeightScrubber` for
        every built model that has one."""
        with self._lock:
            return {name: entry.scrubber
                    for name, entry in self._models.items()
                    if entry.scrubber is not None}

    def scrub_counters(self) -> Dict[str, Dict]:
        """Per-model scrubber lifetime counters (JSON-safe)."""
        return {name: scrubber.counters()
                for name, scrubber in sorted(self.scrubbers().items())}

    # ------------------------------------------------------------- metrics
    def warm_models(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._models))

    def weight_cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-model WeightFakeQuant hit/miss counters (empty when the
        pool serves unquantized models)."""
        from ..nn.quantize import weight_quant_cache_stats
        out: Dict[str, Dict[str, int]] = {}
        if self.quant is None:
            return out
        with self._lock:
            entries = list(self._models.items())
        for name, entry in entries:
            out[name] = weight_quant_cache_stats(entry.model)
        return out
