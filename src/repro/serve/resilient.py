"""Self-healing serving policy: scrub cadence, quarantine, degradation.

This module holds the *policy* objects the engine consults when built
with a :class:`ResilienceConfig`; the mechanism lives in
:class:`repro.resilience.scrub.WeightScrubber` (golden streams + CRC
verify + in-place restore) and the quarantine/retry loop in
:mod:`repro.serve.engine`.

The fault model is the one the campaign engine measures (a bit upset in
a stored weight, :mod:`repro.resilience.inject`), and the response is
layered the way a deployment would layer it:

1. **Detect** — per-batch CRC verification of the served model against
   its golden streams (deterministic: catches *every* weight corruption,
   including finite SDC the numeric sanitizer cannot see), plus an
   optional :class:`~repro.nn.sanitize.Sanitizer` probe over the batch
   forward (NaN / Inf / clamp-storm findings quarantine the batch even
   when the corruption lives outside the scrubbed parameters).
2. **Correct** — scrub-on-fault restores the corrupted tensors and the
   micro-batch retries with bounded exponential backoff; per-request
   deadlines bound how long a client can be held through retries.
3. **Degrade** — repeated *uncorrectable* faults (a corrupted golden
   copy, or retries exhausted) trip a circuit breaker; while it is open
   the server sheds load with the typed
   :class:`~repro.serve.engine.ServerDegraded` error instead of
   computing garbage.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Optional

from .. import obs
from ..obs import clock

__all__ = ["ResilienceConfig", "CircuitBreaker", "PROBE_KINDS"]

#: Breaker state changes (to="open" | "half-open" | "closed").  A
#: transition is counted once, when it actually happens — half-open is
#: detected lazily inside the next state query after the dwell.
_TRANSITIONS = obs.counter(
    "repro_serve_breaker_transitions_total",
    "Circuit breaker state transitions by destination state.", ("to",))

#: Sanitizer finding kinds that quarantine a micro-batch.  These are the
#: "batch output went numerically wrong" signals; underflow-flood is
#: excluded (a range-fit artifact, not a fault signature).
PROBE_KINDS = frozenset(
    ["forward-nan", "forward-overflow", "quantize-nan", "clamp-storm"])


@dataclasses.dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the self-healing serving path.

    Attributes
    ----------
    scrub_interval_s:
        Cadence of the background scrub daemon sweeping every pooled
        model.  ``None`` disables the daemon (faults are then caught by
        the per-batch verify / probe only).
    verify_batches:
        CRC-verify the served model's weights after every micro-batch.
        This is the deterministic detector: a corrupted weight can
        produce perfectly finite-but-wrong tokens that no numeric probe
        flags; the checksum always notices.
    probe:
        Run each micro-batch under a collecting
        :class:`~repro.nn.sanitize.Sanitizer` and quarantine on
        :data:`PROBE_KINDS` findings.  Catches in-flight numeric faults
        beyond the scrubbed weights at the cost of per-op checking.
    max_retries:
        Retries per micro-batch after a detected-and-repaired fault
        before the batch is declared uncorrectable.
    retry_backoff_s / retry_backoff_max_s:
        Exponential backoff between retries: attempt ``k`` sleeps
        ``min(retry_backoff_s * 2**k, retry_backoff_max_s)``.
    request_deadline_s:
        Default per-request deadline measured from submit; ``None``
        means no deadline.  Expired requests fail with
        :class:`~repro.serve.engine.DeadlineExceeded` instead of riding
        further retries.
    breaker_threshold:
        Consecutive uncorrectable faults that open the circuit breaker.
    breaker_reset_s:
        Open-state dwell time before the breaker half-opens and lets a
        trial batch through.
    clamp_storm:
        Clamped-fraction threshold forwarded to the probe Sanitizer.
    """

    scrub_interval_s: Optional[float] = 1.0
    verify_batches: bool = True
    probe: bool = True
    max_retries: int = 2
    retry_backoff_s: float = 0.005
    retry_backoff_max_s: float = 0.25
    request_deadline_s: Optional[float] = None
    breaker_threshold: int = 3
    breaker_reset_s: float = 5.0
    clamp_storm: float = 0.25

    def __post_init__(self) -> None:
        if self.scrub_interval_s is not None and self.scrub_interval_s <= 0:
            raise ValueError("scrub_interval_s must be positive or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_s < 0 or self.retry_backoff_max_s < 0:
            raise ValueError("retry backoff must be >= 0")
        if self.request_deadline_s is not None \
                and self.request_deadline_s <= 0:
            raise ValueError("request_deadline_s must be positive or None")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_reset_s < 0:
            raise ValueError("breaker_reset_s must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based)."""
        return min(self.retry_backoff_s * (2.0 ** attempt),
                   self.retry_backoff_max_s)


class CircuitBreaker:
    """Classic three-state breaker over uncorrectable serving faults.

    * **closed** — normal operation; uncorrectable faults increment a
      consecutive-failure counter, any success resets it.
    * **open** — the counter hit ``threshold``; :meth:`allow` answers
      False (the server sheds load) until ``reset_s`` has elapsed.
    * **half-open** — after the dwell, one trial is allowed through; a
      success closes the breaker, another uncorrectable fault reopens
      it (restarting the dwell).

    Thread-safe; called from worker threads, the scrub daemon, and
    ``submit`` on client threads.  All dwell timing reads the shared
    :mod:`repro.obs.clock` (the same domain as the engine's deadline
    stamps); state transitions increment
    ``repro_serve_breaker_transitions_total{to=...}``.
    """

    def __init__(self, threshold: int, reset_s: float) -> None:
        self.threshold = threshold
        self.reset_s = reset_s
        self._lock = threading.Lock()
        self._consecutive = 0
        self._state = "closed"
        self._opened_at = 0.0

    # ------------------------------------------------------------- queries
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == "open" \
                and clock.now() - self._opened_at >= self.reset_s:
            self._state = "half-open"
            _TRANSITIONS.labels(to="half-open").inc()
        return self._state

    def allow(self) -> bool:
        """May a request/batch proceed right now?"""
        with self._lock:
            return self._state_locked() != "open"

    # ------------------------------------------------------------ outcomes
    def record_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            if self._state != "closed":
                _TRANSITIONS.labels(to="closed").inc()
            self._state = "closed"

    def record_uncorrectable(self) -> None:
        with self._lock:
            self._consecutive += 1
            state = self._state_locked()
            if state == "half-open" or (state == "closed" and
                                        self._consecutive >= self.threshold):
                self._state = "open"
                self._opened_at = clock.now()
                _TRANSITIONS.labels(to="open").inc()
