"""Synthetic datasets substituting for WMT'17 / LibriSpeech / ImageNet."""

from .images import ImageTask
from .speech import SpeechTask
from .translation import TranslationTask

__all__ = ["ImageTask", "SpeechTask", "TranslationTask"]
