"""Synthetic machine-translation task for the Transformer (DESIGN.md §2).

Substitute for WMT'17 En-De: the "translation" of a source sentence is
its reversal with a per-sentence cyclic token shift keyed by the first
source token.  The mapping is deterministic (so a trained FP32 model
reaches a high, stable BLEU — the reference point quantization then
degrades) yet requires genuine sequence-to-sequence machinery: global
reordering (attention) and a content-dependent transformation.

Token conventions: 0 = PAD, 1 = BOS, 2 = EOS, content tokens start at 3.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

import numpy as np

from ..rng import fresh_rng

__all__ = ["TranslationBatch", "TranslationTask", "PAD_ID", "BOS_ID", "EOS_ID"]

PAD_ID, BOS_ID, EOS_ID = 0, 1, 2
_CONTENT_START = 3


@dataclasses.dataclass
class TranslationBatch:
    """One teacher-forcing batch."""

    src: np.ndarray        # (B, T_src) int64, EOS-terminated, PAD-padded
    tgt_in: np.ndarray     # (B, T_tgt) decoder input (BOS-prefixed)
    tgt_out: np.ndarray    # (B, T_tgt) decoder target (EOS-terminated)


class TranslationTask:
    """Deterministic reverse-and-shift translation data generator."""

    def __init__(self, vocab: int = 64, min_len: int = 4, max_len: int = 12,
                 seed: int = 0, keyed_shift: bool = False) -> None:
        if vocab <= _CONTENT_START + 1:
            raise ValueError(f"vocab too small: {vocab}")
        self.vocab = vocab
        self.min_len = min_len
        self.max_len = max_len
        self.seed = seed
        self.keyed_shift = keyed_shift
        self._content = vocab - _CONTENT_START

    # ------------------------------------------------------------ sampling
    def translate(self, src_tokens: List[int]) -> List[int]:
        """Reference translation of one unpadded source token list.

        With ``keyed_shift`` the cyclic shift depends on the first source
        token (a harder, content-conditioned mapping); by default it is a
        fixed shift, which a small Transformer masters quickly while still
        requiring attention-driven global reordering.
        """
        if self.keyed_shift:
            shift = (src_tokens[0] - _CONTENT_START) % 5 + 1
        else:
            shift = 7
        out = [(t - _CONTENT_START + shift) % self._content + _CONTENT_START
               for t in reversed(src_tokens)]
        return out

    def sample_pairs(self, count: int,
                     rng: np.random.Generator) -> List[Tuple[List[int], List[int]]]:
        pairs = []
        for _ in range(count):
            length = int(rng.integers(self.min_len, self.max_len + 1))
            src = rng.integers(_CONTENT_START, self.vocab, size=length).tolist()
            pairs.append((src, self.translate(src)))
        return pairs

    # ------------------------------------------------------------- batching
    def make_batch(self, pairs: List[Tuple[List[int], List[int]]]) -> TranslationBatch:
        src_len = max(len(s) for s, _ in pairs) + 1
        tgt_len = max(len(t) for _, t in pairs) + 1
        batch = len(pairs)
        src = np.full((batch, src_len), PAD_ID, dtype=np.int64)
        tgt_in = np.full((batch, tgt_len), PAD_ID, dtype=np.int64)
        tgt_out = np.full((batch, tgt_len), PAD_ID, dtype=np.int64)
        for i, (s, t) in enumerate(pairs):
            src[i, :len(s)] = s
            src[i, len(s)] = EOS_ID
            tgt_in[i, 0] = BOS_ID
            tgt_in[i, 1:len(t) + 1] = t
            tgt_out[i, :len(t)] = t
            tgt_out[i, len(t)] = EOS_ID
        return TranslationBatch(src, tgt_in, tgt_out)

    def batches(self, batch_size: int, num_batches: int,
                seed_offset: int = 0) -> Iterator[TranslationBatch]:
        rng = fresh_rng(self.seed + seed_offset)
        for _ in range(num_batches):
            yield self.make_batch(self.sample_pairs(batch_size, rng))

    def eval_set(self, count: int = 128,
                 seed_offset: int = 10_000) -> TranslationBatch:
        """A fixed held-out evaluation batch."""
        rng = fresh_rng(self.seed + seed_offset)
        return self.make_batch(self.sample_pairs(count, rng))

    @staticmethod
    def strip(ids: np.ndarray) -> List[List[int]]:
        """Strip EOS/PAD from decoded or reference id matrices."""
        out = []
        for row in np.asarray(ids):
            tokens = []
            for t in row:
                if t in (EOS_ID, PAD_ID):
                    break
                tokens.append(int(t))
            out.append(tokens)
        return out
