"""Synthetic image-classification task for the ResNet (DESIGN.md §2).

Substitute for ImageNet: each class has a fixed smooth template image
(band-limited random Fourier pattern); samples are the class template
under a random circular shift, per-sample gain jitter, and additive
Gaussian noise.  Shifts force the classifier to learn translation-
tolerant convolutional features (global pooling + conv, not a pixel
lookup), and the noise level keeps FP32 top-1 below 100% so quantization
deltas are visible.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

import numpy as np

from ..rng import fresh_rng

__all__ = ["ImageBatch", "ImageTask"]


@dataclasses.dataclass
class ImageBatch:
    images: np.ndarray   # (B, C, H, W) float32
    labels: np.ndarray   # (B,) int64


class ImageTask:
    """Template-plus-noise synthetic image classification generator."""

    def __init__(self, num_classes: int = 10, channels: int = 3,
                 image_size: int = 16, noise: float = 3.5,
                 max_shift: int = 3, seed: int = 0) -> None:
        self.num_classes = num_classes
        self.channels = channels
        self.image_size = image_size
        self.noise = noise
        self.max_shift = max_shift
        self.seed = seed
        self._templates = self._build_templates()

    def _build_templates(self) -> np.ndarray:
        """Smooth unit-variance class templates from low-frequency Fourier
        modes (keeps classes distinguishable under shifts and noise)."""
        rng = fresh_rng(self.seed + 555)
        size = self.image_size
        yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        templates = np.zeros((self.num_classes, self.channels, size, size))
        for c in range(self.num_classes):
            for ch in range(self.channels):
                img = np.zeros((size, size))
                for _ in range(4):  # a few low-frequency modes
                    fy, fx = rng.integers(1, 4, size=2)
                    phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
                    img += rng.normal() * np.sin(
                        2 * np.pi * fy * yy / size + phase_y) * np.sin(
                        2 * np.pi * fx * xx / size + phase_x)
                img = (img - img.mean()) / (img.std() + 1e-8)
                templates[c, ch] = img
        return templates.astype(np.float32)

    # ------------------------------------------------------------ sampling
    def sample(self, count: int, rng: np.random.Generator) -> ImageBatch:
        labels = rng.integers(0, self.num_classes, size=count)
        images = self._templates[labels].copy()
        gains = rng.uniform(0.8, 1.2, size=(count, 1, 1, 1)).astype(np.float32)
        images *= gains
        for i in range(count):
            dy, dx = rng.integers(-self.max_shift, self.max_shift + 1, size=2)
            images[i] = np.roll(images[i], (dy, dx), axis=(1, 2))
        images += rng.normal(scale=self.noise,
                             size=images.shape).astype(np.float32)
        return ImageBatch(images.astype(np.float32), labels.astype(np.int64))

    def batches(self, batch_size: int, num_batches: int,
                seed_offset: int = 0) -> Iterator[ImageBatch]:
        rng = fresh_rng(self.seed + seed_offset)
        for _ in range(num_batches):
            yield self.sample(batch_size, rng)

    def eval_set(self, count: int = 256, seed_offset: int = 10_000) -> ImageBatch:
        rng = fresh_rng(self.seed + seed_offset)
        return self.sample(count, rng)
