"""Synthetic speech-to-text task for the seq2seq model (DESIGN.md §2).

Substitute for LibriSpeech: each "word" token has a fixed prototype
acoustic vector (a frozen codebook); an utterance emits 2-3 noisy frames
per token (duration jitter + additive Gaussian noise), and the model
must transcribe the token sequence.  Noise keeps the FP32 word error
rate realistic and nonzero, so quantization-induced WER increases are
measurable in both directions.

Token conventions: 0 = PAD, 1 = BOS, 2 = EOS, content tokens start at 3.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

import numpy as np

from ..rng import fresh_rng

__all__ = ["SpeechBatch", "SpeechTask", "PAD_ID", "BOS_ID", "EOS_ID"]

PAD_ID, BOS_ID, EOS_ID = 0, 1, 2
_CONTENT_START = 3


@dataclasses.dataclass
class SpeechBatch:
    """One teacher-forcing batch."""

    frames: np.ndarray     # (B, T_frames, feat) float32
    tgt_in: np.ndarray     # (B, T_tgt) decoder input (BOS-prefixed)
    tgt_out: np.ndarray    # (B, T_tgt) decoder target (EOS-terminated)
    refs: List[List[int]]  # unpadded reference transcripts


class SpeechTask:
    """Prototype-frame synthetic ASR data generator."""

    def __init__(self, vocab: int = 32, feat_dim: int = 16, min_words: int = 3,
                 max_words: int = 8, noise: float = 0.25, seed: int = 0) -> None:
        self.vocab = vocab
        self.feat_dim = feat_dim
        self.min_words = min_words
        self.max_words = max_words
        self.noise = noise
        self.seed = seed
        codebook_rng = fresh_rng(seed + 777)
        # Unit-norm prototypes keep per-frame SNR uniform across tokens.
        protos = codebook_rng.normal(size=(vocab, feat_dim))
        self._protos = (protos / np.linalg.norm(protos, axis=1, keepdims=True)
                        ).astype(np.float32)

    # ------------------------------------------------------------ sampling
    def sample_utterances(self, count: int, rng: np.random.Generator
                          ) -> List[Tuple[np.ndarray, List[int]]]:
        utterances = []
        for _ in range(count):
            words = int(rng.integers(self.min_words, self.max_words + 1))
            tokens = rng.integers(_CONTENT_START, self.vocab, size=words).tolist()
            frames = []
            for token in tokens:
                duration = int(rng.integers(2, 4))
                proto = self._protos[token]
                frames.extend(
                    proto + rng.normal(scale=self.noise, size=self.feat_dim)
                    for _ in range(duration))
            utterances.append((np.asarray(frames, dtype=np.float32), tokens))
        return utterances

    # ------------------------------------------------------------- batching
    def make_batch(self, utterances) -> SpeechBatch:
        frame_len = max(len(f) for f, _ in utterances)
        tgt_len = max(len(t) for _, t in utterances) + 1
        batch = len(utterances)
        frames = np.zeros((batch, frame_len, self.feat_dim), dtype=np.float32)
        tgt_in = np.full((batch, tgt_len), PAD_ID, dtype=np.int64)
        tgt_out = np.full((batch, tgt_len), PAD_ID, dtype=np.int64)
        refs = []
        for i, (f, tokens) in enumerate(utterances):
            frames[i, :len(f)] = f
            tgt_in[i, 0] = BOS_ID
            tgt_in[i, 1:len(tokens) + 1] = tokens
            tgt_out[i, :len(tokens)] = tokens
            tgt_out[i, len(tokens)] = EOS_ID
            refs.append(list(tokens))
        return SpeechBatch(frames, tgt_in, tgt_out, refs)

    def batches(self, batch_size: int, num_batches: int,
                seed_offset: int = 0) -> Iterator[SpeechBatch]:
        rng = fresh_rng(self.seed + seed_offset)
        for _ in range(num_batches):
            yield self.make_batch(self.sample_utterances(batch_size, rng))

    def eval_set(self, count: int = 128, seed_offset: int = 10_000) -> SpeechBatch:
        rng = fresh_rng(self.seed + seed_offset)
        return self.make_batch(self.sample_utterances(count, rng))

    @staticmethod
    def strip(ids: np.ndarray) -> List[List[int]]:
        """Strip EOS/PAD from decoded id matrices."""
        out = []
        for row in np.asarray(ids):
            tokens = []
            for t in row:
                if t in (EOS_ID, PAD_ID):
                    break
                tokens.append(int(t))
            out.append(tokens)
        return out
