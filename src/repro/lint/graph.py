"""Project-wide symbol table, import graph, and call graph.

The v1 rules see one file at a time, which is exactly the blind spot the
cross-module invariants live in: a cell function imported from another
module, a ``Generator`` re-exported through a package ``__init__``, a
quantizer subclass defined two hops away from its base.  This module
builds — once per lint run — a :class:`ProjectGraph` over every parsed
:class:`~repro.lint.core.FileContext`:

* a **symbol table** per module (top-level defs, classes, assignments,
  nested defs),
* an **import graph** (local name -> defining module/symbol, including
  relative imports and re-export chains), and
* a **call graph** (function -> resolved callee symbols) with a
  reachability query.

Resolution is deliberately conservative: anything dynamic (``getattr``,
star imports, monkey-patching) resolves to ``None`` and rules must treat
"unknown" as "do not flag".  Names that leave the project (``numpy``,
stdlib) resolve to an :class:`ExternalRef` carrying the fully-qualified
dotted target so rules can still match on it.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "SymbolDef", "ExternalRef", "ModuleTable", "ProjectGraph",
    "module_name_for",
]

#: Maximum re-export / alias hops followed during resolution; chains this
#: deep are almost certainly cyclic.
_MAX_HOPS = 16


def module_name_for(path: str) -> str:
    """Dotted module name of a repo-relative source path.

    ``src/repro/formats/base.py`` -> ``repro.formats.base`` (the name the
    package is importable as); everything else keeps its directory prefix
    (``tests/lint/test_core.py`` -> ``tests.lint.test_core``) so the
    graph can hold test/tool/example modules without collisions.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclasses.dataclass(frozen=True)
class SymbolDef:
    """A name defined in a project module."""

    module: str
    name: str
    kind: str                 # "function" | "class" | "assign"
    lineno: int
    path: str
    nested: bool = False      # defined inside a function body
    #: AST node of the definition (FunctionDef/ClassDef, or the Assign
    #: *value* expression for plain assignments).
    node: Optional[ast.AST] = dataclasses.field(
        default=None, compare=False, hash=False, repr=False)

    @property
    def qualified(self) -> str:
        return f"{self.module}.{self.name}"


@dataclasses.dataclass(frozen=True)
class ExternalRef:
    """A name that resolves outside the project (stdlib, numpy, ...)."""

    target: str               # fully-qualified dotted path, e.g. "numpy.random.default_rng"


Resolved = Union[SymbolDef, ExternalRef]


class ModuleTable:
    """Symbol table of one module: defs, imports, and aliases."""

    def __init__(self, name: str, path: str, tree: ast.AST,
                 is_package: bool) -> None:
        self.name = name
        self.path = path
        self.tree = tree
        self.is_package = is_package
        #: top-level function/class defs and plain-Name assignments
        self.defs: Dict[str, SymbolDef] = {}
        #: defs nested inside functions (unpicklable as cell callables)
        self.nested_defs: Dict[str, SymbolDef] = {}
        #: local name -> ("module", "pkg.mod") or ("symbol", "pkg.mod", "orig")
        self.imports: Dict[str, Tuple[str, ...]] = {}
        #: modules star-imported at top level (resolution falls back here)
        self.star_imports: List[str] = []
        self._collect(tree)

    # ----------------------------------------------------------- building
    def _collect(self, tree: ast.AST) -> None:
        for node in self._top_level(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_def(node.name, "function", node)
                self._collect_nested(node)
            elif isinstance(node, ast.ClassDef):
                self._add_def(node.name, "class", node)
            elif isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    target = item.name if item.asname else item.name.split(".")[0]
                    self.imports[local] = ("module", target)
            elif isinstance(node, ast.ImportFrom):
                self._add_import_from(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        value = getattr(node, "value", None)
                        self.defs[target.id] = SymbolDef(
                            module=self.name, name=target.id, kind="assign",
                            lineno=node.lineno, path=self.path, node=value)

    def _top_level(self, tree: ast.AST) -> Iterator[ast.stmt]:
        """Module-level statements, looking through If/Try guards."""
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, ast.If):
                for sub in node.body + node.orelse:
                    yield from self._expand(sub)
            elif isinstance(node, ast.Try):
                for sub in (node.body + node.orelse + node.finalbody
                            + [s for h in node.handlers for s in h.body]):
                    yield from self._expand(sub)
            else:
                yield node

    def _expand(self, node: ast.stmt) -> Iterator[ast.stmt]:
        if isinstance(node, (ast.If, ast.Try)):
            yield from self._top_level_wrapper(node)
        else:
            yield node

    def _top_level_wrapper(self, node: ast.stmt) -> Iterator[ast.stmt]:
        # one nesting level of If/Try inside If/Try is enough in practice
        for sub in ast.iter_child_nodes(node):
            if isinstance(sub, ast.stmt):
                yield sub

    def _add_def(self, name: str, kind: str, node: ast.AST) -> None:
        self.defs[name] = SymbolDef(module=self.name, name=name, kind=kind,
                                    lineno=node.lineno, path=self.path,
                                    node=node)

    def _collect_nested(self, fn: ast.AST) -> None:
        for child in ast.walk(fn):
            if child is not fn and isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.nested_defs[child.name] = SymbolDef(
                    module=self.name, name=child.name, kind="function",
                    lineno=child.lineno, path=self.path, nested=True,
                    node=child)

    def _add_import_from(self, node: ast.ImportFrom) -> None:
        base = self._resolve_relative(node.module, node.level)
        if base is None:
            return
        for item in node.names:
            if item.name == "*":
                self.star_imports.append(base)
                continue
            local = item.asname or item.name
            self.imports[local] = ("symbol", base, item.name)

    def _resolve_relative(self, module: Optional[str], level: int) -> Optional[str]:
        if level == 0:
            return module
        parts = self.name.split(".")
        if not self.is_package:
            parts = parts[:-1]
        drop = level - 1
        if drop > len(parts):
            return None
        base = parts[:len(parts) - drop] if drop else parts
        if module:
            base = base + module.split(".")
        return ".".join(base) if base else None


class ProjectGraph:
    """Cross-module symbol resolution + call graph over parsed files.

    Built from the ``FileContext`` objects of one lint run (anything with
    ``.path``, ``.tree`` attributes works).
    """

    def __init__(self, contexts: Iterable) -> None:
        self.modules: Dict[str, ModuleTable] = {}
        self.paths: Dict[str, str] = {}          # path -> module name
        for ctx in contexts:
            name = module_name_for(ctx.path)
            is_package = ctx.path.endswith("__init__.py")
            table = ModuleTable(name, ctx.path, ctx.tree, is_package)
            self.modules[name] = table
            self.paths[ctx.path] = name
        self._callees: Dict[str, Set[str]] = {}

    # ---------------------------------------------------------- resolution
    def table_for_path(self, path: str) -> Optional[ModuleTable]:
        name = self.paths.get(path.replace("\\", "/"))
        return self.modules.get(name) if name else None

    def resolve(self, module: str, dotted: str,
                _hops: int = 0) -> Optional[Resolved]:
        """Resolve a (possibly dotted) name used in ``module``.

        Returns the defining :class:`SymbolDef`, an :class:`ExternalRef`
        for names leaving the project, or ``None`` when resolution is
        ambiguous/dynamic.
        """
        if _hops > _MAX_HOPS:
            return None
        table = self.modules.get(module)
        if table is None:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]

        if head in table.defs and not rest:
            return self._follow_alias(table.defs[head], _hops)
        if head in table.defs:                   # attribute on a local def
            return None
        if head in table.imports:
            entry = table.imports[head]
            if entry[0] == "module":
                return self._resolve_in_module(entry[1], rest, _hops + 1)
            _, src_mod, src_name = entry
            return self._resolve_in_module(src_mod, [src_name] + rest,
                                           _hops + 1)
        for star in table.star_imports:
            hit = self._resolve_in_module(star, parts, _hops + 1)
            if hit is not None:
                return hit
        return None

    def _resolve_in_module(self, module: str, parts: Sequence[str],
                           _hops: int) -> Optional[Resolved]:
        if _hops > _MAX_HOPS:
            return None
        if module not in self.modules:
            # left the project: keep the fully-qualified dotted target
            return ExternalRef(".".join([module] + list(parts)))
        if not parts:
            return ExternalRef(module)           # a project module object
        table = self.modules[module]
        head, rest = parts[0], list(parts[1:])
        if head in table.defs:
            sym = table.defs[head]
            return self._follow_alias(sym, _hops) if not rest else None
        if head in table.imports:
            entry = table.imports[head]
            if entry[0] == "module":
                return self._resolve_in_module(entry[1], rest, _hops + 1)
            _, src_mod, src_name = entry
            return self._resolve_in_module(src_mod, [src_name] + rest,
                                           _hops + 1)
        # maybe `head` is a submodule of a package
        sub = f"{module}.{head}"
        if sub in self.modules:
            return self._resolve_in_module(sub, rest, _hops + 1)
        for star in table.star_imports:
            hit = self._resolve_in_module(star, parts, _hops + 1)
            if hit is not None:
                return hit
        return None

    def _follow_alias(self, sym: SymbolDef, _hops: int) -> Optional[Resolved]:
        """Follow ``run = _impl``-style assignment aliases to the def."""
        if sym.kind != "assign" or _hops > _MAX_HOPS:
            return sym
        value = sym.node
        if isinstance(value, ast.Name):
            target = self.resolve(sym.module, value.id, _hops + 1)
            return target if target is not None else sym
        return sym

    # ---------------------------------------------------------- call graph
    def callees(self, sym: SymbolDef) -> Set[str]:
        """Qualified names of project functions called by ``sym``."""
        key = sym.qualified
        if key in self._callees:
            return self._callees[key]
        out: Set[str] = set()
        node = sym.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                chain = _dotted(call.func)
                if chain is None:
                    continue
                hit = self.resolve(sym.module, chain)
                if isinstance(hit, SymbolDef) and hit.kind in ("function",
                                                               "class"):
                    out.add(hit.qualified)
        self._callees[key] = out
        return out

    def lookup_qualified(self, qualified: str) -> Optional[SymbolDef]:
        module, _, name = qualified.rpartition(".")
        table = self.modules.get(module)
        if table is None:
            return None
        return table.defs.get(name) or table.nested_defs.get(name)

    def reachable(self, sym: SymbolDef) -> List[SymbolDef]:
        """Project functions/classes reachable from ``sym`` (BFS, sym first)."""
        seen: Set[str] = {sym.qualified}
        order: List[SymbolDef] = [sym]
        frontier = [sym]
        while frontier:
            current = frontier.pop()
            for callee in sorted(self.callees(current)):
                if callee in seen:
                    continue
                seen.add(callee)
                target = self.lookup_qualified(callee)
                if target is not None:
                    order.append(target)
                    frontier.append(target)
        return order


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
