"""The repo-specific ``reprocheck`` rules.

Each rule guards one determinism/correctness invariant this reproduction
depends on (see ``docs/static-analysis.md`` for the full write-up):

========  ==============================================================
ND001     unseeded RNG construction outside ``repro.rng`` helpers
DT001     missing explicit ``dtype=`` in ``formats``/``nn`` hot paths
AG001     ``Tensor.data`` / ``.grad`` mutation outside autodiff internals
PK001     non-module-level callable handed to the parallel sweep runner
API001    ``__all__`` vs actual public exports drift
CB001     ``Quantizer`` subclass bypassing the codebook fast path
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import FileContext, Finding, Rule, register

__all__ = [
    "UnseededRandomRule", "DtypeDriftRule", "AutogradMutationRule",
    "PicklabilityRule", "PublicApiDriftRule", "CodebookBypassRule",
]


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain (``np.random.rand``) or ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Names the given module is imported as (``numpy`` -> {``np``})."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module:
                    aliases.add(item.asname or item.name.split(".")[0])
    return aliases


def _from_imports(tree: ast.AST, module: str) -> Dict[str, str]:
    """Local name -> original name for ``from <module> import ...``."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module \
                and node.level == 0:
            for item in node.names:
                out[item.asname or item.name] = item.name
    return out


# ---------------------------------------------------------------------- ND001
#: numpy legacy global-state RNG entry points (always nondeterministic or
#: process-global, both of which break cell-cache byte-identity).
_NP_LEGACY = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "seed", "get_state", "set_state",
}
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "seed", "betavariate",
    "expovariate",
}


@register
class UnseededRandomRule(Rule):
    """ND001: RNG construction that is unseeded or uses process-global state.

    Cached sweep cells (``repro.experiments.runner``) assume every cell is
    a deterministic function of its descriptor; one unseeded generator
    breaks byte-identical re-runs.  Use ``repro.rng.default_rng`` /
    ``repro.rng.fresh_rng(seed)`` (or pass a ``Generator`` down).
    """

    id = "ND001"
    title = "unseeded or global-state RNG"
    rationale = ("breaks cell-cache byte-identity and run-to-run "
                 "determinism; route through repro.rng instead")

    #: the sanctioned seeded-RNG helper modules
    _EXEMPT = (("rng",), ("nn", "init"))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if any(ctx.in_package(*parts) for parts in self._EXEMPT):
            return
        numpy_names = _module_aliases(ctx.tree, "numpy")
        random_names = _module_aliases(ctx.tree, "random")
        np_random_from = _from_imports(ctx.tree, "numpy.random")
        random_from = _from_imports(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            # numpy.random.* via attribute access
            if len(parts) >= 3 and parts[0] in numpy_names \
                    and parts[1] == "random":
                fn = parts[2]
            elif len(parts) == 2 and parts[0] in np_random_from \
                    and np_random_from[parts[0]] == "random":
                fn = parts[1]  # from numpy import random; random.rand(...)
            elif len(parts) == 1 and parts[0] in np_random_from:
                fn = np_random_from[parts[0]]  # from numpy.random import x
            elif len(parts) >= 2 and parts[0] in random_names:
                if parts[1] in _STDLIB_RANDOM_FNS:
                    yield self.finding(
                        ctx, node,
                        f"stdlib 'random.{parts[1]}' uses hidden global "
                        "state; use repro.rng helpers with an explicit seed")
                continue
            elif len(parts) == 1 and parts[0] in random_from \
                    and random_from[parts[0]] in _STDLIB_RANDOM_FNS:
                yield self.finding(
                    ctx, node,
                    f"stdlib 'random.{random_from[parts[0]]}' uses hidden "
                    "global state; use repro.rng helpers with an explicit seed")
                continue
            else:
                continue
            if fn == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic; use repro.rng.default_rng(rng) "
                        "or fresh_rng(seed)")
            elif fn in _NP_LEGACY:
                yield self.finding(
                    ctx, node,
                    f"legacy 'np.random.{fn}' uses process-global state; "
                    "use an explicit np.random.Generator (repro.rng)")


# ---------------------------------------------------------------------- DT001
_CTOR_DTYPE_POS = {
    "zeros": 1, "ones": 1, "empty": 1,
    "full": 2, "arange": 3, "eye": 3, "linspace": 5,
}


@register
class DtypeDriftRule(Rule):
    """DT001: numpy array construction without an explicit ``dtype=``.

    In the number-format kernels and the NN substrate, implicit float64
    (or platform-dependent integer) defaults leak into comparisons that
    the paper's tables treat as format-quality differences.  Hot-path
    array constructors must pin their dtype.
    """

    id = "DT001"
    title = "array construction without explicit dtype"
    rationale = ("implicit float64<->float32 promotion skews RMS/BLEU/WER "
                 "comparisons between formats")

    def _in_scope(self, ctx: FileContext) -> bool:
        return ctx.in_package("formats") or ctx.in_package("nn")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        numpy_names = _module_aliases(ctx.tree, "numpy")
        if not numpy_names:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if len(parts) != 2 or parts[0] not in numpy_names:
                continue
            ctor = parts[1]
            if ctor not in _CTOR_DTYPE_POS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) > _CTOR_DTYPE_POS[ctor]:
                continue  # dtype passed positionally
            yield self.finding(
                ctx, node,
                f"np.{ctor}(...) without an explicit dtype in a "
                "formats/nn hot path; pin the dtype to prevent implicit "
                "promotion")


# ---------------------------------------------------------------------- AG001
@register
class AutogradMutationRule(Rule):
    """AG001: in-place mutation of ``Tensor.data`` / ``Tensor.grad``.

    Writing through ``.data``/``.grad`` outside the autodiff internals
    silently invalidates gradients of any live graph (QAR depends on
    them).  Whitelisted modules own those writes by design: the tensor
    itself, the optimizers, state loading, PTQ, and pruning.
    """

    id = "AG001"
    title = "Tensor.data/.grad mutated outside autodiff internals"
    rationale = "silently breaks reverse-mode gradients used by QAR"

    _WHITELIST = (
        ("nn", "tensor"), ("nn", "module"), ("nn", "optim"),
        ("nn", "checkpoint"), ("nn", "quantize"), ("nn", "prune"),
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.role == "tests":  # tests poke internals deliberately
            return
        if any(ctx.in_package(*parts) for parts in self._WHITELIST):
            return
        for node in ast.walk(ctx.tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                attr = self._mutated_attr(target)
                if attr is not None:
                    yield self.finding(
                        ctx, target,
                        f"assignment through '.{attr}' mutates autodiff "
                        "state; use the nn APIs (optimizer/quantize/"
                        "checkpoint) or detach first")

    @staticmethod
    def _mutated_attr(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            target = target.value  # x.data[...] = ...
        if isinstance(target, ast.Attribute) and target.attr in ("data", "grad"):
            return target.attr
        return None


# ---------------------------------------------------------------------- PK001
@register
class PicklabilityRule(Rule):
    """PK001: non-module-level callable handed to the parallel runner.

    ``run_cells(fn, ..., jobs=N)`` pickles ``fn`` into worker processes;
    lambdas, ``functools.partial`` objects over locals, and nested
    functions fail (or worse, capture unhashed state the cell cache
    cannot see).
    """

    id = "PK001"
    title = "unpicklable cell function passed to run_cells"
    rationale = "fails under --jobs; captured state bypasses the cell cache"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_names = self._module_level_names(ctx.tree)
        nested_defs = self._nested_def_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None or chain.split(".")[-1] != "run_cells":
                continue
            if not node.args:
                continue
            fn = node.args[0]
            if isinstance(fn, ast.Lambda):
                yield self.finding(
                    ctx, fn, "lambda passed to run_cells is unpicklable "
                    "under --jobs; use a module-level function")
            elif isinstance(fn, ast.Call):
                yield self.finding(
                    ctx, fn, "callable built at the call site passed to "
                    "run_cells; bind arguments into the cell descriptor "
                    "instead")
            elif isinstance(fn, ast.Name) and fn.id in nested_defs \
                    and fn.id not in module_names:
                yield self.finding(
                    ctx, fn, f"nested function '{fn.id}' passed to "
                    "run_cells is unpicklable under --jobs; move it to "
                    "module level")

    @staticmethod
    def _module_level_names(tree: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for item in node.names:
                    names.add((item.asname or item.name).split(".")[0])
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _nested_def_names(tree: ast.AST) -> Set[str]:
        nested: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is not node and isinstance(
                            child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nested.add(child.name)
        return nested


# --------------------------------------------------------------------- API001
@register
class PublicApiDriftRule(Rule):
    """API001: ``__all__`` out of sync with the module's actual exports.

    Both directions are drift: an ``__all__`` name that no longer exists
    breaks ``import *`` and the API tests; a public top-level def/class
    missing from ``__all__`` ships an undocumented export.
    """

    id = "API001"
    title = "__all__ vs public exports drift"
    rationale = "the public surface and __all__ must agree"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.role != "src":
            return
        exported = self._declared_all(ctx.tree)
        if exported is None:
            return
        all_node, names = exported
        bound = self._bound_names(ctx.tree)
        has_star = any(isinstance(n, ast.ImportFrom)
                       and any(a.name == "*" for a in n.names)
                       for n in ast.iter_child_nodes(ctx.tree))
        if not has_star:
            for name in names:
                if name not in bound:
                    yield self.finding(
                        ctx, all_node,
                        f"__all__ lists {name!r} which is not defined or "
                        "imported in the module")
        defs = self._public_defs(ctx.tree)
        for name, node in defs.items():
            if name not in names:
                yield self.finding(
                    ctx, node,
                    f"public symbol {name!r} is missing from __all__ "
                    "(add it or prefix with an underscore)")

    @staticmethod
    def _declared_all(tree: ast.AST
                      ) -> Optional[Tuple[ast.AST, List[str]]]:
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, ast.Assign) \
                    and any(isinstance(t, ast.Name) and t.id == "__all__"
                            for t in node.targets) \
                    and isinstance(node.value, (ast.List, ast.Tuple)):
                names = [elt.value for elt in node.value.elts
                         if isinstance(elt, ast.Constant)
                         and isinstance(elt.value, str)]
                return node, names
        return None

    @staticmethod
    def _bound_names(tree: ast.AST) -> Set[str]:
        bound: Set[str] = set()
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for item in node.names:
                    bound.add((item.asname or item.name).split(".")[0])
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                bound.add(elt.id)
            elif isinstance(node, (ast.If, ast.Try)):
                bound |= PublicApiDriftRule._bound_names(node)
        return bound

    @staticmethod
    def _public_defs(tree: ast.AST) -> Dict[str, ast.AST]:
        return {
            node.name: node for node in ast.iter_child_nodes(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))
            and not node.name.startswith("_")
        }


# --------------------------------------------------------------------- CB001
@register
class CodebookBypassRule(Rule):
    """CB001: a ``Quantizer`` subclass overriding the public quantize entry.

    The public ``quantize`` / ``quantize_with_params`` on the base class
    are the *only* places that consult the codebook fast path
    (:mod:`repro.formats.kernels`); a subclass overriding them silently
    forfeits the fast path and the bit-exactness contract.  Implement
    ``_quantize_analytic`` / ``_quantize_with_params_analytic`` (and
    ``codepoints`` / ``_affine_grid``) instead; gate ineligible configs
    by returning ``None`` from ``_codebook_key``.
    """

    id = "CB001"
    title = "Quantizer subclass bypasses the codebook fast path"
    rationale = ("overriding quantize()/quantize_with_params() skips "
                 "repro.formats.kernels and its bit-exactness contract")

    _BASES = {"Quantizer", "AdaptiveQuantizer"}
    _ENTRY_POINTS = {"quantize", "quantize_with_params"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.role == "tests" or ctx.in_package("formats", "base"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {b.split(".")[-1]
                          for b in map(_attr_chain, node.bases) if b}
            if not base_names & self._BASES:
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and item.name in self._ENTRY_POINTS:
                    yield self.finding(
                        ctx, item,
                        f"{node.name}.{item.name} overrides the codebook "
                        "fast-path entry point; implement the _analytic "
                        "hooks (and _codebook_key gating) instead")
