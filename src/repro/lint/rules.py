"""The repo-specific ``reprocheck`` rules.

Each rule guards one determinism/correctness invariant this reproduction
depends on (see ``docs/static-analysis.md`` for the full write-up).
Per-file rules (v1):

========  ==============================================================
ND001     unseeded RNG construction outside ``repro.rng`` helpers
DT001     missing explicit ``dtype=`` in ``formats``/``nn`` hot paths
AG001     ``Tensor.data`` / ``.grad`` mutation outside autodiff internals
PK001     non-module-level callable handed to the parallel sweep runner
API001    ``__all__`` vs actual public exports drift
CB001     ``Quantizer`` subclass bypassing the codebook fast path
========  ==============================================================

Project-wide rules (v2, built on :mod:`repro.lint.graph` and
:mod:`repro.lint.dataflow`):

========  ==============================================================
ND002     seed taint: Generators born outside ``repro.rng``, escaping to
          module scope, or seeded from ``hash()``/time/pid values
DT002     dtype propagation: silently mixed float32/float64 arithmetic
          in the ``formats``/``nn`` hot paths
PK002     call-graph picklability of ``run_cells`` submissions resolved
          across modules (lambda aliases, nested defs, nested dispatch)
CK001     cache-key purity: unordered/nondeterministic values flowing
          into ``cache.content_key``/``store_cached_json``/cell hashes
HW001     accumulator-overflow prover for the PE datapaths (exact-range
          abstract interpretation; see :mod:`repro.lint.ranges`)
========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import FileContext, Finding, Project, ProjectRule, Rule, register
from .dataflow import DataflowEngine, Env, TransferRules
from .graph import ExternalRef, ProjectGraph, SymbolDef

__all__ = [
    "UnseededRandomRule", "DtypeDriftRule", "AutogradMutationRule",
    "PicklabilityRule", "PublicApiDriftRule", "CodebookBypassRule",
    "SeedTaintRule", "DtypeFlowRule", "CallGraphPicklabilityRule",
    "CacheKeyPurityRule", "AccumulatorOverflowRule",
]


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute chain (``np.random.rand``) or ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Names the given module is imported as (``numpy`` -> {``np``})."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module:
                    aliases.add(item.asname or item.name.split(".")[0])
    return aliases


def _from_imports(tree: ast.AST, module: str) -> Dict[str, str]:
    """Local name -> original name for ``from <module> import ...``."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module \
                and node.level == 0:
            for item in node.names:
                out[item.asname or item.name] = item.name
    return out


# ---------------------------------------------------------------------- ND001
#: numpy legacy global-state RNG entry points (always nondeterministic or
#: process-global, both of which break cell-cache byte-identity).
_NP_LEGACY = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "seed", "get_state", "set_state",
}
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "seed", "betavariate",
    "expovariate",
}


@register
class UnseededRandomRule(Rule):
    """ND001: RNG construction that is unseeded or uses process-global state.

    Cached sweep cells (``repro.experiments.runner``) assume every cell is
    a deterministic function of its descriptor; one unseeded generator
    breaks byte-identical re-runs.  Use ``repro.rng.default_rng`` /
    ``repro.rng.fresh_rng(seed)`` (or pass a ``Generator`` down).
    """

    id = "ND001"
    title = "unseeded or global-state RNG"
    rationale = ("breaks cell-cache byte-identity and run-to-run "
                 "determinism; route through repro.rng instead")

    #: the sanctioned seeded-RNG helper modules
    _EXEMPT = (("rng",), ("nn", "init"))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if any(ctx.in_package(*parts) for parts in self._EXEMPT):
            return
        numpy_names = _module_aliases(ctx.tree, "numpy")
        random_names = _module_aliases(ctx.tree, "random")
        np_random_from = _from_imports(ctx.tree, "numpy.random")
        random_from = _from_imports(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            # numpy.random.* via attribute access
            if len(parts) >= 3 and parts[0] in numpy_names \
                    and parts[1] == "random":
                fn = parts[2]
            elif len(parts) == 2 and parts[0] in np_random_from \
                    and np_random_from[parts[0]] == "random":
                fn = parts[1]  # from numpy import random; random.rand(...)
            elif len(parts) == 1 and parts[0] in np_random_from:
                fn = np_random_from[parts[0]]  # from numpy.random import x
            elif len(parts) >= 2 and parts[0] in random_names:
                if parts[1] in _STDLIB_RANDOM_FNS:
                    yield self.finding(
                        ctx, node,
                        f"stdlib 'random.{parts[1]}' uses hidden global "
                        "state; use repro.rng helpers with an explicit seed")
                continue
            elif len(parts) == 1 and parts[0] in random_from \
                    and random_from[parts[0]] in _STDLIB_RANDOM_FNS:
                yield self.finding(
                    ctx, node,
                    f"stdlib 'random.{random_from[parts[0]]}' uses hidden "
                    "global state; use repro.rng helpers with an explicit seed")
                continue
            else:
                continue
            if fn == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic; use repro.rng.default_rng(rng) "
                        "or fresh_rng(seed)")
            elif fn in _NP_LEGACY:
                yield self.finding(
                    ctx, node,
                    f"legacy 'np.random.{fn}' uses process-global state; "
                    "use an explicit np.random.Generator (repro.rng)")


# ---------------------------------------------------------------------- DT001
_CTOR_DTYPE_POS = {
    "zeros": 1, "ones": 1, "empty": 1,
    "full": 2, "arange": 3, "eye": 3, "linspace": 5,
}


@register
class DtypeDriftRule(Rule):
    """DT001: numpy array construction without an explicit ``dtype=``.

    In the number-format kernels and the NN substrate, implicit float64
    (or platform-dependent integer) defaults leak into comparisons that
    the paper's tables treat as format-quality differences.  Hot-path
    array constructors must pin their dtype.
    """

    id = "DT001"
    title = "array construction without explicit dtype"
    rationale = ("implicit float64<->float32 promotion skews RMS/BLEU/WER "
                 "comparisons between formats")

    def _in_scope(self, ctx: FileContext) -> bool:
        return ctx.in_package("formats") or ctx.in_package("nn")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        numpy_names = _module_aliases(ctx.tree, "numpy")
        if not numpy_names:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if len(parts) != 2 or parts[0] not in numpy_names:
                continue
            ctor = parts[1]
            if ctor not in _CTOR_DTYPE_POS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) > _CTOR_DTYPE_POS[ctor]:
                continue  # dtype passed positionally
            yield self.finding(
                ctx, node,
                f"np.{ctor}(...) without an explicit dtype in a "
                "formats/nn hot path; pin the dtype to prevent implicit "
                "promotion")


# ---------------------------------------------------------------------- AG001
@register
class AutogradMutationRule(Rule):
    """AG001: in-place mutation of ``Tensor.data`` / ``Tensor.grad``.

    Writing through ``.data``/``.grad`` outside the autodiff internals
    silently invalidates gradients of any live graph (QAR depends on
    them).  Whitelisted modules own those writes by design: the tensor
    itself, the optimizers, state loading, PTQ, and pruning.
    """

    id = "AG001"
    title = "Tensor.data/.grad mutated outside autodiff internals"
    rationale = "silently breaks reverse-mode gradients used by QAR"

    _WHITELIST = (
        ("nn", "tensor"), ("nn", "module"), ("nn", "optim"),
        ("nn", "checkpoint"), ("nn", "quantize"), ("nn", "prune"),
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.role == "tests":  # tests poke internals deliberately
            return
        if any(ctx.in_package(*parts) for parts in self._WHITELIST):
            return
        for node in ast.walk(ctx.tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                attr = self._mutated_attr(target)
                if attr is not None:
                    yield self.finding(
                        ctx, target,
                        f"assignment through '.{attr}' mutates autodiff "
                        "state; use the nn APIs (optimizer/quantize/"
                        "checkpoint) or detach first")

    @staticmethod
    def _mutated_attr(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            target = target.value  # x.data[...] = ...
        if isinstance(target, ast.Attribute) and target.attr in ("data", "grad"):
            return target.attr
        return None


# ---------------------------------------------------------------------- PK001
@register
class PicklabilityRule(Rule):
    """PK001: non-module-level callable handed to the parallel runner.

    ``run_cells(fn, ..., jobs=N)`` pickles ``fn`` into worker processes;
    lambdas, ``functools.partial`` objects over locals, and nested
    functions fail (or worse, capture unhashed state the cell cache
    cannot see).
    """

    id = "PK001"
    title = "unpicklable cell function passed to run_cells"
    rationale = "fails under --jobs; captured state bypasses the cell cache"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_names = self._module_level_names(ctx.tree)
        nested_defs = self._nested_def_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None or chain.split(".")[-1] != "run_cells":
                continue
            if not node.args:
                continue
            fn = node.args[0]
            if isinstance(fn, ast.Lambda):
                yield self.finding(
                    ctx, fn, "lambda passed to run_cells is unpicklable "
                    "under --jobs; use a module-level function")
            elif isinstance(fn, ast.Call):
                yield self.finding(
                    ctx, fn, "callable built at the call site passed to "
                    "run_cells; bind arguments into the cell descriptor "
                    "instead")
            elif isinstance(fn, ast.Name) and fn.id in nested_defs \
                    and fn.id not in module_names:
                yield self.finding(
                    ctx, fn, f"nested function '{fn.id}' passed to "
                    "run_cells is unpicklable under --jobs; move it to "
                    "module level")

    @staticmethod
    def _module_level_names(tree: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for item in node.names:
                    names.add((item.asname or item.name).split(".")[0])
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _nested_def_names(tree: ast.AST) -> Set[str]:
        nested: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is not node and isinstance(
                            child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nested.add(child.name)
        return nested


# --------------------------------------------------------------------- API001
@register
class PublicApiDriftRule(Rule):
    """API001: ``__all__`` out of sync with the module's actual exports.

    Both directions are drift: an ``__all__`` name that no longer exists
    breaks ``import *`` and the API tests; a public top-level def/class
    missing from ``__all__`` ships an undocumented export.
    """

    id = "API001"
    title = "__all__ vs public exports drift"
    rationale = "the public surface and __all__ must agree"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.role != "src":
            return
        exported = self._declared_all(ctx.tree)
        if exported is None:
            return
        all_node, names = exported
        bound = self._bound_names(ctx.tree)
        has_star = any(isinstance(n, ast.ImportFrom)
                       and any(a.name == "*" for a in n.names)
                       for n in ast.iter_child_nodes(ctx.tree))
        if not has_star:
            for name in names:
                if name not in bound:
                    yield self.finding(
                        ctx, all_node,
                        f"__all__ lists {name!r} which is not defined or "
                        "imported in the module")
        defs = self._public_defs(ctx.tree)
        for name, node in defs.items():
            if name not in names:
                yield self.finding(
                    ctx, node,
                    f"public symbol {name!r} is missing from __all__ "
                    "(add it or prefix with an underscore)")

    @staticmethod
    def _declared_all(tree: ast.AST
                      ) -> Optional[Tuple[ast.AST, List[str]]]:
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, ast.Assign) \
                    and any(isinstance(t, ast.Name) and t.id == "__all__"
                            for t in node.targets) \
                    and isinstance(node.value, (ast.List, ast.Tuple)):
                names = [elt.value for elt in node.value.elts
                         if isinstance(elt, ast.Constant)
                         and isinstance(elt.value, str)]
                return node, names
        return None

    @staticmethod
    def _bound_names(tree: ast.AST) -> Set[str]:
        bound: Set[str] = set()
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for item in node.names:
                    bound.add((item.asname or item.name).split(".")[0])
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                bound.add(elt.id)
            elif isinstance(node, (ast.If, ast.Try)):
                bound |= PublicApiDriftRule._bound_names(node)
        return bound

    @staticmethod
    def _public_defs(tree: ast.AST) -> Dict[str, ast.AST]:
        return {
            node.name: node for node in ast.iter_child_nodes(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))
            and not node.name.startswith("_")
        }


# --------------------------------------------------------------------- CB001
@register
class CodebookBypassRule(Rule):
    """CB001: a ``Quantizer`` subclass overriding the public quantize entry.

    The public ``quantize`` / ``quantize_with_params`` on the base class
    are the *only* places that consult the codebook fast path
    (:mod:`repro.formats.kernels`); a subclass overriding them silently
    forfeits the fast path and the bit-exactness contract.  Implement
    ``_quantize_analytic`` / ``_quantize_with_params_analytic`` (and
    ``codepoints`` / ``_affine_grid``) instead; gate ineligible configs
    by returning ``None`` from ``_codebook_key``.
    """

    id = "CB001"
    title = "Quantizer subclass bypasses the codebook fast path"
    rationale = ("overriding quantize()/quantize_with_params() skips "
                 "repro.formats.kernels and its bit-exactness contract")

    _BASES = {"Quantizer", "AdaptiveQuantizer"}
    _ENTRY_POINTS = {"quantize", "quantize_with_params"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.role == "tests" or ctx.in_package("formats", "base"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {b.split(".")[-1]
                          for b in map(_attr_chain, node.bases) if b}
            if not base_names & self._BASES:
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and item.name in self._ENTRY_POINTS:
                    yield self.finding(
                        ctx, item,
                        f"{node.name}.{item.name} overrides the codebook "
                        "fast-path entry point; implement the _analytic "
                        "hooks (and _codebook_key gating) instead")


# ===================================================== v2 project-wide rules
def _dedup(findings: List[Finding]) -> Iterator[Finding]:
    seen: Set[Tuple[str, str, int, int, str]] = set()
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, f.line, f.col, f.message)
        if key not in seen:
            seen.add(key)
            yield f


#: call targets that construct a Generator (fully-qualified)
_RNG_CTORS_EXTERNAL = {"numpy.random.default_rng", "numpy.random.Generator"}
_RNG_CTORS_PROJECT = {("repro.rng", "default_rng"), ("repro.rng", "fresh_rng")}

#: value sources that are nondeterministic across processes/runs
_TAINT_CALLS = {
    "hash": "hash", "id": "id",
    "time.time": "time", "time.perf_counter": "time",
    "time.monotonic": "time", "time.time_ns": "time",
    "datetime.datetime.now": "time", "datetime.datetime.utcnow": "time",
    "datetime.datetime.today": "time", "datetime.date.today": "time",
    "os.getpid": "pid", "os.urandom": "entropy",
    "uuid.uuid1": "uuid", "uuid.uuid4": "uuid",
}


def _is_rng_ctor(resolved) -> bool:
    if isinstance(resolved, ExternalRef):
        return resolved.target in _RNG_CTORS_EXTERNAL
    if isinstance(resolved, SymbolDef):
        return (resolved.module, resolved.name) in _RNG_CTORS_PROJECT
    return False


class _TaintTransfer(TransferRules):
    """Tags values produced by nondeterministic sources (shared by
    ND002 and CK001); subclasses add their own sources and sinks."""

    def __init__(self, graph: ProjectGraph, module: str,
                 sink: "Callable[[ast.Call, Env, DataflowEngine], None]"
                 ) -> None:
        self.graph = graph
        self.module = module
        self.sink = sink

    def taint_of_call(self, call: ast.Call) -> Optional[str]:
        chain = _attr_chain(call.func)
        if chain is None:
            return None
        tag = _TAINT_CALLS.get(chain)
        if tag in ("hash", "id"):
            # only the *builtin* hash/id taint; a local def shadows it
            if self.graph.resolve(self.module, chain) is not None:
                return None
        return tag

    def eval_expr(self, expr, env, engine):
        if isinstance(expr, ast.Call):
            tag = self.taint_of_call(expr)
            if tag is not None:
                value = frozenset({tag})
                for arg in expr.args:
                    value |= engine.eval_expr(arg, env)
                return value
        return None

    def on_call(self, call, env, engine):
        self.sink(call, env, engine)


@register
class SeedTaintRule(ProjectRule):
    """ND002: Generator lifecycle and seed-taint tracking across modules.

    Three invariants, all feeding the cell cache's byte-identity story:

    * Generators must be *born* in :mod:`repro.rng` — a direct
      ``np.random.default_rng(seed)`` elsewhere in ``src`` bypasses the
      sanctioned constructors (and their seed conventions);
    * a Generator bound at **module scope** is hidden shared state:
      its stream position depends on import order and on how many cells
      ran before, so identical cells stop being identical;
    * a seed built from ``hash()`` / ``id()`` / time / pid is
      process-dependent (``PYTHONHASHSEED``!), making the "seeded"
      generator nondeterministic anyway — tracked by dataflow so
      ``seed + hash(name) % k`` is caught through intermediate bindings.
    """

    id = "ND002"
    title = "Generator born outside repro.rng, escaping to module scope, " \
            "or seeded from process-dependent values"
    rationale = ("cell caches assume byte-identical reruns; generator "
                 "provenance and seed purity are what guarantee it")

    _EXEMPT = (("rng",), ("nn", "init"))

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.graph
        out: List[Finding] = []
        for ctx in project.contexts:
            if ctx.role != "src":
                continue
            if any(ctx.in_package(*parts) for parts in self._EXEMPT):
                continue
            module = graph.paths.get(ctx.path)
            if module is None:
                continue
            out.extend(self._check_module(ctx, graph, module))
        return _dedup(out)

    def _check_module(self, ctx: FileContext, graph: ProjectGraph,
                      module: str) -> List[Finding]:
        findings: List[Finding] = []
        table = graph.modules[module]

        # 1. module-scope Generator bindings (shared stream state)
        for sym in table.defs.values():
            if sym.kind != "assign" or not isinstance(sym.node, ast.Call):
                continue
            chain = _attr_chain(sym.node.func)
            if chain and _is_rng_ctor(graph.resolve(module, chain)):
                findings.append(self.finding_at(
                    ctx.path, sym.node,
                    f"Generator bound at module scope as {sym.name!r}; its "
                    "stream position becomes hidden shared state across "
                    "cells — construct per-use via repro.rng.fresh_rng"))

        # 2. Generators born outside repro.rng
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            resolved = graph.resolve(module, chain)
            if isinstance(resolved, ExternalRef) \
                    and resolved.target in _RNG_CTORS_EXTERNAL:
                findings.append(self.finding_at(
                    ctx.path, node,
                    "Generator constructed directly via "
                    f"'{chain}'; route through repro.rng.fresh_rng(seed) "
                    "so generator provenance stays auditable"))

        # 3. tainted seeds flowing into any RNG constructor
        def sink(call: ast.Call, env: Env, engine: DataflowEngine) -> None:
            chain = _attr_chain(call.func)
            if chain is None or not _is_rng_ctor(graph.resolve(module, chain)):
                return
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                tags = engine.eval_expr(arg, env) & \
                    {"hash", "id", "time", "pid", "entropy", "uuid"}
                for tag in sorted(tags):
                    findings.append(self.finding_at(
                        ctx.path, call,
                        f"RNG seed derived from process-dependent "
                        f"'{tag}' value; seeds must be pure functions of "
                        "the cell descriptor (e.g. zlib.crc32 of a name, "
                        "not hash())"))

        transfer = _TaintTransfer(graph, module, sink)
        engine = DataflowEngine(transfer)
        engine.run_body(ctx.tree.body)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                DataflowEngine(transfer).run_function(node)
        return findings


_F32 = {"float32", "f4"}
_F64 = {"float64", "f8", "double"}


def _dtype_tag(expr: ast.AST) -> Optional[str]:
    """Tag of an explicit dtype expression, if recognizable."""
    chain = _attr_chain(expr)
    if chain is not None:
        leaf = chain.split(".")[-1]
        if leaf in _F32:
            return "float32"
        if leaf in _F64 or chain == "float":
            return "float64"
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        if expr.value in _F32:
            return "float32"
        if expr.value in _F64:
            return "float64"
    return None


class _DtypeTransfer(TransferRules):
    def __init__(self, report) -> None:
        self.report = report

    def eval_expr(self, expr, env, engine):
        if isinstance(expr, ast.Call):
            for kw in expr.keywords:
                if kw.arg == "dtype":
                    tag = _dtype_tag(kw.value)
                    if tag is not None:
                        return frozenset({tag})
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr == "astype" \
                    and expr.args:
                tag = _dtype_tag(expr.args[0])
                if tag is not None:
                    return frozenset({tag})
        if isinstance(expr, ast.BinOp):
            left = engine.eval_expr(expr.left, env)
            right = engine.eval_expr(expr.right, env)
            if ("float32" in left and "float64" in right) \
                    or ("float64" in left and "float32" in right):
                self.report(expr)
            return left | right
        return None


@register
class DtypeFlowRule(ProjectRule):
    """DT002: inferred-dtype mixing in the ``formats``/``nn`` hot paths.

    DT001 demands explicit dtypes at construction; this rule *propagates*
    those declared dtypes through bindings and flags arithmetic that
    silently mixes float32 and float64 operands — numpy widens the
    result, so a single mixed op quietly upgrades a whole pipeline (or,
    on assignment back into a float32 buffer, silently downcasts) and
    the format-comparison tables stop measuring what they claim.
    """

    id = "DT002"
    title = "mixed float32/float64 arithmetic in formats/nn hot paths"
    rationale = ("silent widening/downcasting makes format-quality "
                 "comparisons incomparable across code paths")

    def check_project(self, project: Project) -> Iterator[Finding]:
        out: List[Finding] = []
        for ctx in project.contexts:
            if not (ctx.in_package("formats") or ctx.in_package("nn")):
                continue

            def report(node: ast.AST, _ctx=ctx) -> None:
                out.append(self.finding_at(
                    _ctx.path, node,
                    "arithmetic mixes float32 and float64 operands; numpy "
                    "silently widens — cast explicitly at the boundary"))

            transfer = _DtypeTransfer(report)
            DataflowEngine(transfer).run_body(ctx.tree.body)
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    DataflowEngine(transfer).run_function(node)
        return _dedup(out)


@register
class CallGraphPicklabilityRule(ProjectRule):
    """PK002: cross-module picklability of ``run_cells`` submissions.

    PK001 sees one file: it cannot tell whether an *imported* name is a
    module-level def in its home module, a re-exported lambda, or a
    nested function leaked through an attribute.  This rule resolves the
    submitted callable through the import graph and also walks its call
    graph for nested ``run_cells`` dispatch — a worker process
    re-entering the pool deadlocks under ``--jobs``.
    """

    id = "PK002"
    title = "run_cells submission unresolvable to a module-level def, " \
            "or reachable nested dispatch"
    rationale = ("workers re-import the cell fn by qualified name; "
                 "anything else fails to pickle or deadlocks the pool")

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.graph
        out: List[Finding] = []
        for ctx in project.contexts:
            module = graph.paths.get(ctx.path)
            if module is None:
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                if chain is None or chain.split(".")[-1] != "run_cells":
                    continue
                resolved = graph.resolve(module, chain)
                is_runner = (isinstance(resolved, SymbolDef)
                             and resolved.module == "repro.experiments.runner"
                             and resolved.name == "run_cells") \
                    or module == "repro.experiments.runner"
                if not is_runner or not node.args:
                    continue
                out.extend(self._check_submission(ctx, graph, module, node))
        return _dedup(out)

    def _check_submission(self, ctx: FileContext, graph: ProjectGraph,
                          module: str, call: ast.Call) -> List[Finding]:
        fn = call.args[0]
        chain = _attr_chain(fn)
        if chain is None:
            return []  # lambda / call-site construction: PK001's findings
        sym = graph.resolve(module, chain)
        if not isinstance(sym, SymbolDef):
            return []
        if sym.nested:
            return [self.finding_at(
                ctx.path, fn,
                f"'{chain}' resolves to nested function "
                f"'{sym.qualified}' ({sym.path}:{sym.lineno}); workers "
                "cannot re-import it — move it to module level")]
        if sym.kind == "assign" and isinstance(sym.node, ast.Lambda):
            return [self.finding_at(
                ctx.path, fn,
                f"'{chain}' resolves to module-level lambda "
                f"'{sym.qualified}' ({sym.path}:{sym.lineno}); lambdas do "
                "not pickle — use a def")]
        if sym.kind != "function":
            return []
        findings: List[Finding] = []
        for reached in graph.reachable(sym):
            if reached.qualified == sym.qualified:
                continue
            if "repro.experiments.runner.run_cells" in graph.callees(reached):
                findings.append(self.finding_at(
                    ctx.path, fn,
                    f"cell function '{sym.qualified}' reaches "
                    f"'{reached.qualified}' which dispatches run_cells "
                    "again; nested pools deadlock under --jobs"))
        return findings


#: cache-key sinks: fully-resolved (module, name) plus bare local names
_CACHE_SINKS = {("repro.cache", "content_key"),
                ("repro.cache", "store_cached_json")}
_CACHE_SINK_NAMES = {"content_key", "store_cached_json",
                     "cell_hash", "_cell_hash", "_cell_key"}


class _CacheTaintTransfer(_TaintTransfer):
    def eval_expr(self, expr, env, engine):
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return frozenset({"set"})
        if isinstance(expr, ast.Call):
            chain = _attr_chain(expr.func)
            if chain in ("set", "frozenset") \
                    and self.graph.resolve(self.module, chain) is None:
                value = frozenset({"set"})
                for arg in expr.args:
                    value |= engine.eval_expr(arg, env)
                return value
            if chain == "sorted" \
                    and self.graph.resolve(self.module, chain) is None:
                # sorted() is the sanctioned sanitizer: it restores a
                # deterministic order, clearing the 'set' taint (other
                # taints — hash/time/... — survive the sort unchanged)
                value = frozenset()
                for arg in expr.args:
                    value |= engine.eval_expr(arg, env)
                return value - {"set"}
        return super().eval_expr(expr, env, engine)


@register
class CacheKeyPurityRule(ProjectRule):
    """CK001: only JSON-stable, deterministic values may reach cache keys.

    ``cache.content_key`` hashes ``json.dumps(payload, sort_keys=True)``
    and every cached result is keyed by it, so any payload component
    with unstable identity poisons the cache: ``set`` iteration order is
    arbitrary (``sort_keys`` only sorts dict keys), ``hash()`` varies
    per process, timestamps/pids/uuids vary per run.  Dataflow tracks
    those sources into the arguments of ``content_key`` /
    ``store_cached_json`` and the cell-hash helpers.
    """

    id = "CK001"
    title = "unordered or nondeterministic value flows into a cache key"
    rationale = ("cache hits must mean 'same computation'; unstable keys "
                 "either miss forever or collide across semantics")

    _BAD = {"set", "hash", "id", "time", "pid", "entropy", "uuid"}
    _EXPLAIN = {
        "set": "set iteration order is arbitrary in JSON payloads",
        "hash": "hash() varies with PYTHONHASHSEED",
        "id": "id() is an address, unique per process",
        "time": "timestamps differ per run",
        "pid": "process ids differ per run",
        "entropy": "os.urandom is nondeterministic",
        "uuid": "uuids differ per run",
    }

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.graph
        out: List[Finding] = []
        for ctx in project.contexts:
            module = graph.paths.get(ctx.path)
            if module is None:
                continue
            out.extend(self._check_module(ctx, graph, module))
        return _dedup(out)

    def _is_sink(self, graph: ProjectGraph, module: str,
                 chain: str) -> bool:
        leaf = chain.split(".")[-1]
        if leaf not in _CACHE_SINK_NAMES:
            return False
        resolved = graph.resolve(module, chain)
        if isinstance(resolved, SymbolDef):
            return (resolved.module, resolved.name) in _CACHE_SINKS \
                or resolved.name in _CACHE_SINK_NAMES
        # unresolved but names a known sink defined in this very module?
        return leaf in _CACHE_SINK_NAMES and resolved is None \
            and module.startswith("repro.")

    def _check_module(self, ctx: FileContext, graph: ProjectGraph,
                      module: str) -> List[Finding]:
        findings: List[Finding] = []

        def sink(call: ast.Call, env: Env, engine: DataflowEngine) -> None:
            chain = _attr_chain(call.func)
            if chain is None or not self._is_sink(graph, module, chain):
                return
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                tags = engine.eval_expr(arg, env) & self._BAD
                for tag in sorted(tags):
                    findings.append(self.finding_at(
                        ctx.path, call,
                        f"value tainted by '{tag}' flows into "
                        f"'{chain.split('.')[-1]}': "
                        f"{self._EXPLAIN[tag]}"))

        transfer = _CacheTaintTransfer(graph, module, sink)
        DataflowEngine(transfer).run_body(ctx.tree.body)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                DataflowEngine(transfer).run_function(node)
        return findings


@register
class AccumulatorOverflowRule(ProjectRule):
    """HW001: the PE accumulators cannot wrap before saturation.

    Runs the exact-range abstract interpreter
    (:func:`repro.lint.ranges.analyze_registry`) over every registry
    format at the paper's PE configurations and turns **soundness
    failures** into findings: a configuration where the presaturation
    adder or the simulator's int64 arithmetic can wrap means the
    saturating semantics themselves are corrupt.  Saturation
    *reachability* is not a finding — it is the documented contract of a
    saturating accumulator — but every reachable clamp carries a
    concrete witness ``(format, bits, H)`` that the test suite replays
    through the bit-accurate simulator (``--hw-table`` prints the full
    proof table).
    """

    id = "HW001"
    title = "PE accumulator can wrap before saturation"
    rationale = ("the Fig. 5 co-design contract: register widths must "
                 "cover every representable worst case up to the clamp")

    def check_project(self, project: Project) -> Iterator[Finding]:
        ctx = next((c for c in project.contexts
                    if c.path == "src/repro/hardware/datapath.py"), None)
        if ctx is None:
            return iter(())
        from .ranges import analyze_registry
        anchors = {
            "int": self._class_def(ctx, "IntVectorMac"),
            "hfint": self._class_def(ctx, "HFIntVectorMac"),
        }
        out: List[Finding] = []
        for proof in analyze_registry():
            if proof.sound is False:
                node = anchors.get(proof.pe) or ctx.tree
                out.append(self.finding_at(
                    ctx.path, node,
                    f"{proof.format}/{proof.bits}b at "
                    f"H={proof.accum_length}: worst-case sum needs "
                    f"{proof.required_width} bits but the presaturation "
                    f"arithmetic can wrap (acc_width={proof.acc_width}); "
                    "widen the presat path or gate the fast path on "
                    "MacWidthSpec.fast_path_exact"))
        return iter(out)

    @staticmethod
    def _class_def(ctx: FileContext, name: str) -> Optional[ast.AST]:
        for node in ast.iter_child_nodes(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None
