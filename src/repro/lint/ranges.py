"""HW001: static accumulator-overflow analysis of the PE datapaths.

The paper's co-design contract (Fig. 5) sizes the saturating MAC
accumulators as ``2n + log2(H)`` (INT PE) and ``2(2^e-1) + 2m + log2(H)``
(HFINT PE).  This module is an abstract interpreter over **exact integer
intervals**: for every registry format it takes the format's exact
representable range (:func:`repro.formats.exact_range`), pushes it
through the width arithmetic the simulator itself exposes as data
(:class:`repro.hardware.datapath.MacWidthSpec`), and decides two
separate questions per ``(format, bits, H)``:

1. **Soundness** (CI-gated): can the accumulation *wrap* before the
   saturation logic fires?  This covers both the physical presaturation
   adder (one register-window value plus one worst-case product) and the
   simulator's int64 arithmetic — if either can wrap, the saturating
   semantics silently corrupt, which is a bug to fix, not a property to
   document.  ``sound=False`` rows become HW001 findings.

2. **Saturation reachability** (informational): can a worst-case
   H-term dot product actually reach the clamp?  Where the register
   provably covers every exact sum (``sum_max <= 2**(acc_width-1)-1``)
   the analysis *proves* non-overflow; where it cannot, it *refutes*
   with a concrete witness ``(format, bits, H)`` plus the exact operand
   words/levels that realise it and the predicted clamped value — the
   tests replay each witness through the bit-accurate simulator and
   check the prediction.

Formats without a modeled PE (posit, logquant, fp32) get informational
rows carrying the exact accumulator width a hypothetical datapath would
need, so the table documents *why* they are out of scope.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..formats.registry import FORMAT_NAMES, FormatRange, exact_range
from ..hardware.datapath import (MacWidthSpec, hfint_width_spec,
                                 int_width_spec)

__all__ = [
    "AccumulatorProof", "analyze_format", "analyze_registry",
    "proof_table", "PAPER_BITS", "PAPER_ACCUM_LENGTH",
]

#: The paper's PE configurations: word sizes of Tables 2/3 ...
PAPER_BITS: Tuple[int, ...] = (4, 8)
#: ... and the Fig. 5 reduction length.
PAPER_ACCUM_LENGTH = 256

_INT64_MAX = 2 ** 63 - 1


@dataclasses.dataclass(frozen=True)
class AccumulatorProof:
    """Verdict for one ``(format, bits, H)`` against its PE datapath."""

    format: str
    bits: int
    accum_length: int
    pe: Optional[str]                # "int" | "hfint" | None (no datapath)
    acc_width: Optional[int]         # the paper register width
    required_width: Optional[int]    # exact signed width for any H-term sum
    sum_max: Optional[int]           # exact worst-case |unsaturated sum|
    #: soundness verdict: True = cannot wrap before saturation (adder and
    #: simulator arithmetic both cover the worst case); None = no datapath
    sound: Optional[bool]
    #: reachability verdict: True = a representable dot product can hit
    #: the clamp; False = proved unreachable; None = no datapath
    saturates: Optional[bool]
    #: when ``saturates``: exact operands realising the clamp, replayable
    #: through the simulator ({"w_word"/"w_level", ..., "clamp"})
    witness: Optional[Dict[str, int]]
    note: str = ""

    @property
    def proved(self) -> bool:
        """True when non-overflow is proved: sound and clamp unreachable."""
        return bool(self.sound) and self.saturates is False


def _spec_for(rng: FormatRange, accum_length: int) -> Optional[MacWidthSpec]:
    if rng.pe == "int":
        return int_width_spec(rng.bits, accum_length, level_max=rng.level_max)
    if rng.pe == "hfint":
        return hfint_width_spec(rng.bits, rng.exp_bits, accum_length)
    return None


def _witness_for(rng: FormatRange, spec: MacWidthSpec) -> Dict[str, int]:
    """Exact max-magnitude operand pair plus the predicted clamp."""
    clamp = spec.window_max
    if rng.pe == "int":
        return {"w_level": rng.level_max, "a_level": rng.level_max,
                "clamp": clamp}
    # hfint: all-ones exponent and mantissa, sign 0 — the largest word
    word = ((2 ** rng.exp_bits - 1) << rng.mant_bits) \
        + (2 ** rng.mant_bits - 1)
    return {"w_word": word, "a_word": word, "clamp": clamp}


def analyze_format(name: str, bits: int, accum_length: int = PAPER_ACCUM_LENGTH,
                   **overrides) -> AccumulatorProof:
    """Prove or refute non-overflow for one format at one PE config."""
    rng = exact_range(name, bits, **overrides)
    spec = _spec_for(rng, accum_length)
    if spec is None:
        # no modeled PE: report the width a hypothetical accumulator of
        # H max-magnitude squares would need (in the format's own units)
        worst = accum_length * rng.sig_max * rng.sig_max \
            * (1 << max(0, 2 * rng.sig_exp)) if rng.sig_max else 0
        required = worst.bit_length() + 1 if worst else None
        return AccumulatorProof(
            format=rng.name, bits=rng.bits, accum_length=accum_length,
            pe=None, acc_width=None, required_width=required,
            sum_max=worst or None, sound=None, saturates=None,
            witness=None, note=rng.note)
    sound = spec.fast_path_exact or spec.cycle_max <= _INT64_MAX
    saturates = not spec.overflow_free
    return AccumulatorProof(
        format=rng.name, bits=rng.bits, accum_length=accum_length,
        pe=rng.pe, acc_width=spec.acc_width,
        required_width=spec.presat_bits, sum_max=spec.sum_max,
        sound=sound, saturates=saturates,
        witness=_witness_for(rng, spec) if saturates else None,
        note=rng.note)


def analyze_registry(accum_length: int = PAPER_ACCUM_LENGTH,
                     bits_list: Sequence[int] = PAPER_BITS
                     ) -> List[AccumulatorProof]:
    """The full proof table: every registry format at the paper configs."""
    out: List[AccumulatorProof] = []
    for bits in bits_list:
        for name in FORMAT_NAMES:
            out.append(analyze_format(name, bits, accum_length))
    return out


def _fmt_width(value: Optional[int]) -> str:
    return "-" if value is None else str(value)


def proof_table(proofs: Optional[Sequence[AccumulatorProof]] = None) -> str:
    """Human-readable rendering of the proof table (``--hw-table``)."""
    rows = list(proofs) if proofs is not None else analyze_registry()
    header = (f"{'format':<14}{'bits':>5}{'H':>6}{'PE':>7}"
              f"{'acc':>5}{'need':>6}  verdict")
    lines = [header, "-" * len(header)]
    for p in rows:
        if p.pe is None:
            verdict = "no PE datapath" + (f" (need {p.required_width}b)"
                                          if p.required_width else "")
        elif not p.sound:
            verdict = "UNSOUND: can wrap before saturation"
        elif p.saturates:
            w = p.witness or {}
            operand = w.get("w_word", w.get("w_level"))
            verdict = (f"saturation reachable (witness word {operand:#x} "
                       f"-> clamp {w.get('clamp')})"
                       if operand is not None else "saturation reachable")
        else:
            verdict = "PROVED: overflow-free (clamp unreachable)"
        lines.append(f"{p.format:<14}{p.bits:>5}{p.accum_length:>6}"
                     f"{(p.pe or '-'):>7}{_fmt_width(p.acc_width):>5}"
                     f"{_fmt_width(p.required_width):>6}  {verdict}")
    lines.append("")
    lines.append("sound = saturating semantics exact (adder and simulator "
                 "cannot wrap pre-saturation)")
    lines.append(f"paper widths: INT 2n+log2(H), HFINT 2(2^e-1)+2m+log2(H); "
                 f"H={rows[0].accum_length if rows else PAPER_ACCUM_LENGTH}")
    return "\n".join(lines)
