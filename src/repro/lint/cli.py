"""Command-line interface for ``reprocheck``.

Run as ``python -m repro.lint`` (or ``tools/reprocheck.py``).  Exit
status: 0 when the tree is clean (every finding fixed, inline-suppressed
or baselined), 1 when actionable findings remain, 2 on usage errors.

Output formats: ``human`` (default), ``json`` (the full
:class:`~repro.lint.core.LintReport`), and ``sarif`` (SARIF 2.1.0 for
code-scanning UIs; only actionable findings become results).

``--changed`` restricts *reported* findings to files changed relative to
a git ref (default ``HEAD``) plus untracked files — the whole tree is
still parsed so the cross-module rules see every import edge — which is
the fast PR gate wired into CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import List, Optional, Sequence, Set

from . import rules  # noqa: F401  (imported for rule registration)
from .core import (DEFAULT_TARGETS, LintReport, all_rules, get_rule,
                   run_lint, save_baseline)

__all__ = ["main", "find_repo_root", "changed_paths", "render_sarif",
           "DEFAULT_BASELINE"]

#: Baseline filename looked up relative to the repo root.
DEFAULT_BASELINE = "reprocheck-baseline.json"

#: SARIF schema pinned by the emitter.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def find_repo_root(start: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Walk upwards to the directory holding ``pyproject.toml``.

    Falls back to three levels above this file (the checkout layout
    ``<root>/src/repro/lint``) so the CLI works from any CWD.
    """
    here = (start or pathlib.Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists() \
                and (candidate / "src" / "repro").is_dir():
            return candidate
    return pathlib.Path(__file__).resolve().parents[3]


def changed_paths(root: pathlib.Path, base: str = "HEAD") -> Set[str]:
    """Repo-relative paths changed vs ``base``, plus untracked files.

    Raises ``RuntimeError`` when git is unavailable or the ref is
    unknown, so ``--changed`` fails loudly instead of linting nothing.
    """
    out: Set[str] = set()
    for args in (["git", "diff", "--name-only", base, "--"],
                 ["git", "ls-files", "--others", "--exclude-standard"]):
        proc = subprocess.run(args, cwd=str(root), capture_output=True,
                              text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"{' '.join(args)} failed: {proc.stderr.strip()}")
        out.update(line.strip().replace("\\", "/")
                   for line in proc.stdout.splitlines() if line.strip())
    return {p for p in out if p.endswith(".py")}


def render_sarif(report: LintReport) -> dict:
    """SARIF 2.1.0 document for the report's actionable findings."""
    rule_meta = [
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": f.line,
                               "startColumn": f.col + 1},
                },
            }],
        }
        for f in report.findings
    ]
    invocation = {
        "executionSuccessful": not report.parse_errors,
        "toolExecutionNotifications": [
            {"level": "error", "message": {"text": err}}
            for err in report.parse_errors
        ],
    }
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "reprocheck",
                "rules": rule_meta,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "invocations": [invocation],
            "results": results,
        }],
    }


def _render_human(report: LintReport, verbose: bool) -> str:
    lines: List[str] = [f.render() for f in report.findings]
    if verbose:
        lines += [f"{f.render()}  [baselined]" for f in report.baselined]
        lines += [f"{f.render()}  [suppressed inline]"
                  for f in report.suppressed]
    for entry in report.stale_baseline:
        lines.append(f"stale baseline entry: {entry['rule']} {entry['path']}: "
                     f"{entry['message']}")
    for err in report.parse_errors:
        lines.append(f"parse error: {err}")
    lines.append(
        f"reprocheck: {report.files_checked} files, "
        f"{len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed inline")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="reprocheck: numerics-aware static analysis for this repo")
    parser.add_argument("targets", nargs="*", default=list(DEFAULT_TARGETS),
                        help="directories/files to lint, relative to the "
                             f"repo root (default: {' '.join(DEFAULT_TARGETS)})")
    parser.add_argument("--root", type=pathlib.Path, default=None,
                        help="repo root (default: auto-detected)")
    parser.add_argument("--format", choices=("human", "json", "sarif"),
                        default="human", dest="fmt")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="BASE",
                        help="report findings only for files changed vs the "
                             "given git ref (default HEAD) plus untracked "
                             "files; the whole tree is still parsed for the "
                             "cross-module rules")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--hw-table", action="store_true",
                        help="print the HW001 accumulator proof table "
                             "(per-format verdicts + witnesses) and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also print baselined and inline-suppressed "
                             "findings")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.scope}]  {rule.title}")
            print(f"       {rule.rationale}")
        return 0

    if args.hw_table:
        from .ranges import proof_table
        print(proof_table())
        return 0

    root = (args.root or find_repo_root()).resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = []
        for rid in rule_ids:
            try:
                get_rule(rid)
            except KeyError:
                unknown.append(rid)
        if unknown:
            known = ", ".join(r.id for r in all_rules())
            print(f"error: unknown rule id(s): {', '.join(unknown)} "
                  f"(known: {known})", file=sys.stderr)
            return 2

    only_paths: Optional[Set[str]] = None
    if args.changed is not None:
        try:
            only_paths = changed_paths(root, args.changed)
        except RuntimeError as exc:
            print(f"error: --changed: {exc}", file=sys.stderr)
            return 2
        if not only_paths:
            print("reprocheck: no changed Python files")
            return 0

    baseline_path = args.baseline or (root / DEFAULT_BASELINE)
    report = run_lint(
        root, targets=tuple(args.targets), rules=rule_ids,
        baseline_path=None if (args.no_baseline or args.write_baseline)
        else baseline_path,
        only_paths=only_paths)

    if args.write_baseline:
        save_baseline(baseline_path, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    if args.fmt == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif args.fmt == "sarif":
        print(json.dumps(render_sarif(report), indent=2, sort_keys=True))
    else:
        print(_render_human(report, args.verbose))
    if report.parse_errors:
        return 2
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
