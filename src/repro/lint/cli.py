"""Command-line interface for ``reprocheck``.

Run as ``python -m repro.lint`` (or ``tools/reprocheck.py``).  Exit
status: 0 when the tree is clean (every finding fixed, inline-suppressed
or baselined), 1 when actionable findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from . import rules  # noqa: F401  (imported for rule registration)
from .core import (DEFAULT_TARGETS, LintReport, all_rules, run_lint,
                   save_baseline)

__all__ = ["main", "find_repo_root", "DEFAULT_BASELINE"]

#: Baseline filename looked up relative to the repo root.
DEFAULT_BASELINE = "reprocheck-baseline.json"


def find_repo_root(start: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Walk upwards to the directory holding ``pyproject.toml``.

    Falls back to three levels above this file (the checkout layout
    ``<root>/src/repro/lint``) so the CLI works from any CWD.
    """
    here = (start or pathlib.Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists() \
                and (candidate / "src" / "repro").is_dir():
            return candidate
    return pathlib.Path(__file__).resolve().parents[3]


def _render_human(report: LintReport, verbose: bool) -> str:
    lines: List[str] = [f.render() for f in report.findings]
    if verbose:
        lines += [f"{f.render()}  [baselined]" for f in report.baselined]
        lines += [f"{f.render()}  [suppressed inline]"
                  for f in report.suppressed]
    for entry in report.stale_baseline:
        lines.append(f"stale baseline entry: {entry['rule']} {entry['path']}: "
                     f"{entry['message']}")
    for err in report.parse_errors:
        lines.append(f"parse error: {err}")
    lines.append(
        f"reprocheck: {report.files_checked} files, "
        f"{len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed inline")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="reprocheck: numerics-aware static analysis for this repo")
    parser.add_argument("targets", nargs="*", default=list(DEFAULT_TARGETS),
                        help="directories/files to lint, relative to the "
                             f"repo root (default: {' '.join(DEFAULT_TARGETS)})")
    parser.add_argument("--root", type=pathlib.Path, default=None,
                        help="repo root (default: auto-detected)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", dest="fmt")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also print baselined and inline-suppressed "
                             "findings")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
            print(f"       {rule.rationale}")
        return 0

    root = (args.root or find_repo_root()).resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        try:
            for rid in rule_ids:
                from .core import get_rule
                get_rule(rid)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    baseline_path = args.baseline or (root / DEFAULT_BASELINE)
    report = run_lint(
        root, targets=tuple(args.targets), rules=rule_ids,
        baseline_path=None if (args.no_baseline or args.write_baseline)
        else baseline_path)

    if args.write_baseline:
        save_baseline(baseline_path, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    if args.fmt == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(_render_human(report, args.verbose))
    if report.parse_errors:
        return 2
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
