"""``reprocheck``: numerics-aware static analysis for this repository.

The paper's central comparison — AdaptivFloat's resilience against
IEEE-like float, BFP, uniform and posit at matched bit widths — only
means anything if the numerics are bit-exact and deterministic.  This
package machine-checks the invariants the reproduction depends on
(seeded RNG everywhere, pinned dtypes in hot paths, no autodiff-state
mutation outside the sanctioned modules, picklable sweep cells, honest
``__all__``, no codebook fast-path bypass) instead of leaving them to
reviewer vigilance.

Usage::

    python -m repro.lint                  # lint src/tools/examples/tests
    python -m repro.lint --format json    # machine-readable (CI)
    python -m repro.lint --list-rules     # rule catalogue
    python -m repro.lint --write-baseline # accept current findings

Suppress a single line with ``# reprocheck: disable=ND001`` (comma
separate ids, or omit ``=...`` to disable all rules on that line); known
findings accepted for now live in ``reprocheck-baseline.json`` at the
repo root.  See ``docs/static-analysis.md``.

The runtime counterpart — trapping NaN/Inf, clamp storms and underflow
floods with op/layer provenance while a model runs — is
:mod:`repro.nn.sanitize`.
"""

from . import rules  # noqa: F401  (rule registration side effect)
from .core import (DEFAULT_TARGETS, FileContext, Finding, LintReport, Rule,
                   all_rules, get_rule, lint_file, lint_source, load_baseline,
                   register, run_lint, save_baseline)

__all__ = [
    "DEFAULT_TARGETS", "FileContext", "Finding", "LintReport", "Rule",
    "all_rules", "get_rule", "lint_file", "lint_source", "load_baseline",
    "register", "rules", "run_lint", "save_baseline",
]
