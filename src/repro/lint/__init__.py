"""``reprocheck``: numerics-aware static analysis for this repository.

The paper's central comparison — AdaptivFloat's resilience against
IEEE-like float, BFP, uniform and posit at matched bit widths — only
means anything if the numerics are bit-exact and deterministic.  This
package machine-checks the invariants the reproduction depends on
instead of leaving them to reviewer vigilance.  v1 rules are per-file
(seeded RNG, pinned dtypes, no autodiff-state mutation, picklable sweep
cells, honest ``__all__``, no codebook bypass); v2 adds a project-wide
core — a symbol/import/call graph (:mod:`repro.lint.graph`) and a
dataflow engine over an abstract-value lattice
(:mod:`repro.lint.dataflow`) — powering cross-module rules: seed-taint
tracking (ND002), dtype propagation (DT002), call-graph picklability
(PK002), cache-key purity (CK001), and the HW001 accumulator-overflow
prover for the PE datapaths (:mod:`repro.lint.ranges`).

Usage::

    python -m repro.lint                  # lint src/tools/examples/tests
    python -m repro.lint --format json    # machine-readable (CI)
    python -m repro.lint --format sarif   # SARIF 2.1.0 (code-scanning UIs)
    python -m repro.lint --changed        # only files changed vs git
    python -m repro.lint --hw-table       # HW001 proof table
    python -m repro.lint --list-rules     # rule catalogue
    python -m repro.lint --write-baseline # accept current findings

Suppress a single line with ``# reprocheck: disable=ND001`` (comma
separate ids, or omit ``=...`` to disable all rules on that line); known
findings accepted for now live in ``reprocheck-baseline.json`` at the
repo root.  See ``docs/static-analysis.md``.

The runtime counterpart — trapping NaN/Inf, clamp storms and underflow
floods with op/layer provenance while a model runs — is
:mod:`repro.nn.sanitize`.
"""

from . import rules  # noqa: F401  (rule registration side effect)
from .core import (DEFAULT_TARGETS, FileContext, Finding, LintReport, Project,
                   ProjectRule, Rule, all_rules, get_rule, lint_file,
                   lint_source, lint_sources, load_baseline, register,
                   run_lint, save_baseline)

__all__ = [
    "DEFAULT_TARGETS", "FileContext", "Finding", "LintReport", "Project",
    "ProjectRule", "Rule", "all_rules", "get_rule", "lint_file",
    "lint_source", "lint_sources", "load_baseline", "register", "rules",
    "run_lint", "save_baseline",
]
