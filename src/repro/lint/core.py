"""Framework core for ``reprocheck`` (:mod:`repro.lint`).

The linter is deliberately small: a :class:`Rule` is a named object with
a :meth:`Rule.check` method that walks one parsed file
(:class:`FileContext`) and yields :class:`Finding`\\ s.  Rules register
themselves in a module-level registry via :func:`register`;
:func:`run_lint` walks a file tree, parses each Python file once, runs
every (selected) rule over it, and filters the results through two
suppression layers:

* **inline** — a ``# reprocheck: disable=ND001,DT001`` (or bare
  ``# reprocheck: disable``) comment on the flagged line suppresses the
  named rules (or all rules) for that line only;
* **baseline** — a committed JSON file of known findings (matched on
  ``(rule, path, message)``, so unrelated edits moving line numbers do
  not invalidate it).  The baseline exists to land the linter on a repo
  with pre-existing findings; the intended steady state is an empty (or
  near-empty) baseline with true positives fixed at the source.

Nothing here knows about the specific rules; they live in
:mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import pathlib
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding", "Rule", "FileContext", "LintReport",
    "register", "all_rules", "get_rule",
    "run_lint", "lint_file", "lint_source", "iter_python_files",
    "load_baseline", "save_baseline", "DEFAULT_TARGETS",
]

#: Directories (relative to the repo root) the linter walks by default.
DEFAULT_TARGETS = ("src", "tools", "examples", "tests")

_SUPPRESS_RE = re.compile(
    r"#\s*reprocheck:\s*disable(?:=(?P<rules>[A-Z0-9,\s]+))?")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str          # repo-root-relative, forward slashes
    line: int          # 1-based
    col: int           # 0-based
    message: str

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line-number independent)."""
        return (self.rule, self.path, self.message)

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


class FileContext:
    """One parsed source file handed to every rule.

    ``role`` is the top-level directory the file came from (``"src"``,
    ``"tests"``, ``"tools"``, ``"examples"``) — rules use it to scope
    themselves; files outside the known targets get role ``"other"``.
    """

    def __init__(self, path: str, text: str,
                 tree: Optional[ast.AST] = None) -> None:
        self.path = path.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree if tree is not None else ast.parse(text)
        first = self.path.split("/", 1)[0]
        self.role = first if first in DEFAULT_TARGETS else "other"

    def in_package(self, *parts: str) -> bool:
        """Whether the file lives under ``src/repro/<parts...>/``."""
        prefix = "/".join(("src", "repro") + parts)
        return self.path == prefix + ".py" or self.path.startswith(prefix + "/")

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules.  Subclasses set the class attributes
    and implement :meth:`check`."""

    id: str = "XX000"
    title: str = "abstract rule"
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(rule=self.id, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)


_REGISTRY: "Dict[str, Rule]" = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}")


# ------------------------------------------------------------- suppression
def _suppressed_rules_by_line(text: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (``None`` = all rules).

    Comments are found with :mod:`tokenize` so string literals containing
    the marker do not suppress anything.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(iter(text.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            names = match.group("rules")
            if names is None:
                out[tok.start[0]] = None
            else:
                ids = {n.strip() for n in names.split(",") if n.strip()}
                existing = out.get(tok.start[0], set())
                out[tok.start[0]] = None if existing is None else existing | ids
    except tokenize.TokenError:
        pass
    return out


def _is_suppressed(finding: Finding,
                   table: Dict[int, Optional[Set[str]]]) -> bool:
    if finding.line not in table:
        return False
    rules = table[finding.line]
    return rules is None or finding.rule in rules


# ---------------------------------------------------------------- baseline
def load_baseline(path: pathlib.Path) -> List[Dict[str, str]]:
    """Load the committed baseline; returns ``[]`` if the file is absent."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return []
    entries = payload.get("findings", []) if isinstance(payload, dict) else payload
    return [e for e in entries
            if isinstance(e, dict) and {"rule", "path", "message"} <= set(e)]


def save_baseline(path: pathlib.Path, findings: Sequence[Finding]) -> None:
    payload = {
        "comment": ("reprocheck baseline: known findings tolerated by CI. "
                    "Fix at the source and shrink this file rather than "
                    "growing it."),
        "findings": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in sorted(findings, key=lambda f: (f.path, f.rule, f.line))
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


# ------------------------------------------------------------------ running
@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]                 # actionable (not suppressed)
    suppressed: List[Finding]               # silenced by inline comments
    baselined: List[Finding]                # silenced by the baseline file
    stale_baseline: List[Dict[str, str]]    # baseline entries that no longer fire
    files_checked: int = 0
    parse_errors: List[str] = dataclasses.field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_json(self) -> Dict[str, object]:
        return {
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
            "baselined": [f.to_json() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "files_checked": self.files_checked,
            "parse_errors": list(self.parse_errors),
        }


def lint_source(text: str, path: str = "<string>",
                rules: Optional[Sequence[Rule]] = None
                ) -> Tuple[List[Finding], List[Finding]]:
    """Lint a source string; returns ``(findings, suppressed)``.

    The unit-test entry point: no filesystem, no baseline.
    """
    ctx = FileContext(path, text)
    table = _suppressed_rules_by_line(text)
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in active:
        for finding in rule.check(ctx):
            (suppressed if _is_suppressed(finding, table) else findings) \
                .append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed


def lint_file(root: pathlib.Path, path: pathlib.Path,
              rules: Optional[Sequence[Rule]] = None
              ) -> Tuple[List[Finding], List[Finding]]:
    rel = path.relative_to(root).as_posix()
    text = path.read_text(encoding="utf-8")
    return lint_source(text, rel, rules)


def iter_python_files(root: pathlib.Path,
                      targets: Sequence[str] = DEFAULT_TARGETS
                      ) -> Iterator[pathlib.Path]:
    for target in targets:
        base = root / target
        if base.is_file() and base.suffix == ".py":
            yield base
            continue
        if not base.is_dir():
            continue
        yield from sorted(base.rglob("*.py"))


def run_lint(root: pathlib.Path,
             targets: Sequence[str] = DEFAULT_TARGETS,
             rules: Optional[Iterable[str]] = None,
             baseline_path: Optional[pathlib.Path] = None) -> LintReport:
    """Lint every Python file under ``root``'s target directories."""
    selected = ([get_rule(r) for r in rules] if rules is not None
                else all_rules())
    baseline = load_baseline(baseline_path) if baseline_path else []
    baseline_keys = {(e["rule"], e["path"], e["message"]) for e in baseline}
    seen_keys: Set[Tuple[str, str, str]] = set()

    report = LintReport(findings=[], suppressed=[], baselined=[],
                        stale_baseline=[])
    for path in iter_python_files(root, targets):
        try:
            findings, suppressed = lint_file(root, path, selected)
        except SyntaxError as exc:
            report.parse_errors.append(f"{path}: {exc}")
            continue
        report.files_checked += 1
        report.suppressed.extend(suppressed)
        for finding in findings:
            if finding.baseline_key in baseline_keys:
                seen_keys.add(finding.baseline_key)
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    report.stale_baseline = [e for e in baseline
                             if (e["rule"], e["path"], e["message"])
                             not in seen_keys]
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
