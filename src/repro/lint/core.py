"""Framework core for ``reprocheck`` (:mod:`repro.lint`).

The linter has two kinds of rules.  A per-file :class:`Rule` is a named
object whose :meth:`Rule.check` walks one parsed file
(:class:`FileContext`) and yields :class:`Finding`\\ s.  A
:class:`ProjectRule` instead implements :meth:`ProjectRule.check_project`
over a :class:`Project` — every parsed file plus a lazily-built
:class:`~repro.lint.graph.ProjectGraph` (symbol table, import graph,
call graph) — which is what the cross-module rules (ND002, PK002, ...)
need.  Rules register themselves in a module-level registry via
:func:`register`; :func:`run_lint` walks a file tree, parses every
Python file once, runs the per-file rules on each file and the project
rules once over the whole project, then filters the results through two
suppression layers:

* **inline** — a ``# reprocheck: disable=ND001,DT001`` (or bare
  ``# reprocheck: disable``) comment on the flagged line suppresses the
  named rules (or all rules) for that line only; rule ids are matched
  case-insensitively and surrounding whitespace is ignored;
* **baseline** — a committed JSON file of known findings, matched on
  ``(rule, path, message)`` **as a multiset**: two identical findings in
  one file need two baseline entries, so a freshly-introduced duplicate
  of a baselined finding still surfaces.  The baseline exists to land
  the linter on a repo with pre-existing findings; the intended steady
  state is an empty (or near-empty) baseline with true positives fixed
  at the source.

Nothing here knows about the specific rules; they live in
:mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
import collections
import dataclasses
import json
import pathlib
import re
import tokenize
from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Set, Tuple)

__all__ = [
    "Finding", "Rule", "ProjectRule", "FileContext", "Project", "LintReport",
    "register", "all_rules", "get_rule",
    "run_lint", "lint_file", "lint_source", "lint_sources",
    "iter_python_files", "load_baseline", "save_baseline", "DEFAULT_TARGETS",
]

#: Directories (relative to the repo root) the linter walks by default.
DEFAULT_TARGETS = ("src", "tools", "examples", "tests")

#: Directory names never descended into by :func:`iter_python_files`:
#: byte-compiled caches, generated artifacts, and anything hidden.
SKIP_DIR_NAMES = ("__pycache__", "artifacts")

_SUPPRESS_RE = re.compile(
    r"#\s*reprocheck:\s*disable(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+))?",
    re.IGNORECASE)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str          # repo-root-relative, forward slashes
    line: int          # 1-based
    col: int           # 0-based
    message: str

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching (line-number independent).

        Matching is multiset-aware in :func:`run_lint`: N findings with
        the same key need N baseline entries.
        """
        return (self.rule, self.path, self.message)

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


class FileContext:
    """One parsed source file handed to every rule.

    ``role`` is the top-level directory the file came from (``"src"``,
    ``"tests"``, ``"tools"``, ``"examples"``) — rules use it to scope
    themselves; files outside the known targets get role ``"other"``.
    """

    def __init__(self, path: str, text: str,
                 tree: Optional[ast.AST] = None) -> None:
        self.path = path.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree if tree is not None else ast.parse(text)
        first = self.path.split("/", 1)[0]
        self.role = first if first in DEFAULT_TARGETS else "other"

    def in_package(self, *parts: str) -> bool:
        """Whether the file lives under ``src/repro/<parts...>/``."""
        prefix = "/".join(("src", "repro") + parts)
        return self.path == prefix + ".py" or self.path.startswith(prefix + "/")

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Project:
    """Every parsed file of one lint run, plus the cross-module graph.

    The :class:`~repro.lint.graph.ProjectGraph` is built lazily on first
    access so per-file-only runs (``--rules ND001``) pay nothing for it.
    """

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts: List[FileContext] = list(contexts)
        self.by_path: Dict[str, FileContext] = {c.path: c for c in self.contexts}
        self._graph = None

    @property
    def graph(self):
        if self._graph is None:
            from .graph import ProjectGraph
            self._graph = ProjectGraph(self.contexts)
        return self._graph

    def context(self, path: str) -> Optional[FileContext]:
        return self.by_path.get(path.replace("\\", "/"))


class Rule:
    """Base class for per-file lint rules.  Subclasses set the class
    attributes and implement :meth:`check`."""

    id: str = "XX000"
    title: str = "abstract rule"
    rationale: str = ""
    #: "file" rules see one FileContext at a time; "project" rules
    #: (subclass :class:`ProjectRule`) see the whole parsed tree at once.
    scope: str = "file"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(rule=self.id, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)


class ProjectRule(Rule):
    """A rule that analyses the whole project at once (cross-module)."""

    scope = "project"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())  # project rules do not run per file

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(rule=self.id, path=path.replace("\\", "/"),
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)


_REGISTRY: "Dict[str, Rule]" = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}")


# ------------------------------------------------------------- suppression
def _suppressed_rules_by_line(text: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (``None`` = all rules).

    Comments are found with :mod:`tokenize` so string literals containing
    the marker do not suppress anything.  Rule ids are normalised to
    upper case, so ``# reprocheck: disable=nd001`` works.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(iter(text.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            names = match.group("rules")
            if names is None:
                out[tok.start[0]] = None
            else:
                ids = {n.strip().upper() for n in names.split(",") if n.strip()}
                existing = out.get(tok.start[0], set())
                out[tok.start[0]] = None if existing is None else existing | ids
    except tokenize.TokenError:
        pass
    return out


def _is_suppressed(finding: Finding,
                   table: Dict[int, Optional[Set[str]]]) -> bool:
    if finding.line not in table:
        return False
    rules = table[finding.line]
    return rules is None or finding.rule.upper() in rules


# ---------------------------------------------------------------- baseline
def load_baseline(path: pathlib.Path) -> List[Dict[str, str]]:
    """Load the committed baseline; returns ``[]`` if the file is absent."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return []
    entries = payload.get("findings", []) if isinstance(payload, dict) else payload
    return [e for e in entries
            if isinstance(e, dict) and {"rule", "path", "message"} <= set(e)]


def save_baseline(path: pathlib.Path, findings: Sequence[Finding]) -> None:
    payload = {
        "comment": ("reprocheck baseline: known findings tolerated by CI. "
                    "Fix at the source and shrink this file rather than "
                    "growing it."),
        "findings": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in sorted(findings, key=lambda f: (f.path, f.rule, f.line))
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


# ------------------------------------------------------------------ running
@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]                 # actionable (not suppressed)
    suppressed: List[Finding]               # silenced by inline comments
    baselined: List[Finding]                # silenced by the baseline file
    stale_baseline: List[Dict[str, str]]    # baseline entries that no longer fire
    files_checked: int = 0
    parse_errors: List[str] = dataclasses.field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_json(self) -> Dict[str, object]:
        return {
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
            "baselined": [f.to_json() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "files_checked": self.files_checked,
            "parse_errors": list(self.parse_errors),
        }


def _split_rules(rules: Sequence[Rule]) -> Tuple[List[Rule], List["ProjectRule"]]:
    file_rules = [r for r in rules if r.scope == "file"]
    project_rules = [r for r in rules if r.scope == "project"]
    return file_rules, project_rules


def _collect(contexts: Sequence[FileContext],
             rules: Sequence[Rule]) -> List[Finding]:
    """Run per-file + project rules over already-parsed contexts."""
    file_rules, project_rules = _split_rules(rules)
    out: List[Finding] = []
    for ctx in contexts:
        for rule in file_rules:
            out.extend(rule.check(ctx))
    if project_rules:
        project = Project(contexts)
        for rule in project_rules:
            out.extend(rule.check_project(project))
    return out


def lint_source(text: str, path: str = "<string>",
                rules: Optional[Sequence[Rule]] = None
                ) -> Tuple[List[Finding], List[Finding]]:
    """Lint a source string; returns ``(findings, suppressed)``.

    The unit-test entry point: no filesystem, no baseline.  Project
    rules see a single-file project.
    """
    return lint_sources({path: text}, rules)


def lint_sources(files: Mapping[str, str],
                 rules: Optional[Sequence[Rule]] = None
                 ) -> Tuple[List[Finding], List[Finding]]:
    """Lint several in-memory sources as one project.

    ``files`` maps repo-relative paths to source text — this is how the
    cross-module rules are unit-tested without touching the filesystem.
    """
    active = list(rules) if rules is not None else all_rules()
    contexts = [FileContext(path, text) for path, text in files.items()]
    tables = {ctx.path: _suppressed_rules_by_line(ctx.text)
              for ctx in contexts}
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in _collect(contexts, active):
        table = tables.get(finding.path, {})
        (suppressed if _is_suppressed(finding, table) else findings) \
            .append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed


def lint_file(root: pathlib.Path, path: pathlib.Path,
              rules: Optional[Sequence[Rule]] = None
              ) -> Tuple[List[Finding], List[Finding]]:
    rel = path.relative_to(root).as_posix()
    text = path.read_text(encoding="utf-8")
    return lint_source(text, rel, rules)


def iter_python_files(root: pathlib.Path,
                      targets: Sequence[str] = DEFAULT_TARGETS
                      ) -> Iterator[pathlib.Path]:
    """Yield the Python files under ``root``'s target directories.

    Skips ``__pycache__``, ``artifacts/`` (generated caches/results) and
    hidden directories (``.git``, ``.venv``, ...) at any depth.
    """
    for target in targets:
        base = root / target
        if base.is_file() and base.suffix == ".py":
            yield base
            continue
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel_parts = path.relative_to(base).parts[:-1]
            if any(part in SKIP_DIR_NAMES or part.startswith(".")
                   for part in rel_parts):
                continue
            yield path


def run_lint(root: pathlib.Path,
             targets: Sequence[str] = DEFAULT_TARGETS,
             rules: Optional[Iterable[str]] = None,
             baseline_path: Optional[pathlib.Path] = None,
             only_paths: Optional[Set[str]] = None) -> LintReport:
    """Lint every Python file under ``root``'s target directories.

    ``only_paths`` (repo-relative, forward slashes) restricts *reported*
    findings to those paths — the whole tree is still parsed so project
    rules see every module — which is what ``--changed`` uses for fast
    PR runs.
    """
    selected = ([get_rule(r) for r in rules] if rules is not None
                else all_rules())
    baseline = load_baseline(baseline_path) if baseline_path else []
    baseline_counts = collections.Counter(
        (e["rule"], e["path"], e["message"]) for e in baseline)
    matched: collections.Counter = collections.Counter()

    report = LintReport(findings=[], suppressed=[], baselined=[],
                        stale_baseline=[])
    contexts: List[FileContext] = []
    tables: Dict[str, Dict[int, Optional[Set[str]]]] = {}
    for path in iter_python_files(root, targets):
        rel = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
            ctx = FileContext(rel, text)
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{path}: {exc}")
            continue
        contexts.append(ctx)
        tables[rel] = _suppressed_rules_by_line(text)
        report.files_checked += 1

    raw = _collect(contexts, selected)
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    for finding in raw:
        if only_paths is not None and finding.path not in only_paths:
            continue
        if _is_suppressed(finding, tables.get(finding.path, {})):
            report.suppressed.append(finding)
            continue
        key = finding.baseline_key
        if matched[key] < baseline_counts[key]:
            matched[key] += 1
            report.baselined.append(finding)
        else:
            report.findings.append(finding)

    leftover = baseline_counts - matched
    for entry in baseline:
        key = (entry["rule"], entry["path"], entry["message"])
        if leftover[key] > 0:
            leftover[key] -= 1
            if only_paths is None or entry["path"] in only_paths:
                report.stale_baseline.append(entry)
    return report
