"""Intraprocedural dataflow engine over an abstract-value lattice.

Rules that need more than syntax — "does a ``hash()`` result reach this
seed argument", "is this array float32 or float64 by the time it hits the
hot path" — opt into this engine instead of hand-rolling per-rule
trackers.  The design is a classic reaching-definitions analysis
specialised to a **tag lattice**:

* an abstract value is a ``frozenset`` of string tags (``{"rng"}``,
  ``{"float32"}``, ``{"hash", "int"}``);
* ``join`` is set union, so merging branches keeps every tag either arm
  produced — the analysis over-approximates, and rules must only flag
  when a *bad* tag is definitely present;
* loops run to a fixpoint (the lattice is finite: tags come from the
  rule's transfer function, so the chain height is bounded).

A rule supplies a :class:`TransferRules` with two hooks:

``eval_expr(expr, env, engine)``
    abstract value of an expression under ``env`` (return ``None`` to
    fall back to the engine's structural default, which joins the values
    of sub-expressions);

``on_call(call, env, engine)``
    observe a call site with the *current* environment — this is where
    rules check "tainted value flows into argument N of ``f``".

The engine walks one function body (or a module top level) statement by
statement, maintaining ``env: name -> frozenset[tag]``.  It is
deliberately flow-sensitive but path-insensitive: ``if``/``else`` arms
are analysed independently then joined, ``while``/``for`` bodies are
iterated until the environment stabilises (capped at
:data:`MAX_LOOP_PASSES` for safety; the cap is unreachable for finite
tag sets).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Optional

__all__ = ["AbstractValue", "Env", "TransferRules", "DataflowEngine",
           "BOTTOM", "join", "join_envs"]

AbstractValue = FrozenSet[str]
Env = Dict[str, AbstractValue]

#: The empty tag set: "no interesting property known".
BOTTOM: AbstractValue = frozenset()

#: Fixpoint-iteration cap for loop bodies.  With a finite tag alphabet the
#: environment lattice has finite height and iteration converges long
#: before this; the cap only guards against a pathological transfer
#: function that mints unbounded fresh tags.
MAX_LOOP_PASSES = 20


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    return a | b


def join_envs(a: Env, b: Env) -> Env:
    out = dict(a)
    for name, val in b.items():
        out[name] = out.get(name, BOTTOM) | val
    return out


class TransferRules:
    """Hook bundle a rule hands to the engine.  Override what you need."""

    def eval_expr(self, expr: ast.AST, env: Env,
                  engine: "DataflowEngine") -> Optional[AbstractValue]:
        """Abstract value of ``expr``, or ``None`` for the default."""
        return None

    def on_call(self, call: ast.Call, env: Env,
                engine: "DataflowEngine") -> None:
        """Observe a call site under the current environment."""

    def on_assign(self, target: str, value: AbstractValue,
                  node: ast.stmt, engine: "DataflowEngine") -> None:
        """Observe a binding of ``target`` to abstract value ``value``."""


class DataflowEngine:
    """Flow-sensitive tag propagation over one function/module body."""

    def __init__(self, rules: TransferRules,
                 initial_env: Optional[Env] = None) -> None:
        self.rules = rules
        self.initial_env: Env = dict(initial_env or {})

    # ------------------------------------------------------------- driving
    def run_body(self, body: Iterable[ast.stmt],
                 env: Optional[Env] = None) -> Env:
        """Analyse a statement list, returning the out-environment."""
        current: Env = dict(self.initial_env if env is None else env)
        for stmt in body:
            current = self._transfer_stmt(stmt, current)
        return current

    def run_function(self, fn: ast.AST,
                     env: Optional[Env] = None) -> Env:
        """Analyse a function body; parameters start at ``BOTTOM``."""
        start: Env = dict(self.initial_env if env is None else env)
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (list(args.posonlyargs) if hasattr(args, "posonlyargs")
                        else []) + list(args.args) + list(args.kwonlyargs):
                start.setdefault(arg.arg, BOTTOM)
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    start.setdefault(extra.arg, BOTTOM)
        return self.run_body(getattr(fn, "body", []), start)

    # ------------------------------------------------------- statement step
    def _transfer_stmt(self, stmt: ast.stmt, env: Env) -> Env:
        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value, env)
            env = dict(env)
            for target in stmt.targets:
                self._bind_target(target, value, stmt, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            env = dict(env)
            if stmt.value is not None:
                value = self.eval_expr(stmt.value, env)
                self._bind_target(stmt.target, value, stmt, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            value = self.eval_expr(stmt.value, env)
            env = dict(env)
            if isinstance(stmt.target, ast.Name):
                old = env.get(stmt.target.id, BOTTOM)
                merged = old | value
                env[stmt.target.id] = merged
                self.rules.on_assign(stmt.target.id, merged, stmt, self)
            return env
        if isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self.eval_expr(stmt.value, env)
            return env
        if isinstance(stmt, ast.If):
            self.eval_expr(stmt.test, env)
            then_env = self.run_body(stmt.body, env)
            else_env = self.run_body(stmt.orelse, env)
            return join_envs(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._transfer_loop(stmt, env, is_for=True)
        if isinstance(stmt, ast.While):
            return self._transfer_loop(stmt, env, is_for=False)
        if isinstance(stmt, ast.Try):
            body_env = self.run_body(stmt.body, env)
            out = body_env
            for handler in stmt.handlers:
                # a handler may run after any prefix of the body: start it
                # from the join of entry and full-body environments
                hand_env = self.run_body(handler.body, join_envs(env, body_env))
                out = join_envs(out, hand_env)
            out = self.run_body(stmt.orelse, out)
            return self.run_body(stmt.finalbody, out)
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            env = dict(env)
            for item in stmt.items:
                value = self.eval_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, value, stmt, env)
            return self.run_body(stmt.body, env)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # nested scopes are analysed separately by the rule if at all;
            # the name binds to BOTTOM here
            env = dict(env)
            env[stmt.name] = BOTTOM
            return env
        if isinstance(stmt, ast.Delete):
            env = dict(env)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        # Import/Global/Nonlocal/Pass/Break/Continue/Raise/Assert: no
        # tag-relevant binding (Raise/Assert operands still get evaluated
        # so on_call fires inside them)
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval_expr(stmt.exc, env)
            return env
        if isinstance(stmt, ast.Assert):
            self.eval_expr(stmt.test, env)
            return env
        return env

    def _transfer_loop(self, stmt, env: Env, *, is_for: bool) -> Env:
        out = dict(env)
        for _ in range(MAX_LOOP_PASSES):
            trial = dict(out)
            if is_for:
                iter_val = self.eval_expr(stmt.iter, trial)
                self._bind_target(stmt.target, iter_val, stmt, trial)
            else:
                self.eval_expr(stmt.test, trial)
            trial = self.run_body(stmt.body, trial)
            merged = join_envs(out, trial)
            if merged == out:
                break
            out = merged
        return self.run_body(stmt.orelse, out)

    def _bind_target(self, target: ast.AST, value: AbstractValue,
                     stmt: ast.stmt, env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            self.rules.on_assign(target.id, value, stmt, self)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, value, stmt, env)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, stmt, env)
        # attribute/subscript targets: no named binding to track

    # ------------------------------------------------------ expression step
    def eval_expr(self, expr: ast.AST, env: Env) -> AbstractValue:
        """Abstract value of ``expr``; fires ``on_call`` on every Call."""
        custom = self.rules.eval_expr(expr, env, self)
        if custom is not None:
            # still surface nested calls to the rule (a custom value for
            # `f(g())` must not hide the call to g)
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self.rules.on_call(node, env, self)
            return custom
        if isinstance(expr, ast.Name):
            return env.get(expr.id, BOTTOM)
        if isinstance(expr, ast.Call):
            value = BOTTOM
            for arg in expr.args:
                value |= self.eval_expr(arg, env)
            for kw in expr.keywords:
                value |= self.eval_expr(kw.value, env)
            self.eval_expr(expr.func, env)
            self.rules.on_call(expr, env, self)
            return value
        if isinstance(expr, ast.BinOp):
            return self.eval_expr(expr.left, env) | \
                self.eval_expr(expr.right, env)
        if isinstance(expr, ast.BoolOp):
            value = BOTTOM
            for operand in expr.values:
                value |= self.eval_expr(operand, env)
            return value
        if isinstance(expr, ast.UnaryOp):
            return self.eval_expr(expr.operand, env)
        if isinstance(expr, ast.Compare):
            self.eval_expr(expr.left, env)
            for comparator in expr.comparators:
                self.eval_expr(comparator, env)
            return BOTTOM
        if isinstance(expr, ast.IfExp):
            self.eval_expr(expr.test, env)
            return self.eval_expr(expr.body, env) | \
                self.eval_expr(expr.orelse, env)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            value = BOTTOM
            for element in expr.elts:
                value |= self.eval_expr(element, env)
            return value
        if isinstance(expr, ast.Dict):
            value = BOTTOM
            for key in expr.keys:
                if key is not None:
                    value |= self.eval_expr(key, env)
            for val in expr.values:
                value |= self.eval_expr(val, env)
            return value
        if isinstance(expr, ast.Subscript):
            value = self.eval_expr(expr.value, env)
            self.eval_expr(expr.slice, env)
            return value
        if isinstance(expr, ast.Attribute):
            return self.eval_expr(expr.value, env)
        if isinstance(expr, ast.Starred):
            return self.eval_expr(expr.value, env)
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            for node in ast.iter_child_nodes(expr):
                if isinstance(node, ast.expr):
                    self.eval_expr(node, env)
            return BOTTOM
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comprehension(expr, env)
        if isinstance(expr, ast.Lambda):
            return BOTTOM
        if isinstance(expr, ast.NamedExpr):
            value = self.eval_expr(expr.value, env)
            if isinstance(expr.target, ast.Name):
                env[expr.target.id] = value
            return value
        if isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self.eval_expr(part, env)
            return BOTTOM
        return BOTTOM

    def _eval_comprehension(self, expr, env: Env) -> AbstractValue:
        inner = dict(env)
        for gen in expr.generators:
            iter_val = self.eval_expr(gen.iter, inner)
            self._bind_target(gen.target, iter_val, expr, inner)
            for cond in gen.ifs:
                self.eval_expr(cond, inner)
        if isinstance(expr, ast.DictComp):
            return self.eval_expr(expr.key, inner) | \
                self.eval_expr(expr.value, inner)
        return self.eval_expr(expr.elt, inner)
