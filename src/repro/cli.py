"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``formats``     Describe the number formats at a word size.
``quantize``    Quantize a ``.npy`` tensor file with any format.
``pe``          Print a PE's PPA (energy/op, TOPS/mm², widths).
``experiment``  Run one paper table/figure driver and print it.
``resilience``  Run a seeded bit-flip fault-injection campaign.
``serve-bench`` Measure micro-batched vs serial serving throughput.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["build_parser", "main"]


def _cmd_formats(args: argparse.Namespace) -> int:
    from .analysis import format_table
    from .formats import make_quantizer

    rows = []
    names = ("adaptivfloat", "float", "bfp", "uniform", "posit",
             "fixedpoint", "logquant")
    for name in names:
        quantizer = make_quantizer(name, args.bits)
        spec = quantizer.spec()
        extras = ", ".join(f"{k}={v}" for k, v in spec.items()
                           if k not in ("name", "bits"))
        try:
            count = len(quantizer.codepoints())
        except TypeError:
            count = len(quantizer.codepoints(0))  # adaptive formats
        rows.append([name, args.bits, count, extras])
    print(format_table(["format", "bits", "codepoints", "fields"], rows,
                       title=f"number formats at {args.bits}-bit"))
    return 0


def _cmd_quantize(args: argparse.Namespace) -> int:
    from .formats import make_quantizer
    from .metrics import rms_error

    tensor = np.load(args.input)
    quantizer = make_quantizer(args.fmt, args.bits)
    quantized = quantizer.quantize(tensor.astype(np.float64))
    np.save(args.output, quantized.astype(tensor.dtype))
    print(f"{args.fmt}{args.bits}: wrote {args.output} "
          f"(RMS error {rms_error(tensor, quantized):.6g})")
    return 0


def _cmd_pe(args: argparse.Namespace) -> int:
    from .hardware import make_pe

    pe = make_pe(args.kind, args.bits, args.vector_size)
    print(f"{pe.name} (K={args.vector_size}, H={pe.config.accum_length})")
    print(f"  accumulator width : {pe.accumulator_width} bits")
    print(f"  throughput        : {pe.throughput_ops() / 1e9:.1f} GOPS")
    print(f"  energy per op     : {pe.energy_per_op():.2f} fJ")
    print(f"  datapath area     : {pe.area() * 1e3:.1f} x 1e-3 mm^2")
    print(f"  perf per area     : {pe.perf_per_area():.2f} TOPS/mm^2")
    for part, value in pe.breakdown().items():
        print(f"    {part:10s} {value:8.3f} fJ/op")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from . import experiments

    drivers = {
        "table1": experiments.table1_models,
        "table2": experiments.table2_weight_quant,
        "table3": experiments.table3_weight_act_quant,
        "table4": experiments.table4_accelerator,
        "fig1": experiments.fig1_weight_ranges,
        "fig4": experiments.fig4_rms_error,
        "fig7": experiments.fig7_pe_sweep,
        "ablations": experiments.ablations,
    }
    driver = drivers[args.name]
    if args.name in ("fig7", "table4"):
        result = driver.run()
    elif args.name in ("table2", "table3"):
        result = driver.run(profile=args.profile, jobs=args.jobs)
    else:
        result = driver.run(profile=args.profile)
    print(driver.render(result))
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from .resilience import campaign

    result = campaign.run(
        profile=args.profile, models=tuple(args.models),
        formats=tuple(args.formats), bits=args.bits,
        fields=tuple(args.fields), ber=tuple(args.ber),
        n_flips=args.flips, trials=args.trials, seed=args.seed,
        jobs=args.jobs, engine=not args.naive, shards=args.shards)
    print(campaign.render(result))
    timing = result.get("timing") or {}
    if timing.get("trials_per_sec"):
        print(f"\n{timing['cells']} cells x {result['trials']} trials in "
              f"{timing['wall_time_s']:.2f}s trial-loop time "
              f"({timing['trials_per_sec']:.1f} trials/s, "
              f"{'naive' if args.naive else 'engine'} path)")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .serve.bench import (check_equivalence, measure_scrub_overhead,
                              run_fault_recovery, run_serve_benchmark)

    quant = (args.quant, args.bits) if args.quant else None
    record = run_serve_benchmark(
        model=args.model, concurrency=args.concurrency,
        num_requests=args.requests, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, workers=args.workers,
        seed=args.seed, profile=args.profile, quant=quant,
        max_len=args.max_len)
    stats = record["server_stats"]
    print(f"serve-bench - {args.model} greedy, "
          f"{args.requests} requests @ concurrency {args.concurrency} "
          f"(max_batch={args.max_batch}, max_wait={args.max_wait_ms}ms, "
          f"workers={args.workers})")
    print(f"  serial   : {record['serial']['wall_s']:8.3f}s  "
          f"{record['serial']['requests_per_sec']:8.1f} req/s")
    print(f"  batched  : {record['batched']['wall_s']:8.3f}s  "
          f"{record['batched']['requests_per_sec']:8.1f} req/s")
    print(f"  speedup  : {record['speedup']:.2f}x  "
          f"(BLAS token match {record['blas_token_match_rate']:.0%})")
    print(f"  batches  : {stats['batches']['count']} "
          f"(mean size {stats['batches']['mean_size']}, "
          f"histogram {stats['batches']['histogram']})")
    print(f"  latency  : p50 {stats['latency']['p50_ms']:.1f}ms  "
          f"p95 {stats['latency']['p95_ms']:.1f}ms  "
          f"p99 {stats['latency']['p99_ms']:.1f}ms  "
          f"(queue peak {stats['queue']['depth_peak']})")
    if record["weight_cache"]:
        print(f"  wq-cache : {record['weight_cache']}")
    if args.check:
        verdicts = check_equivalence(models=(args.model,), seed=args.seed,
                                     quant=quant)
        print(f"  identity : {verdicts}")
        if not all(verdicts.values()):
            return 1
    if args.fault_check:
        recovery = run_fault_recovery(model=args.model, seed=args.seed,
                                      quant=quant)
        res = recovery["resilience"]
        inj = recovery["injected"]
        print(f"  fault    : bit {inj['bit_index']} flip in "
              f"{inj['tensor']}[{inj['element']}] -> "
              f"detected={recovery['detected']} "
              f"restored={recovery['restored']} "
              f"retried={recovery['retried']}")
        print(f"  recovery : token_identical="
              f"{recovery['token_identical']} "
              f"failed={recovery['failed_requests']} "
              f"(faults {res['fault_kinds']}, scrubs {res['scrubs']}, "
              f"degradation {res['degradation']})")
        if not recovery["token_identical"] or recovery["failed_requests"]:
            return 1
    if args.scrub_overhead:
        overhead = measure_scrub_overhead(model=args.model, seed=args.seed)
        print(f"  scrub    : p50 {overhead['baseline_p50_ms']:.1f}ms -> "
              f"{overhead['scrubbed_p50_ms']:.1f}ms with scrubbing "
              f"({overhead['p50_overhead']:+.1%}, "
              f"{overhead['scrub_counters']['scrubs']} scrubs)")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from . import obs

    if args.demo:
        # A tiny instrumented workload so the dump shows live families:
        # a few served requests plus one quantized-forward (weight-quant
        # memo traffic) and a codebook touch via the quantize path.
        from .formats import make_quantizer
        from .serve import InferenceServer, ModelPool
        from .serve.bench import build_requests
        import numpy as np
        make_quantizer("adaptivfloat", 8).quantize(
            np.linspace(-1.0, 1.0, 32, dtype=np.float32))
        pool = ModelPool(quant=("adaptivfloat", 8))
        with InferenceServer(pool, max_batch=4, max_wait_ms=5.0) as server:
            for request in build_requests("resnet", 8, max_len=8):
                server.submit(request.kind, request.payload,
                              max_len=request.max_len)
            server.drain()
    else:
        # Importing the instrumented layers registers every metric
        # family, so even a fresh process dumps the full schema.
        from . import nn, resilience, serve  # noqa: F401

    if args.format == "prom":
        print(obs.render_prometheus(), end="")
    else:
        print(obs.render_json())
    if args.spans:
        for span in obs.TRACER.recent(args.spans):
            print(f"# span {span.trace_id} {span.name} "
                  f"{span.duration_s * 1e3:.3f}ms {span.attrs}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("formats", help="describe the number formats")
    p.add_argument("--bits", type=int, default=8)
    p.set_defaults(func=_cmd_formats)

    p = sub.add_parser("quantize", help="quantize a .npy tensor")
    p.add_argument("--fmt", default="adaptivfloat")
    p.add_argument("--bits", type=int, default=8)
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=_cmd_quantize)

    p = sub.add_parser("pe", help="print a PE's PPA")
    p.add_argument("--kind", choices=("int", "hfint"), default="hfint")
    p.add_argument("--bits", type=int, default=8)
    p.add_argument("--vector-size", type=int, default=16)
    p.set_defaults(func=_cmd_pe)

    p = sub.add_parser("experiment", help="run one paper table/figure")
    p.add_argument("name", choices=("table1", "table2", "table3", "table4",
                                    "fig1", "fig4", "fig7", "ablations"))
    p.add_argument("--profile", choices=("tiny", "fast", "full"),
                   default="fast")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the table2/table3 sweeps")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("resilience",
                       help="run a bit-flip fault-injection campaign")
    p.add_argument("--profile", choices=("tiny", "fast", "full"),
                   default="fast")
    p.add_argument("--models", nargs="+", default=["transformer"],
                   choices=("transformer", "seq2seq", "resnet"))
    p.add_argument("--formats", nargs="+",
                   default=["float", "bfp", "uniform", "posit",
                            "adaptivfloat"])
    p.add_argument("--bits", type=int, default=8)
    p.add_argument("--fields", nargs="+",
                   default=["any", "sign", "exponent", "mantissa",
                            "exp_bias"],
                   help="bit classes to target (exp_bias = the adaptive "
                        "register); unsupported (format, field) cells are "
                        "skipped")
    p.add_argument("--ber", nargs="*", type=float, default=[],
                   help="additional whole-word bit-error-rate cells")
    p.add_argument("--flips", type=int, default=1,
                   help="distinct bit flips per injection event")
    p.add_argument("--trials", type=int, default=8,
                   help="injection events per cell")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--shards", type=int, default=None,
                   help="seeded trial chunks per cell (default: --jobs); "
                        "any layout merges to identical counters")
    p.add_argument("--naive", action="store_true",
                   help="use the reference per-trial re-encode loop "
                        "instead of the cached-encode trial engine")
    p.set_defaults(func=_cmd_resilience)

    p = sub.add_parser("serve-bench",
                       help="measure micro-batched vs serial serving "
                            "throughput")
    p.add_argument("--model", choices=("transformer", "seq2seq", "resnet"),
                   default="transformer")
    p.add_argument("--concurrency", type=int, default=16,
                   help="client threads submitting requests")
    p.add_argument("--requests", type=int, default=64,
                   help="total requests in the workload")
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--max-wait-ms", type=float, default=5.0)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--max-len", type=int, default=32,
                   help="decode cap for the synthetic workload")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", choices=("tiny", "fast", "full"),
                   default=None,
                   help="serve the trained checkpoint at this profile "
                        "(default: untrained seeded weights)")
    p.add_argument("--quant", default=None,
                   help="serve with weight fake-quantizers of this format "
                        "(e.g. adaptivfloat)")
    p.add_argument("--bits", type=int, default=8,
                   help="word size for --quant")
    p.add_argument("--check", action="store_true",
                   help="also verify batched-vs-serial token identity "
                        "under deterministic_matmul")
    p.add_argument("--fault-check", action="store_true",
                   help="closed-loop self-healing check: inject an "
                        "exponent-bit weight flip mid-serve and verify "
                        "detect/restore/retry with token-identical output")
    p.add_argument("--scrub-overhead", action="store_true",
                   help="measure the p50 latency cost of golden-copy "
                        "weight scrubbing")
    p.set_defaults(func=_cmd_serve_bench)

    p = sub.add_parser("obs",
                       help="dump the process metrics registry "
                            "(Prometheus text or JSON)")
    p.add_argument("--format", choices=("prom", "json"), default="prom")
    p.add_argument("--demo", action="store_true",
                   help="run a tiny serve+quantize workload first so the "
                        "dump carries live values")
    p.add_argument("--spans", type=int, default=0, metavar="N",
                   help="also print the N most recent trace spans")
    p.set_defaults(func=_cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
