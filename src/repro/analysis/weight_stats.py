"""Per-layer weight statistics of our trained models (Fig. 1 / Fig. 4 input).

The Fig. 4 RMS-error study quantizes every weight matrix of every layer
independently; :func:`layer_weights` extracts exactly the tensors that
the weight-quantization path touches (the same layer set as
:data:`repro.nn.quantize.DEFAULT_QUANTIZED_LAYERS`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..nn.module import Module
from ..nn.quantize import DEFAULT_QUANTIZED_LAYERS

__all__ = ["layer_weights", "weight_range", "weight_summary"]


def layer_weights(model: Module) -> List[Tuple[str, np.ndarray]]:
    """Every quantizable weight tensor, as ``(qualified_name, array)``."""
    out: List[Tuple[str, np.ndarray]] = []
    for name, module in model.named_modules():
        if not isinstance(module, DEFAULT_QUANTIZED_LAYERS):
            continue
        for pname, param in module._parameters.items():
            if pname == "bias" or pname.startswith("bias"):
                continue
            out.append((f"{name}.{pname}" if name else pname, param.data))
    if not out:
        raise ValueError("model has no quantizable weights")
    return out


def weight_range(model: Module) -> Tuple[float, float]:
    """Global (min, max) over all quantizable weights (paper Table 1)."""
    lo = min(float(w.min()) for _, w in layer_weights(model))
    hi = max(float(w.max()) for _, w in layer_weights(model))
    return lo, hi


def weight_summary(model: Module) -> Dict[str, float]:
    """Aggregate stats used in reports."""
    tensors = [w.ravel() for _, w in layer_weights(model)]
    flat = np.concatenate(tensors)
    return {
        "layers": len(tensors),
        "parameters": int(flat.size),
        "w_min": float(flat.min()),
        "w_max": float(flat.max()),
        "w_std": float(flat.std()),
        "abs_p99.9": float(np.percentile(np.abs(flat), 99.9)),
    }
