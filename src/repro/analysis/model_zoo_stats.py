"""Weight-distribution emulators for published models (paper Fig. 1).

Figure 1 compares the *range* of weights across pretrained CNNs
(ResNet-50, Inception-v3, DenseNet-201) and NLP models (Transformer,
BERT, GPT, XLNet, XLM), showing NLP weights more than an order of
magnitude wider.  We cannot ship the pretrained checkpoints, so each
model is represented by a calibrated sampler: a Gaussian bulk (the vast
majority of weights) plus a heavy Student-t tail scaled so the extreme
order statistics land on the published range (Table 1 for the three
evaluated models; visual read-off of Fig. 1 for the rest).  The figure
only uses min/max, which the emulator reproduces by construction.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, List, Tuple

import numpy as np

from ..rng import fresh_rng

__all__ = ["PublishedModel", "PUBLISHED_MODELS", "sample_weights",
           "weight_ranges"]


@dataclasses.dataclass(frozen=True)
class PublishedModel:
    """Range calibration for one pretrained model."""

    name: str
    family: str            # "cnn" | "nlp"
    w_min: float
    w_max: float
    bulk_std: float        # std-dev of the Gaussian bulk
    source: str            # where the range comes from


#: Ranges for the three evaluated models come from paper Table 1;
#: the remaining entries are read off the Fig. 1 axis.
PUBLISHED_MODELS: Tuple[PublishedModel, ...] = (
    PublishedModel("ResNet-50", "cnn", -0.78, 1.32, 0.02, "paper Table 1"),
    PublishedModel("Inception-v3", "cnn", -1.20, 1.40, 0.03, "paper Fig. 1"),
    PublishedModel("DenseNet-201", "cnn", -1.00, 1.10, 0.03, "paper Fig. 1"),
    PublishedModel("Transformer", "nlp", -12.46, 20.41, 0.08, "paper Table 1"),
    PublishedModel("BERT", "nlp", -11.00, 14.00, 0.05, "paper Fig. 1"),
    PublishedModel("GPT", "nlp", -13.00, 15.00, 0.06, "paper Fig. 1"),
    PublishedModel("XLNet", "nlp", -18.00, 22.00, 0.06, "paper Fig. 1"),
    PublishedModel("XLM", "nlp", -23.00, 25.00, 0.07, "paper Fig. 1"),
)


def sample_weights(model: PublishedModel, count: int = 200_000,
                   seed: int = 0) -> np.ndarray:
    """Draw a weight sample whose min/max equal the published range.

    99.9% of the mass is the Gaussian bulk; 0.1% is a heavy t-tail
    stretched to the published extremes (then the extremes are pinned
    exactly, since Fig. 1 plots the observed min/max).
    """
    # crc32 is a pure function of the name; hash() varies per process
    # (PYTHONHASHSEED), which silently made every sample run-dependent.
    rng = fresh_rng(seed + zlib.crc32(model.name.encode("utf-8")) % 65536)
    bulk = rng.normal(scale=model.bulk_std, size=count)
    n_tail = max(count // 1000, 2)
    tail = rng.standard_t(df=2, size=n_tail)
    # scale positive/negative tail halves toward the published extremes
    tail_pos = np.abs(tail[: n_tail // 2]) / 6.0 * model.w_max
    tail_neg = -np.abs(tail[n_tail // 2:]) / 6.0 * abs(model.w_min)
    out = np.concatenate([bulk, tail_pos, tail_neg])
    out = np.clip(out, model.w_min, model.w_max)
    out[0] = model.w_min
    out[1] = model.w_max
    return out


def weight_ranges(count: int = 200_000,
                  seed: int = 0) -> List[Dict[str, object]]:
    """The Fig. 1 dataset: one (name, family, min, max) row per model."""
    rows = []
    for model in PUBLISHED_MODELS:
        sample = sample_weights(model, count, seed)
        rows.append({
            "model": model.name,
            "family": model.family,
            "w_min": float(sample.min()),
            "w_max": float(sample.max()),
            "source": model.source,
        })
    return rows
