"""Analysis utilities: weight statistics, sweeps, reporting."""

from .mixed_precision import assign_mixed_precision, average_bits
from .model_zoo_stats import PUBLISHED_MODELS, PublishedModel, sample_weights, weight_ranges
from .reporting import fmt, format_table, load_result, save_result
from .textplot import ascii_bars, ascii_boxplot, ascii_histogram
from .sweep import (bitwidth_sweep_rms, exponent_width_search_metric,
                    exponent_width_search_rms)
from .weight_stats import layer_weights, weight_range, weight_summary

__all__ = [
    "PUBLISHED_MODELS", "PublishedModel", "ascii_bars", "ascii_boxplot",
    "ascii_histogram", "assign_mixed_precision",
    "average_bits", "bitwidth_sweep_rms", "exponent_width_search_metric",
    "exponent_width_search_rms", "fmt", "format_table", "layer_weights",
    "load_result", "sample_weights", "save_result", "weight_range",
    "weight_ranges", "weight_summary",
]
