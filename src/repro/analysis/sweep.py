"""Parameter sweeps: the paper's exponent-width search and bit sweeps.

Section 4 of the paper: "The number of exponent bits ... is set evenly
for all the layers in the network to the value yielding the highest
inference accuracy after doing a search on the exponent width."  This
module provides that search, both in its cheap RMS-proxy form (over
weight tensors) and its exact form (over a model-evaluation callable).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence, Tuple

import numpy as np

from ..formats import make_quantizer
from ..metrics import rms_error

__all__ = ["exponent_width_search_rms", "exponent_width_search_metric",
           "bitwidth_sweep_rms"]


def _field_name(fmt: str) -> str:
    return "es" if fmt == "posit" else "exp_bits"


def exponent_width_search_rms(tensors: Sequence[np.ndarray], fmt: str,
                              bits: int,
                              candidates: Iterable[int]) -> Tuple[int, Dict[int, float]]:
    """Pick the exponent width minimizing mean per-tensor RMS error."""
    field = _field_name(fmt)
    scores: Dict[int, float] = {}
    for width in candidates:
        try:
            quantizer = make_quantizer(fmt, bits, **{field: width})
        except ValueError:
            continue  # width does not fit in the word
        errors = [rms_error(t, quantizer.quantize(t)) for t in tensors]
        scores[width] = float(np.mean(errors))
    if not scores:
        raise ValueError(f"no feasible exponent width for {fmt}{bits}")
    best = min(scores, key=scores.get)
    return best, scores


def exponent_width_search_metric(evaluate: Callable[[int], float], fmt: str,
                                 bits: int, candidates: Iterable[int],
                                 higher_is_better: bool = True
                                 ) -> Tuple[int, Dict[int, float]]:
    """Exact search: ``evaluate(width)`` returns the model metric."""
    scores: Dict[int, float] = {}
    field = _field_name(fmt)
    for width in candidates:
        try:
            make_quantizer(fmt, bits, **{field: width})
        except ValueError:
            continue
        scores[width] = float(evaluate(width))
    if not scores:
        raise ValueError(f"no feasible exponent width for {fmt}{bits}")
    chooser = max if higher_is_better else min
    best = chooser(scores, key=scores.get)
    return best, scores


def bitwidth_sweep_rms(tensors: Sequence[np.ndarray], fmt: str,
                       bit_list: Sequence[int]) -> Dict[int, float]:
    """Mean per-tensor RMS error across word sizes (paper-default fields)."""
    out: Dict[int, float] = {}
    for bits in bit_list:
        quantizer = make_quantizer(fmt, bits)
        errors = [rms_error(t, quantizer.quantize(t)) for t in tensors]
        out[bits] = float(np.mean(errors))
    return out
