"""Sensitivity-guided mixed-precision bit assignment (extension).

The paper's related work surveys per-layer adaptive-precision schemes
([16, 22]); AdaptivFloat instead fixes the word size and adapts the
exponent range.  This extension combines the two: given a weight-budget
(average bits per weight), assign each layer a word size by a greedy
sensitivity rule — start everyone at the minimum width and repeatedly
promote the layer whose RMS-error reduction per added bit-byte is the
largest — all within the AdaptivFloat encoding.

This is a data-free proxy search (RMS against FP32 weights); plugging
the result into QAR is the intended workflow.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..formats import make_quantizer
from ..metrics import rms_error
from ..nn.module import Module
from .weight_stats import layer_weights

__all__ = ["assign_mixed_precision", "average_bits"]


def _layer_error(weights: np.ndarray, fmt: str, bits: int) -> float:
    quantizer = make_quantizer(fmt, bits)
    return rms_error(weights, quantizer.quantize(weights)) * np.sqrt(weights.size)


def assign_mixed_precision(model: Module, budget_avg_bits: float,
                           fmt: str = "adaptivfloat",
                           bit_choices: Sequence[int] = (4, 5, 6, 7, 8)
                           ) -> Dict[str, int]:
    """Assign per-layer bit widths under a parameter-weighted budget.

    ``budget_avg_bits`` is the target average bits per weight across the
    model.  Returns ``{layer_name: bits}``.  Greedy: each step promotes
    the layer with the best error-reduction per bit-cost until the
    budget is exhausted.
    """
    choices = sorted(set(int(b) for b in bit_choices))
    if len(choices) < 1:
        raise ValueError("need at least one bit choice")
    if not choices[0] <= budget_avg_bits <= choices[-1]:
        raise ValueError(
            f"budget {budget_avg_bits} outside feasible range "
            f"[{choices[0]}, {choices[-1]}]")

    tensors = layer_weights(model)
    sizes = {name: w.size for name, w in tensors}
    total = sum(sizes.values())
    budget_bits = budget_avg_bits * total

    # Precompute per-layer error at each candidate width.
    errors: Dict[str, Dict[int, float]] = {}
    for name, w in tensors:
        errors[name] = {b: _layer_error(w, fmt, b) for b in choices}

    assignment = {name: choices[0] for name, _ in tensors}
    used = choices[0] * total

    def gain(name: str) -> Tuple[float, int]:
        """(error drop per extra bit-cost, next width) for a promotion."""
        current = assignment[name]
        idx = choices.index(current)
        if idx + 1 >= len(choices):
            return 0.0, current
        nxt = choices[idx + 1]
        cost = (nxt - current) * sizes[name]
        drop = errors[name][current] - errors[name][nxt]
        return (drop / cost if cost else 0.0), nxt

    heap: List[Tuple[float, str, int]] = []
    for name, _ in tensors:
        g, nxt = gain(name)
        if g > 0:
            heapq.heappush(heap, (-g, name, nxt))

    while heap:
        neg_g, name, nxt = heapq.heappop(heap)
        if nxt <= assignment[name]:
            continue  # stale entry
        cost = (nxt - assignment[name]) * sizes[name]
        if used + cost > budget_bits:
            continue
        assignment[name] = nxt
        used += cost
        g, following = gain(name)
        if g > 0:
            heapq.heappush(heap, (-g, name, following))
    return assignment


def average_bits(assignment: Dict[str, int], model: Module) -> float:
    """Parameter-weighted average width of an assignment."""
    sizes = {name: w.size for name, w in layer_weights(model)}
    total = sum(sizes.values())
    return sum(bits * sizes[name] for name, bits in assignment.items()) / total
