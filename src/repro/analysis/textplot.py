"""Terminal plots: ASCII boxplots and bar charts for the reports.

The paper's Fig. 4 is a boxplot figure and Fig. 7 a grouped bar chart;
these helpers render faithful text analogues so
``artifacts/reports/*.txt`` can show the *shape* of each figure, not
just its numbers.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["ascii_boxplot", "ascii_bars", "ascii_histogram"]


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return int(round(pos * (width - 1)))


def ascii_boxplot(stats_by_label: Mapping[str, Mapping[str, float]],
                  width: int = 50, title: Optional[str] = None) -> str:
    """Render five-number summaries as horizontal box-and-whisker rows.

    ``stats_by_label`` maps row labels to dicts with ``min``, ``q1``,
    ``median``, ``q3``, ``max`` (as produced by
    :func:`repro.metrics.boxplot_stats`).
    """
    if not stats_by_label:
        raise ValueError("no data")
    lo = min(s["min"] for s in stats_by_label.values())
    hi = max(s["max"] for s in stats_by_label.values())
    label_width = max(len(label) for label in stats_by_label)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, s in stats_by_label.items():
        row = [" "] * width
        i_min = _scale(s["min"], lo, hi, width)
        i_q1 = _scale(s["q1"], lo, hi, width)
        i_med = _scale(s["median"], lo, hi, width)
        i_q3 = _scale(s["q3"], lo, hi, width)
        i_max = _scale(s["max"], lo, hi, width)
        for i in range(i_min, i_q1):
            row[i] = "-"
        for i in range(i_q1, i_q3 + 1):
            row[i] = "="
        for i in range(i_q3 + 1, i_max + 1):
            row[i] = "-"
        row[i_min] = "|"
        row[i_max] = "|"
        row[i_med] = "#"
        lines.append(f"{label.ljust(label_width)} [{''.join(row)}]")
    lines.append(f"{' ' * label_width}  {lo:<.4g}{' ' * (width - 12)}{hi:>.4g}")
    return "\n".join(lines)


def ascii_bars(values_by_label: Mapping[str, float], width: int = 40,
               title: Optional[str] = None, unit: str = "") -> str:
    """Horizontal bar chart, one row per label."""
    if not values_by_label:
        raise ValueError("no data")
    hi = max(values_by_label.values())
    label_width = max(len(label) for label in values_by_label)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values_by_label.items():
        bar = "#" * max(1, _scale(value, 0.0, hi, width) + 1) if hi > 0 else ""
        lines.append(f"{label.ljust(label_width)} {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def ascii_histogram(values: Sequence[float], bins: int = 20, width: int = 40,
                    title: Optional[str] = None) -> str:
    """Vertical-count histogram rendered as horizontal bars."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no data")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max()
    lines: List[str] = []
    if title:
        lines.append(title)
    for count, lo_edge, hi_edge in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * (_scale(count, 0, peak, width) + 1) if peak else ""
        lines.append(f"[{lo_edge:>9.3g}, {hi_edge:>9.3g}) {bar} {count}")
    return "\n".join(lines)
