"""Plain-text table rendering and JSON result persistence.

Every experiment driver returns a structured dict and can render it as
the ASCII analogue of the paper's table/figure; results are also saved
under ``<cache>/results`` so EXPERIMENTS.md numbers are regenerable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence

from ..cache import cache_dir

__all__ = ["format_table", "save_result", "load_result", "fmt"]


def fmt(value: Any, digits: int = 2) -> str:
    """Format a cell: floats rounded, inf shown like the paper's 'inf'."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf"
        return f"{value:.{digits}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None, digits: int = 2) -> str:
    """Render an aligned ASCII table."""
    cells = [[fmt(c, digits) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _results_dir() -> pathlib.Path:
    path = cache_dir() / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_result(name: str, payload: Dict[str, Any]) -> pathlib.Path:
    """Persist an experiment result dict as JSON (inf-safe)."""
    path = _results_dir() / f"{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path


def load_result(name: str) -> Optional[Dict[str, Any]]:
    path = _results_dir() / f"{name}.json"
    if not path.exists():
        return None
    with open(path) as handle:
        return json.load(handle)
