"""Bit-accurate functional simulation of the two PE datapaths.

The analytical models in :mod:`repro.hardware.pe` answer "how much does
it cost"; this module answers "what does it compute".  Both MAC
pipelines are simulated at integer precision with the exact register
widths of paper Fig. 5:

* :class:`IntVectorMac` — n-bit integer operands, ``2n + log2(H)``-bit
  saturating accumulation, S-bit fixed-point requantization multiply,
  right shift, clip/truncate to n bits.
* :class:`HFIntVectorMac` — AdaptivFloat operands entering as raw bit
  words, mantissa multiply + exponent add, alignment into a
  ``2(2^e-1) + 2m + log2(H)``-bit saturating integer accumulator,
  ``exp_bias``-driven output shift, clip to an n-bit integer, and
  integer-to-AdaptivFloat conversion at the output.

Tests verify each pipeline against a float64 reference within the error
bound implied by its truncations — the numerical contract of the paper's
co-design.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Optional, Tuple

import numpy as np

from ..formats import AdaptivFloat

__all__ = ["IntVectorMac", "HFIntVectorMac", "RequantParams",
           "MacWidthSpec", "int_width_spec", "hfint_width_spec"]


def _saturate(x: np.ndarray, width: int) -> np.ndarray:
    """Two's-complement saturation to ``width`` bits (signed)."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return np.clip(x, lo, hi)


_INT64_MAX = 2 ** 63 - 1


@dataclasses.dataclass(frozen=True)
class MacWidthSpec:
    """The width arithmetic of one MAC configuration, as data.

    Everything downstream of the paper's Fig. 5 register formulas is
    derived here with exact integers so it can be *consumed* rather than
    re-derived: the simulator uses it to pick a sound fast path, and the
    HW001 static prover (:mod:`repro.lint.ranges`) uses it to prove or
    refute "the accumulator cannot overflow before saturation" per
    registry format.

    ``term_max`` is the largest |aligned product| one cycle can add;
    ``sum_max`` is the largest |running sum| any prefix of an H-term
    accumulation can reach *ignoring* saturation — the quantity that
    must fit both the presaturation adder and the int64 arithmetic of
    the vectorized cumulative-sum fast path.
    """

    pe: str              # "int" | "hfint"
    bits: int
    accum_length: int
    acc_width: int       # the paper's saturating register width
    term_max: int        # exact max |product| entering the adder per cycle
    sum_max: int         # exact max |unsaturated prefix sum| over H cycles
    exp_shift_max: int = 0   # hfint: max total alignment shift per product

    @property
    def window_max(self) -> int:
        """Largest value the saturating register can hold."""
        return (1 << (self.acc_width - 1)) - 1

    @property
    def presat_bits(self) -> int:
        """Exact signed width needed to hold any unsaturated prefix sum."""
        return self.sum_max.bit_length() + 1

    @property
    def fast_path_exact(self) -> bool:
        """Whether int64 cumulative sums are exact (no wrap) pre-saturation."""
        return self.sum_max <= _INT64_MAX

    @property
    def cycle_max(self) -> int:
        """Largest |value| one saturate-per-cycle step can see."""
        return self.window_max + self.term_max

    @property
    def overflow_free(self) -> bool:
        """True when saturation is unreachable: every exact H-term sum
        already fits the register window."""
        return self.sum_max <= self.window_max


def int_width_spec(bits: int, accum_length: int,
                   level_max: Optional[int] = None) -> MacWidthSpec:
    """Width spec of the Fig. 5a integer MAC (``2n + log2(H)`` register)."""
    if level_max is None:
        level_max = 2 ** (bits - 1) - 1
    term = level_max * level_max
    return MacWidthSpec(
        pe="int", bits=bits, accum_length=accum_length,
        acc_width=2 * bits + int(math.log2(accum_length)),
        term_max=term, sum_max=accum_length * term)


def hfint_width_spec(bits: int, exp_bits: int,
                     accum_length: int) -> MacWidthSpec:
    """Width spec of the Fig. 5b hybrid float-integer MAC
    (``2(2^e-1) + 2m + log2(H)`` register)."""
    mant_bits = bits - exp_bits - 1
    mant_max = 2 ** (mant_bits + 1) - 1
    shift_max = 2 * (2 ** exp_bits - 1)
    term = mant_max * mant_max * (1 << shift_max)
    return MacWidthSpec(
        pe="hfint", bits=bits, accum_length=accum_length,
        acc_width=(2 * (2 ** exp_bits - 1) + 2 * mant_bits
                   + int(math.log2(accum_length))),
        term_max=term, sum_max=accum_length * term,
        exp_shift_max=shift_max)


def _saturating_row_sum(terms: np.ndarray, width: int) -> np.ndarray:
    """Sequential per-cycle saturating accumulation of each row of
    ``terms`` (rows, H) — bit-exact with the hardware's cycle loop.

    A row whose running sum never leaves the ``width``-bit window is
    unaffected by saturation, so its result is just the row total; the
    vectorized fast path computes cumulative sums, detects in-window
    rows, and falls back to the exact cycle-by-cycle loop only for rows
    that saturate somewhere.  Callers must ensure the worst-case
    *unsaturated* prefix sum fits int64 (``MacWidthSpec.fast_path_exact``)
    or the cumulative sums here wrap and rows can be misclassified.
    """
    rows, length = terms.shape
    if length == 0:
        return np.zeros(rows, dtype=np.int64)
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    running = np.cumsum(terms, axis=1)
    out = np.clip(running[:, -1], lo, hi)
    bad = np.flatnonzero((running.min(axis=1) < lo)
                         | (running.max(axis=1) > hi))
    for i in bad:
        acc = 0
        for t in terms[i]:
            acc = min(max(acc + int(t), lo), hi)
        out[i] = acc
    return out


@dataclasses.dataclass(frozen=True)
class RequantParams:
    """Fixed-point requantization multiplier ``M / 2**frac_bits``.

    The INT PE dequantizes with a high-precision scale (paper Section
    5.1): the float ``scale`` is encoded as an S-bit integer mantissa
    with a fractional width, exactly as TensorRT-style engines do.
    """

    multiplier: int
    frac_bits: int

    @classmethod
    def from_scale(cls, scale: float, scale_bits: int) -> "RequantParams":
        """Encode a positive float scale into S bits (normalized)."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        frac = scale_bits - 1 - math.floor(math.log2(scale))
        multiplier = int(round(scale * (1 << frac)))
        if multiplier >= 1 << scale_bits:  # rounding overflow
            multiplier >>= 1
            frac -= 1
        return cls(multiplier=multiplier, frac_bits=frac)

    @property
    def value(self) -> float:
        return self.multiplier / float(1 << self.frac_bits)


class IntVectorMac:
    """NVDLA-like integer MAC + requantization pipeline (Fig. 5a)."""

    def __init__(self, bits: int = 8, accum_length: int = 256,
                 scale_bits: Optional[int] = None) -> None:
        self.bits = bits
        self.accum_length = accum_length
        self.scale_bits = scale_bits or 2 * bits
        self.width_spec = int_width_spec(bits, accum_length)
        self.acc_width = self.width_spec.acc_width
        self.scaled_width = self.acc_width + self.scale_bits
        self.level_max = 2 ** (bits - 1) - 1
        if self.width_spec.cycle_max > _INT64_MAX:
            raise ValueError(
                f"IntVectorMac(bits={bits}, H={accum_length}) cannot be "
                "simulated bit-exactly in int64 arithmetic")

    def check_levels(self, levels: np.ndarray) -> np.ndarray:
        levels = np.asarray(levels, dtype=np.int64)
        if np.any(np.abs(levels) > self.level_max):
            raise ValueError(f"operand exceeds {self.bits}-bit range")
        return levels

    def accumulate(self, w_levels: np.ndarray, a_levels: np.ndarray) -> np.ndarray:
        """Sequentially accumulate ``(out, in) x (in,)`` with saturation
        at the accumulator width each cycle, as the hardware would."""
        w = self.check_levels(w_levels)
        a = self.check_levels(a_levels)
        if w.shape[1] != a.shape[0]:
            raise ValueError("shape mismatch")
        if w.shape[1] > self.accum_length:
            raise ValueError(
                f"reduction length {w.shape[1]} exceeds H={self.accum_length}")
        if self.width_spec.fast_path_exact:
            return _saturating_row_sum(w * a[None, :], self.acc_width)
        acc = np.zeros(w.shape[0], dtype=np.int64)
        for j in range(w.shape[1]):
            acc = _saturate(acc + w[:, j] * a[j], self.acc_width)
        return acc

    def requantize(self, acc: np.ndarray, requant: RequantParams) -> np.ndarray:
        """Scale, shift and clip back to n-bit output levels."""
        scaled = _saturate(acc * requant.multiplier, self.scaled_width)
        # Arithmetic right shift with round-to-nearest (add half LSB).
        half = 1 << (requant.frac_bits - 1) if requant.frac_bits > 0 else 0
        shifted = (scaled + half) >> requant.frac_bits
        return _saturate(shifted, self.bits)

    def accumulate_tiled(self, w_levels: np.ndarray,
                         a_levels: np.ndarray) -> np.ndarray:
        """Reductions longer than H: process H-wide tiles and combine the
        partial sums in an extended register (``acc + ceil(log2(tiles))``
        bits), the output-stationary pattern a real tiling loop uses."""
        w = self.check_levels(w_levels)
        a = self.check_levels(a_levels)
        length = w.shape[1]
        tiles = max(1, -(-length // self.accum_length))
        extended = self.acc_width + max(1, math.ceil(math.log2(tiles))) \
            if tiles > 1 else self.acc_width
        total = np.zeros(w.shape[0], dtype=np.int64)
        for start in range(0, length, self.accum_length):
            stop = min(start + self.accum_length, length)
            partial = self.accumulate(w[:, start:stop], a[start:stop])
            total = _saturate(total + partial, extended)
        return total

    def matvec(self, w_levels: np.ndarray, a_levels: np.ndarray,
               requant: RequantParams,
               activation: Optional[Callable[[np.ndarray], np.ndarray]] = None
               ) -> np.ndarray:
        """Full pipeline: accumulate -> requantize -> activation (on the
        integer grid).  Returns n-bit output levels.  Reductions longer
        than H are tiled automatically."""
        w = np.asarray(w_levels)
        if w.shape[1] > self.accum_length:
            acc = self.accumulate_tiled(w_levels, a_levels)
        else:
            acc = self.accumulate(w_levels, a_levels)
        out = self.requantize(acc, requant)
        if activation is not None:
            out = _saturate(np.asarray(activation(out), dtype=np.int64), self.bits)
        return out


class HFIntVectorMac:
    """Hybrid float-integer MAC pipeline (Fig. 5b).

    Operands are AdaptivFloat words plus their per-tensor ``exp_bias``
    values (held in the PE's 4-bit bias registers).  The accumulator is
    a plain integer register holding the sum in units of
    ``2**(bias_w + bias_a - 2m)``.
    """

    def __init__(self, bits: int = 8, exp_bits: int = 3,
                 accum_length: int = 256) -> None:
        self.bits = bits
        self.exp_bits = exp_bits
        self.mant_bits = bits - exp_bits - 1
        self.accum_length = accum_length
        self.width_spec = hfint_width_spec(bits, exp_bits, accum_length)
        self.acc_width = self.width_spec.acc_width
        if self.width_spec.cycle_max > _INT64_MAX:
            raise ValueError(
                f"HFIntVectorMac(bits={bits}, exp_bits={exp_bits}, "
                f"H={accum_length}) cannot be simulated bit-exactly in "
                "int64 arithmetic")
        self.fmt = AdaptivFloat(bits, exp_bits)

    # ------------------------------------------------------------ decoding
    def _fields(self, words: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split words into (sign in {-1,+1}, stored exponent, integer
        mantissa with implied one); zero words get mantissa 0."""
        w = np.asarray(words, dtype=np.int64)
        m = self.mant_bits
        sign = np.where((w >> (self.bits - 1)) & 1, -1, 1).astype(np.int64)
        exp = (w >> m) & (2 ** self.exp_bits - 1)
        frac = w & (2 ** m - 1)
        mant = (1 << m) + frac
        is_zero = (exp == 0) & (frac == 0)
        return sign, exp, np.where(is_zero, 0, mant)

    # ---------------------------------------------------------- accumulate
    def accumulate(self, w_words: np.ndarray, a_words: np.ndarray) -> np.ndarray:
        """``(out, in)`` weight words x ``(in,)`` activation words ->
        integer accumulators in units of ``2**-(2m)`` (before biases)."""
        w_words = np.asarray(w_words)
        a_words = np.asarray(a_words)
        if w_words.shape[1] != a_words.shape[0]:
            raise ValueError("shape mismatch")
        if w_words.shape[1] > self.accum_length:
            raise ValueError(
                f"reduction length {w_words.shape[1]} exceeds H={self.accum_length}")
        ws, we, wm = self._fields(w_words)
        as_, ae, am = self._fields(a_words)
        if self.width_spec.fast_path_exact:
            # mantissa multiply, exponent add, alignment shift — all
            # (out, in) elementwise; per-cycle saturation in the helper
            products = (ws * wm) * (as_ * am)[None, :]
            aligned = products << (we + ae[None, :])
            return _saturating_row_sum(aligned, self.acc_width)
        acc = np.zeros(w_words.shape[0], dtype=np.int64)
        for j in range(w_words.shape[1]):
            # mantissa multiply, exponent add, alignment shift
            product = ws[:, j] * as_[j] * wm[:, j] * am[j]
            aligned = product << (we[:, j] + ae[j])
            acc = _saturate(acc + aligned, self.acc_width)
        return acc

    # ------------------------------------------------------- postprocessing
    def output_shift_for(self, preact_max_abs: float,
                         bias_w: int, bias_a: int) -> int:
        """Shift aligning the accumulator to an n-bit integer covering
        ``preact_max_abs`` (derived from offline calibration, like the
        activation exp_bias in paper Section 5.2)."""
        if preact_max_abs <= 0:
            return 0
        acc_units = preact_max_abs / 2.0 ** (bias_w + bias_a - 2 * self.mant_bits)
        needed = max(0, math.ceil(math.log2(acc_units / (2 ** (self.bits - 1) - 1)))
                     if acc_units > 0 else 0)
        return needed

    def matvec(self, w_words: np.ndarray, bias_w: int,
               a_words: np.ndarray, bias_a: int,
               out_bias: int, shift: int,
               activation: Optional[Callable[[np.ndarray], np.ndarray]] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Full pipeline.  Returns ``(out_words, out_values)`` where
        ``out_words`` are AdaptivFloat words under ``out_bias``.

        ``activation`` operates on the real-valued pre-activations (the
        PE's activation unit is a lookup on the truncated integers, which
        is exact for any pointwise function).
        """
        acc = self.accumulate(w_words, a_words)
        # exp_bias-driven shift + clip/truncate to n-bit integer
        half = 1 << (shift - 1) if shift > 0 else 0
        ints = _saturate((acc + half) >> shift, self.bits)
        # the integer grid step in real units:
        step = 2.0 ** (bias_w + bias_a - 2 * self.mant_bits + shift)
        preact = ints.astype(np.float64) * step
        values = activation(preact) if activation is not None else preact
        # integer-to-AdaptivFloat conversion at the PE output
        quantized = self.fmt.quantize_with_params(values, {"exp_bias": out_bias})
        words = self.fmt.encode(quantized, out_bias)
        return words, quantized
