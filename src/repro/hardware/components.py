"""Energy/area models of the primitive datapath circuits.

Every function is linear in the calibrated coefficients of
:mod:`repro.hardware.constants`, mirroring how the coefficients were
fitted.  All energies are dynamic fJ per activation of the circuit at
1 GHz; all areas are mm².
"""

from __future__ import annotations

from .constants import (AREA_16NM, ENERGY_16NM, SRAM_16NM, AreaCoefficients,
                        EnergyCoefficients, SramParameters)

__all__ = [
    "multiplier_energy", "adder_energy", "shifter_energy", "register_energy",
    "sram_read_energy", "control_energy",
    "multiplier_area", "adder_area", "shifter_area", "register_area",
    "control_area", "sram_area", "sram_read_energy_macro",
    "sram_write_energy_macro", "sram_leakage_mw",
]


# --------------------------------------------------------------- energy (fJ)
def multiplier_energy(bits_a: int, bits_b: int,
                      coef: EnergyCoefficients = ENERGY_16NM) -> float:
    """Array multiplier: energy scales with the partial-product count."""
    return coef.mult_per_bit2 * bits_a * bits_b


def adder_energy(bits: int, coef: EnergyCoefficients = ENERGY_16NM) -> float:
    return coef.add_per_bit * bits


def shifter_energy(bits: int, coef: EnergyCoefficients = ENERGY_16NM) -> float:
    return coef.shift_per_bit * bits


def register_energy(bits: int, coef: EnergyCoefficients = ENERGY_16NM) -> float:
    return coef.reg_per_bit * bits


def sram_read_energy(bits: int, coef: EnergyCoefficients = ENERGY_16NM) -> float:
    """Effective operand-delivery energy (buffer read + distribution)."""
    return coef.sram_read_per_bit * bits


def control_energy(coef: EnergyCoefficients = ENERGY_16NM) -> float:
    """Per-cycle PE sequencing/clock-tree energy."""
    return coef.ctrl_per_cycle


# ---------------------------------------------------------------- area (mm²)
def multiplier_area(bits_a: int, bits_b: int,
                    coef: AreaCoefficients = AREA_16NM) -> float:
    return coef.mult_per_bit2 * bits_a * bits_b


def adder_area(bits: int, coef: AreaCoefficients = AREA_16NM) -> float:
    return coef.add_per_bit * bits


def shifter_area(bits: int, coef: AreaCoefficients = AREA_16NM) -> float:
    return coef.shift_per_bit * bits


def register_area(bits: int, coef: AreaCoefficients = AREA_16NM) -> float:
    return coef.reg_per_bit * bits


def control_area(coef: AreaCoefficients = AREA_16NM) -> float:
    return coef.ctrl_fixed


# ----------------------------------------------------------------- SRAM macro
def sram_area(kib: float, sram: SramParameters = SRAM_16NM) -> float:
    return sram.area_per_kib * kib


def sram_read_energy_macro(bits: int, sram: SramParameters = SRAM_16NM) -> float:
    return sram.read_fj_per_bit * bits


def sram_write_energy_macro(bits: int, sram: SramParameters = SRAM_16NM) -> float:
    return sram.write_fj_per_bit * bits


def sram_leakage_mw(kib: float, sram: SramParameters = SRAM_16NM) -> float:
    return sram.leakage_mw_per_mib * (kib / 1024.0)
