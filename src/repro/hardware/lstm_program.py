"""Compile an LSTM cell onto the HFINT datapath (the Fig. 6 workload).

The paper's accelerator is "targeted for RNN and FC sequence-to-sequence
networks" and its Table 4 workload is an LSTM.  This module lowers one
:class:`~repro.nn.layers.recurrent.LSTMCell` to PE state and steps it
with the bit-accurate :class:`~repro.hardware.datapath.HFIntVectorMac`:

* the two gate matrices (``weight_ih``/``weight_hh``) become packed
  AdaptivFloat bitstreams with their ``exp_bias`` registers;
* gate pre-activations accumulate in the wide integer register, biases
  join in accumulator units, and the exp_bias-driven shift truncates to
  8-bit integers;
* sigmoid/tanh are the activation unit's lookups (pointwise, exact);
* the cell state ``c`` and hidden state ``h`` are re-quantized to
  AdaptivFloat between steps with offline-calibrated biases — exactly
  the per-tensor registers of paper Section 5.2.

Tests verify the stepped hardware cell tracks the FP32 cell closely and
the software fake-quantized cell almost exactly.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

import numpy as np

from ..formats import AdaptivFloat
from ..formats.bitpack import pack_words, unpack_words
from .datapath import HFIntVectorMac

__all__ = ["LSTMCellProgram", "compile_lstm_cell"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclasses.dataclass
class LSTMCellProgram:
    """One LSTM cell lowered to HFINT PE state."""

    bits: int
    exp_bits: int
    accum_length: int
    hidden: int
    input_size: int
    wih_stream: bytes
    whh_stream: bytes
    wih_bias: int
    whh_bias: int
    x_bias: int              # input-frame exp_bias register
    h_bias: int              # hidden-state exp_bias register
    c_bias: int              # cell-state exp_bias register
    gate_shift: int          # post-accumulation shift for the gate sums
    bias_values: np.ndarray  # FP bias vector (4H,) applied at the act unit

    # ------------------------------------------------------------ helpers
    def _mac(self) -> HFIntVectorMac:
        return HFIntVectorMac(self.bits, self.exp_bits, self.accum_length)

    def _words(self, stream: bytes, rows: int, cols: int) -> np.ndarray:
        return unpack_words(stream, self.bits, rows * cols).reshape(rows, cols)

    def _tiled(self, mac: HFIntVectorMac, w_words: np.ndarray,
               a_words: np.ndarray) -> np.ndarray:
        length = w_words.shape[1]
        if length <= self.accum_length:
            return mac.accumulate(w_words, a_words)
        total = np.zeros(w_words.shape[0], dtype=np.int64)
        for start in range(0, length, self.accum_length):
            stop = min(start + self.accum_length, length)
            total += mac.accumulate(w_words[:, start:stop],
                                    a_words[start:stop])
        return total

    # ------------------------------------------------------------- stepping
    def step(self, x: np.ndarray,
             state: Optional[Tuple[np.ndarray, np.ndarray]] = None
             ) -> Tuple[np.ndarray, np.ndarray]:
        """One time step for one input vector; returns dequantized (h, c)."""
        fmt = AdaptivFloat(self.bits, self.exp_bits)
        mac = self._mac()
        hs = self.hidden
        if state is None:
            h = np.zeros(hs)
            c = np.zeros(hs)
        else:
            h, c = state

        x_q = fmt.quantize_with_params(np.asarray(x, dtype=np.float64),
                                       {"exp_bias": self.x_bias})
        h_q = fmt.quantize_with_params(np.asarray(h, dtype=np.float64),
                                       {"exp_bias": self.h_bias})
        x_words = fmt.encode(x_q, self.x_bias)
        h_words = fmt.encode(h_q, self.h_bias)

        wih = self._words(self.wih_stream, 4 * hs, self.input_size)
        whh = self._words(self.whh_stream, 4 * hs, hs)
        m = mac.mant_bits
        acc_ih = self._tiled(mac, wih, x_words)
        acc_hh = self._tiled(mac, whh, h_words)
        unit_ih = 2.0 ** (self.wih_bias + self.x_bias - 2 * m)
        unit_hh = 2.0 ** (self.whh_bias + self.h_bias - 2 * m)
        # the two partial sums are aligned into a common grid by shifting
        # (model: dequantize each in its own unit, truncate at gate_shift)
        step_unit = 2.0 ** self.gate_shift
        level_max = (1 << (self.bits + 8)) - 1  # gate register, wide
        gates_int = np.clip(
            np.rint(acc_ih * unit_ih / step_unit)
            + np.rint(acc_hh * unit_hh / step_unit),
            -level_max, level_max)
        gates = gates_int * step_unit + self.bias_values

        i = _sigmoid(gates[0 * hs:1 * hs])
        f = _sigmoid(gates[1 * hs:2 * hs])
        g = np.tanh(gates[2 * hs:3 * hs])
        o = _sigmoid(gates[3 * hs:4 * hs])
        c_q = fmt.quantize_with_params(c, {"exp_bias": self.c_bias})
        c_new = f * c_q + i * g
        c_new = fmt.quantize_with_params(c_new, {"exp_bias": self.c_bias})
        h_new = o * np.tanh(c_new)
        h_new = fmt.quantize_with_params(h_new, {"exp_bias": self.h_bias})
        return h_new, c_new

    def run(self, frames: np.ndarray) -> np.ndarray:
        """Step a (T, input_size) sequence; returns (T, hidden) h states."""
        state: Optional[Tuple[np.ndarray, np.ndarray]] = None
        outputs: List[np.ndarray] = []
        for frame in np.asarray(frames, dtype=np.float64):
            h, c = self.step(frame, state)
            state = (h, c)
            outputs.append(h)
        return np.stack(outputs)


def compile_lstm_cell(weight_ih: np.ndarray, weight_hh: np.ndarray,
                      bias: np.ndarray, calibration_frames: np.ndarray,
                      bits: int = 8, exp_bits: int = 3,
                      accum_length: int = 256) -> LSTMCellProgram:
    """Lower an LSTM cell to :class:`LSTMCellProgram`.

    ``weight_ih``: (4H, I); ``weight_hh``: (4H, H); ``bias``: (4H,).
    ``calibration_frames``: (T, I) representative frames used to program
    the exp_bias registers and the gate truncation shift offline.
    """
    weight_ih = np.asarray(weight_ih, dtype=np.float64)
    weight_hh = np.asarray(weight_hh, dtype=np.float64)
    bias = np.asarray(bias, dtype=np.float64)
    hidden = weight_hh.shape[1]
    if weight_ih.shape[0] != 4 * hidden or weight_hh.shape[0] != 4 * hidden:
        raise ValueError("gate matrices must have 4*hidden rows")

    fmt = AdaptivFloat(bits, exp_bits)
    wih_bias = int(fmt.fit(weight_ih)["exp_bias"])
    whh_bias = int(fmt.fit(weight_hh)["exp_bias"])
    x_bias = int(fmt.fit(calibration_frames)["exp_bias"])
    # h/c live in (-1, 1): anchor their registers at 1.0.
    h_bias = int(fmt.fit(np.asarray([1.0]))["exp_bias"])
    c_bias = int(fmt.fit(np.asarray([2.0]))["exp_bias"])

    # FP32 calibration pass for the gate pre-activation range.
    h = np.zeros(hidden)
    c = np.zeros(hidden)
    gate_max = 1e-9
    for x in np.asarray(calibration_frames, dtype=np.float64):
        gates = weight_ih @ x + weight_hh @ h + bias
        gate_max = max(gate_max, float(np.abs(gates).max()))
        i = _sigmoid(gates[:hidden])
        f = _sigmoid(gates[hidden:2 * hidden])
        g = np.tanh(gates[2 * hidden:3 * hidden])
        o = _sigmoid(gates[3 * hidden:])
        c = f * c + i * g
        h = o * np.tanh(c)
    # gate grid: 2**gate_shift steps covering gate_max with 2**(bits+8)
    gate_shift = math.ceil(math.log2(gate_max / (1 << (bits + 8 - 1))))

    wih_q = fmt.quantize_with_params(weight_ih, {"exp_bias": wih_bias})
    whh_q = fmt.quantize_with_params(weight_hh, {"exp_bias": whh_bias})
    return LSTMCellProgram(
        bits=bits, exp_bits=exp_bits, accum_length=accum_length,
        hidden=hidden, input_size=weight_ih.shape[1],
        wih_stream=pack_words(fmt.encode(wih_q, wih_bias).ravel(), bits),
        whh_stream=pack_words(fmt.encode(whh_q, whh_bias).ravel(), bits),
        wih_bias=wih_bias, whh_bias=whh_bias,
        x_bias=x_bias, h_bias=h_bias, c_bias=c_bias,
        gate_shift=gate_shift, bias_values=bias)
