"""System model of the 4-PE accelerator (paper Fig. 6 / Table 4).

Four PEs plus a 1 MB global buffer (GB) connected by an arbitrated
crossbar and a broadcast bus, running a weight-stationary LSTM: gate
matrices are partitioned across PEs, activations are collected into the
GB each time step and broadcast back for the next one (Section 6.1).

The schedule model counts exact MAC cycles and explicit transfer /
activation-unit cycles; a per-step pipeline-ramp constant absorbs the
HLS pipeline fill the paper's Catapult flow reports (calibrated so the
8-bit K=16 systems land on Table 4's 81.2 us — both PE flavours share
the same aggregate pipelining, hence identical latency, exactly as the
paper observes).  Energy integrates the PE per-op model over busy
cycles, SRAM/crossbar traffic per bit, and leakage over the runtime.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from . import components as comp
from .constants import CLOCK_HZ
from .pe import make_pe
from .workload import LSTMWorkload, PAPER_WORKLOAD

__all__ = ["AcceleratorConfig", "Accelerator", "paper_accelerator"]


@dataclasses.dataclass(frozen=True)
class AcceleratorConfig:
    """System-level parameters (paper Section 6.1 defaults)."""

    pe_kind: str = "int"             # "int" or "hfint"
    bits: int = 8
    vector_size: int = 16
    num_pes: int = 4
    weight_buffer_kib: int = 512     # per PE (paper: 256 KB - 1 MB)
    input_buffer_kib: int = 4        # per PE (paper: 1 KB - 4 KB)
    global_buffer_kib: int = 1024    # paper: 1 MB GB
    crossbar_lanes: int = 4          # activations collected per cycle
    pipeline_ramp_cycles: int = 108  # per time step, calibrated to Table 4
    activity_factor: float = 0.78    # HLS-reported vs peak switching
    logic_leakage_mw_per_mm2: float = 0.3


class Accelerator:
    """Cycle/energy/area model of one accelerator instance."""

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config
        self.pe = make_pe(config.pe_kind, config.bits, config.vector_size)

    # ------------------------------------------------------------ schedule
    def cycles_per_step(self, workload: LSTMWorkload) -> Dict[str, int]:
        """Cycle breakdown of one LSTM time step."""
        cfg = self.config
        k = cfg.vector_size
        mac_throughput = cfg.num_pes * k * k
        compute = math.ceil(workload.macs_per_step / mac_throughput)
        # LSTM pointwise gate math in the per-PE activation units.
        act = math.ceil(workload.gate_outputs_per_step
                        / (cfg.num_pes * cfg.crossbar_lanes))
        # Hidden-state collection into the GB and broadcast back.
        collect = math.ceil(workload.hidden / cfg.crossbar_lanes)
        broadcast = math.ceil(workload.hidden / cfg.crossbar_lanes)
        return {
            "compute": compute,
            "activation": act,
            "collect": collect,
            "broadcast": broadcast,
            "pipeline": cfg.pipeline_ramp_cycles,
        }

    def total_cycles(self, workload: LSTMWorkload) -> int:
        per_step = sum(self.cycles_per_step(workload).values())
        return per_step * workload.timesteps

    def runtime_us(self, workload: LSTMWorkload) -> float:
        """End-to-end latency in microseconds (paper Table 4 column 3)."""
        return self.total_cycles(workload) / CLOCK_HZ * 1e6

    # -------------------------------------------------------------- energy
    def dynamic_energy_fj(self, workload: LSTMWorkload) -> Dict[str, float]:
        """Dynamic energy breakdown over the full workload (fJ)."""
        cfg = self.config
        steps = workload.timesteps
        n = cfg.bits
        datapath = (workload.total_ops * self.pe.energy_per_op()
                    * cfg.activity_factor)
        # Hidden state to GB and back, each step: write + read n-bit words.
        gb_traffic_bits = 2 * workload.hidden * n * steps
        gb = (comp.sram_read_energy_macro(gb_traffic_bits // 2)
              + comp.sram_write_energy_macro(gb_traffic_bits // 2))
        # Crossbar/bus toggling ~ one register hop per transported bit.
        xbar = comp.register_energy(gb_traffic_bits) * 4
        # Activation unit: one lookup/ALU pass per gate output.
        act_unit = (workload.gate_outputs_per_step * steps
                    * comp.adder_energy(2 * n))
        return {"datapath": datapath, "global_buffer": gb,
                "crossbar": xbar, "activation_unit": act_unit}

    def leakage_mw(self) -> float:
        cfg = self.config
        sram_kib = (cfg.num_pes * (cfg.weight_buffer_kib + cfg.input_buffer_kib)
                    + cfg.global_buffer_kib)
        return (comp.sram_leakage_mw(sram_kib)
                + self.logic_area() * cfg.logic_leakage_mw_per_mm2)

    def power_mw(self, workload: LSTMWorkload) -> float:
        """Average power over the workload (paper Table 4 column 1)."""
        energy_fj = sum(self.dynamic_energy_fj(workload).values())
        time_s = self.total_cycles(workload) / CLOCK_HZ
        return energy_fj * 1e-12 / time_s + self.leakage_mw()

    # ---------------------------------------------------------------- area
    def logic_area(self) -> float:
        return self.config.num_pes * self.pe.area()

    def sram_area(self) -> float:
        cfg = self.config
        per_pe = cfg.weight_buffer_kib + cfg.input_buffer_kib
        return comp.sram_area(cfg.num_pes * per_pe + cfg.global_buffer_kib)

    def area_mm2(self) -> float:
        """Total area (paper Table 4 column 2): PE datapaths + SRAMs +
        crossbar/bus wiring overhead (10% of SRAM+logic)."""
        base = self.logic_area() + self.sram_area()
        return base * 1.10

    # -------------------------------------------------------------- report
    def report(self, workload: LSTMWorkload = PAPER_WORKLOAD) -> Dict[str, float]:
        """The Table 4 row for this accelerator."""
        return {
            "name": f"{self.config.pe_kind.upper()} accelerator "
                    f"with {self.config.num_pes} {self.pe.name} PEs",
            "power_mw": self.power_mw(workload),
            "area_mm2": self.area_mm2(),
            "runtime_us": self.runtime_us(workload),
        }


def paper_accelerator(kind: str) -> Accelerator:
    """The two Table 4 systems: 8-bit, K=16, 4 PEs, 1 MB GB."""
    # Weight storage need: 512 KiB of 8-bit LSTM weights across 4 PEs.
    per_pe_kib = PAPER_WORKLOAD.weight_count // 4 // 1024  # 128 KiB used
    return Accelerator(AcceleratorConfig(
        pe_kind=kind, bits=8, vector_size=16,
        weight_buffer_kib=max(512, per_pe_kib)))
