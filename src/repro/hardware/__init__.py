"""Hardware co-design: PE PPA models, bit-accurate datapaths, accelerator.

* :mod:`repro.hardware.pe` — analytical energy/area of the NVDLA-like
  INT PE and the proposed HFINT PE (paper Fig. 5/7).
* :mod:`repro.hardware.datapath` — bit-accurate functional simulation of
  both MAC pipelines at the paper's register widths.
* :mod:`repro.hardware.accelerator` — the 4-PE + global-buffer system of
  paper Fig. 6 / Table 4.
"""

from .accelerator import Accelerator, AcceleratorConfig, paper_accelerator
from .constants import AREA_16NM, CLOCK_HZ, ENERGY_16NM, SRAM_16NM
from .datapath import HFIntVectorMac, IntVectorMac, RequantParams
from .pe import HFIntPE, IntPE, PEConfig, make_pe
from .profiler import (InferenceCost, MacCounter, count_macs,
                       estimate_inference_cost)
from .lstm_program import LSTMCellProgram, compile_lstm_cell
from .program import HardwareProgram, LayerProgram, compile_linear_stack
from .simulator import EventSimulator, SimulationTrace
from .workload import LSTMWorkload, PAPER_WORKLOAD

__all__ = [
    "AREA_16NM", "Accelerator", "AcceleratorConfig", "CLOCK_HZ",
    "ENERGY_16NM", "EventSimulator", "HFIntPE", "HFIntVectorMac",
    "HardwareProgram", "InferenceCost", "IntPE", "IntVectorMac",
    "LSTMCellProgram", "LSTMWorkload", "LayerProgram", "MacCounter",
    "PAPER_WORKLOAD", "PEConfig", "RequantParams", "SRAM_16NM",
    "SimulationTrace", "compile_linear_stack", "compile_lstm_cell",
    "count_macs", "estimate_inference_cost", "make_pe",
    "paper_accelerator",
]
