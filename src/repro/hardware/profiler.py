"""MAC counting and model-on-accelerator cost estimation.

``count_macs()`` is a context manager: any matmul or convolution
executed inside it (by the autodiff tensor ops) is tallied, so the MAC
count of one model inference is measured, not hand-derived.
``estimate_inference_cost`` then maps that count onto a PE
configuration: cycles at the array's MAC throughput, energy at the
calibrated per-op cost — answering the co-design question "what does
running this network cost on the INT vs the HFINT accelerator?".
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
from typing import Dict, Iterator, Tuple

from .constants import CLOCK_HZ
from .pe import make_pe

__all__ = ["MacCounter", "count_macs", "record_matmul", "record_conv2d",
           "estimate_inference_cost", "InferenceCost"]


class MacCounter:
    """Accumulates multiply-accumulate counts by operation kind."""

    def __init__(self) -> None:
        self.matmul_macs = 0
        self.conv_macs = 0

    @property
    def total(self) -> int:
        return self.matmul_macs + self.conv_macs

    def as_dict(self) -> Dict[str, int]:
        return {"matmul": self.matmul_macs, "conv": self.conv_macs,
                "total": self.total}


_ACTIVE: list = []


@contextlib.contextmanager
def count_macs() -> Iterator[MacCounter]:
    """Record every matmul/conv MAC executed in the block."""
    counter = MacCounter()
    _ACTIVE.append(counter)
    try:
        yield counter
    finally:
        _ACTIVE.pop()


def record_matmul(shape_a: Tuple[int, ...], shape_b: Tuple[int, ...]) -> None:
    """Called by ``Tensor.__matmul__``; no-op when no counter is active."""
    if not _ACTIVE:
        return
    if len(shape_a) == 1:  # 1-D dot
        macs = shape_a[0]
    else:
        m, k = shape_a[-2], shape_a[-1]
        n = shape_b[-1]
        batch = 1
        for dim in shape_a[:-2]:
            batch *= dim
        for extra in shape_b[:-2][len(shape_a[:-2]):]:
            batch *= extra
        macs = batch * m * k * n
    for counter in _ACTIVE:
        counter.matmul_macs += macs


def record_conv2d(batch: int, out_ch: int, in_ch: int, kh: int, kw: int,
                  oh: int, ow: int) -> None:
    """Called by ``functional.conv2d``."""
    if not _ACTIVE:
        return
    macs = batch * out_ch * in_ch * kh * kw * oh * ow
    for counter in _ACTIVE:
        counter.conv_macs += macs


@dataclasses.dataclass(frozen=True)
class InferenceCost:
    """Cost of one inference on a PE array."""

    pe_name: str
    macs: int
    cycles: int
    latency_us: float
    energy_uj: float

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def estimate_inference_cost(macs: int, kind: str = "hfint", bits: int = 8,
                            vector_size: int = 16, num_pes: int = 4,
                            utilization: float = 0.85) -> InferenceCost:
    """Map a measured MAC count onto an accelerator configuration.

    ``utilization`` discounts the ideal array throughput for tiling edge
    effects and pipeline ramp (the Table 4 schedule shows ~0.63 on the
    paper's LSTM; GEMM-heavy inference sustains more).
    """
    if macs < 0:
        raise ValueError("negative MAC count")
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    pe = make_pe(kind, bits, vector_size)
    throughput = num_pes * vector_size * vector_size * utilization
    cycles = math.ceil(macs / throughput) if macs else 0
    latency_us = cycles / CLOCK_HZ * 1e6
    energy_uj = 2 * macs * pe.energy_per_op() * 1e-9
    return InferenceCost(pe_name=pe.name, macs=macs, cycles=cycles,
                         latency_us=latency_us, energy_uj=energy_uj)
