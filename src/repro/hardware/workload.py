"""Workload descriptors for the accelerator model (paper Section 6.1).

The paper's evaluation workload is "100 LSTM time steps with 256 hidden
units operating in a weight stationary dataflow"; Table 4 reports the
resulting latency/power/area for the 4-PE systems.
"""

from __future__ import annotations

import dataclasses

__all__ = ["LSTMWorkload", "PAPER_WORKLOAD"]


@dataclasses.dataclass(frozen=True)
class LSTMWorkload:
    """A single-layer LSTM run: the accelerator's target kernel."""

    timesteps: int = 100
    hidden: int = 256
    input_dim: int = 256

    def __post_init__(self):
        if min(self.timesteps, self.hidden, self.input_dim) < 1:
            raise ValueError("workload dimensions must be positive")

    @property
    def gates(self) -> int:
        return 4

    @property
    def macs_per_step(self) -> int:
        """MACs for the 4 gate matrices of one time step."""
        return self.gates * self.hidden * (self.hidden + self.input_dim)

    @property
    def ops_per_step(self) -> int:
        return 2 * self.macs_per_step

    @property
    def gate_outputs_per_step(self) -> int:
        return self.gates * self.hidden

    @property
    def weight_count(self) -> int:
        """Stationary weights (gate matrices; biases folded)."""
        return self.gates * self.hidden * (self.hidden + self.input_dim)

    @property
    def total_macs(self) -> int:
        return self.timesteps * self.macs_per_step

    @property
    def total_ops(self) -> int:
        return self.timesteps * self.ops_per_step


#: The exact workload of paper Table 4.
PAPER_WORKLOAD = LSTMWorkload(timesteps=100, hidden=256, input_dim=256)
