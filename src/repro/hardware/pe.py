"""Analytical PPA models of the two PE micro-architectures (paper Fig. 5).

* :class:`IntPE` — NVDLA-like monolithic integer PE: ``n``-bit integer
  vector MACs, ``2n + log2(H)``-bit accumulation, an S-bit scaling
  multiplier for dequantization (widening to ``2n + log2(H) + S``),
  shift/clip/truncate back to ``n`` bits (paper Section 5.1).
* :class:`HFIntPE` — the proposed hybrid float-integer PE: AdaptivFloat
  ``<n, e>`` operands, small mantissa multipliers + exponent adders,
  fixed-point accumulation at ``2(2^e - 1) + 2m + log2(H)`` bits, an
  ``exp_bias``-driven shift instead of the scaling multiplier, and an
  integer-to-AdaptivFloat converter at the output (Section 5.2).

A PE has K lanes, each a K-wide vector MAC: K² MACs (2K² ops) per cycle,
so a single PE sustains ``2 K² 1e9`` op/s at 1 GHz (Section 6.2).

Energy per op decomposes as ``E_mac/2 + E_lane/(2K) + E_fixed/(2K²)``
— per-MAC work, per-lane overhead (accumulator register + adder +
operand delivery + amortized post-processing), and per-PE overhead
(control).  Area mirrors this with the post-processing unit shared
across lanes (one result emerges per lane only every H cycles).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from . import components as comp
from .constants import CLOCK_HZ

__all__ = ["PEConfig", "IntPE", "HFIntPE", "make_pe"]


@dataclasses.dataclass(frozen=True)
class PEConfig:
    """Shared PE parameters.

    ``bits``: MAC operand width; ``vector_size``: K (lanes == vector
    width); ``accum_length``: H, values accumulated without overflow;
    ``exp_bits``: AdaptivFloat exponent field (HFINT only; the paper
    always uses 3); ``scale_bits``: S, the INT dequant scale width (the
    paper uses S = 2n: INT4/16/24 and INT8/24/40).
    """

    bits: int = 8
    vector_size: int = 16
    accum_length: int = 256
    exp_bits: int = 3
    scale_bits: int = 0  # 0 -> default 2 * bits

    def __post_init__(self):
        if self.bits < 2:
            raise ValueError(f"bits must be >= 2, got {self.bits}")
        if self.vector_size < 1:
            raise ValueError(f"vector_size must be >= 1, got {self.vector_size}")
        if self.accum_length < 2 or self.accum_length & (self.accum_length - 1):
            raise ValueError("accum_length must be a power of two >= 2")

    @property
    def scale_width(self) -> int:
        return self.scale_bits or 2 * self.bits

    @property
    def log2_h(self) -> int:
        return int(math.log2(self.accum_length))


class _BasePE:
    """Common PPA arithmetic for both PE flavours."""

    kind = "base"

    def __init__(self, config: PEConfig) -> None:
        self.config = config

    # ------------------------------------------------------------ interface
    @property
    def name(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def accumulator_width(self) -> int:
        raise NotImplementedError

    def _mac_energy(self) -> float:
        raise NotImplementedError

    def _lane_energy(self) -> float:
        raise NotImplementedError

    def _postproc_energy(self) -> float:
        """Energy of producing one final output (per lane, per H cycles)."""
        raise NotImplementedError

    def _mac_area(self) -> float:
        raise NotImplementedError

    def _lane_area(self) -> float:
        raise NotImplementedError

    def _postproc_area(self) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------- metrics
    def ops_per_cycle(self) -> int:
        k = self.config.vector_size
        return 2 * k * k

    def throughput_ops(self) -> float:
        """Sustained op/s at the nominal clock."""
        return self.ops_per_cycle() * CLOCK_HZ

    def energy_per_cycle(self) -> float:
        """Dynamic fJ per fully-utilized cycle."""
        k = self.config.vector_size
        lane = self._lane_energy() + self._postproc_energy() / self.config.accum_length
        return k * k * self._mac_energy() + k * lane + comp.control_energy()

    def energy_per_op(self) -> float:
        """Dynamic fJ per operation (a MAC is 2 ops) — paper Fig. 7 top."""
        return self.energy_per_cycle() / self.ops_per_cycle()

    def area(self) -> float:
        """Datapath area in mm² (buffers excluded, as in Fig. 7 bottom)."""
        k = self.config.vector_size
        return (k * k * self._mac_area() + k * self._lane_area()
                + self._postproc_area() + comp.control_area())

    def perf_per_area(self) -> float:
        """TOPS per mm² — paper Fig. 7 bottom."""
        tops = self.throughput_ops() / 1e12
        return tops / self.area()

    def breakdown(self) -> Dict[str, float]:
        """Per-op energy decomposition (fJ) for reporting/ablations."""
        k = self.config.vector_size
        ops = self.ops_per_cycle()
        return {
            "mac": k * k * self._mac_energy() / ops,
            "lane": k * self._lane_energy() / ops,
            "postproc": k * self._postproc_energy()
            / self.config.accum_length / ops,
            "control": comp.control_energy() / ops,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name}, K={self.config.vector_size})"


class IntPE(_BasePE):
    """NVDLA-like monolithic integer PE (paper Fig. 5a)."""

    kind = "int"

    @property
    def name(self) -> str:
        cfg = self.config
        return (f"INT{cfg.bits}/{self.accumulator_width}/"
                f"{self.scaled_width}")

    @property
    def accumulator_width(self) -> int:
        cfg = self.config
        return 2 * cfg.bits + cfg.log2_h

    @property
    def scaled_width(self) -> int:
        return self.accumulator_width + self.config.scale_width

    # -------------------------------------------------------------- energy
    def _mac_energy(self) -> float:
        cfg = self.config
        tree_width = 2 * cfg.bits + int(math.log2(cfg.vector_size))
        return (comp.multiplier_energy(cfg.bits, cfg.bits)
                + comp.adder_energy(tree_width))

    def _lane_energy(self) -> float:
        cfg = self.config
        acc = self.accumulator_width
        return (comp.adder_energy(acc) + comp.register_energy(acc)
                + comp.sram_read_energy(cfg.bits))

    def _postproc_energy(self) -> float:
        acc = self.accumulator_width
        scaled = self.scaled_width
        return (comp.multiplier_energy(acc, self.config.scale_width)
                + comp.shifter_energy(scaled) + comp.register_energy(scaled))

    # ---------------------------------------------------------------- area
    def _mac_area(self) -> float:
        cfg = self.config
        tree_width = 2 * cfg.bits + int(math.log2(cfg.vector_size))
        return (comp.multiplier_area(cfg.bits, cfg.bits)
                + comp.adder_area(tree_width)
                + comp.register_area(cfg.bits))  # stationary weight register

    def _lane_area(self) -> float:
        acc = self.accumulator_width
        return (comp.adder_area(acc)
                + comp.register_area(acc + self.config.bits))

    def _postproc_area(self) -> float:
        acc = self.accumulator_width
        scaled = self.scaled_width
        return (comp.multiplier_area(acc, self.config.scale_width)
                + comp.shifter_area(scaled) + comp.register_area(scaled))


class HFIntPE(_BasePE):
    """Hybrid float-integer PE exploiting AdaptivFloat (paper Fig. 5b)."""

    kind = "hfint"

    @property
    def mant_bits(self) -> int:
        return self.config.bits - self.config.exp_bits - 1

    @property
    def name(self) -> str:
        return f"HFINT{self.config.bits}/{self.accumulator_width}"

    @property
    def accumulator_width(self) -> int:
        cfg = self.config
        return 2 * (2 ** cfg.exp_bits - 1) + 2 * self.mant_bits + cfg.log2_h

    # -------------------------------------------------------------- energy
    def _mac_energy(self) -> float:
        cfg = self.config
        acc = self.accumulator_width
        mant = self.mant_bits + 1  # implied leading one
        return (comp.multiplier_energy(mant, mant)
                + comp.adder_energy(cfg.exp_bits + 1)   # exponent adder
                + comp.shifter_energy(acc)              # product alignment
                + comp.adder_energy(acc))               # reduction tree

    def _lane_energy(self) -> float:
        cfg = self.config
        acc = self.accumulator_width
        return (comp.adder_energy(acc) + comp.register_energy(acc)
                + comp.sram_read_energy(cfg.bits))

    def _postproc_energy(self) -> float:
        acc = self.accumulator_width
        # exp_bias shift, integer-to-AdaptivFloat conversion, output reg.
        return (comp.shifter_energy(acc) + comp.adder_energy(self.config.bits)
                + comp.register_energy(acc))

    # ---------------------------------------------------------------- area
    def _mac_area(self) -> float:
        cfg = self.config
        acc = self.accumulator_width
        mant = self.mant_bits + 1
        return (comp.multiplier_area(mant, mant)
                + comp.adder_area(cfg.exp_bits + 1)
                + comp.shifter_area(acc)
                + comp.adder_area(acc)
                + comp.register_area(cfg.bits))  # stationary weight register

    def _lane_area(self) -> float:
        acc = self.accumulator_width
        return (comp.adder_area(acc)
                + comp.register_area(acc + self.config.bits))

    def _postproc_area(self) -> float:
        acc = self.accumulator_width
        return (comp.shifter_area(acc) + comp.adder_area(self.config.bits)
                + comp.register_area(acc))


def make_pe(kind: str, bits: int, vector_size: int,
            accum_length: int = 256, **kwargs) -> _BasePE:
    """Factory: ``kind`` in {"int", "hfint"}."""
    config = PEConfig(bits=bits, vector_size=vector_size,
                      accum_length=accum_length, **kwargs)
    if kind == "int":
        return IntPE(config)
    if kind == "hfint":
        return HFIntPE(config)
    raise ValueError(f"unknown PE kind {kind!r}")
