"""Calibrated 16 nm component coefficients for the PPA model.

The paper evaluates post-HLS netlists with a commercial 16 nm FinFET
library at 1 GHz (Section 6.1) — a flow we cannot run.  Instead,
:mod:`repro.hardware` uses a linear component model (multipliers,
adders, shifters, registers, SRAM delivery, control) whose coefficients
were fitted, with physically-motivated lower/upper bounds, to the
twelve per-op energy and twelve throughput/area points of the paper's
Figure 7 (see ``tools/calibrate_hw.py``, which regenerates this file's
values).  The fit reproduces every Fig. 7 point within ~12% (energy) /
~19% (area) and — more importantly — preserves the paper's qualitative
claims: HFINT per-op energy 0.97x -> 0.90x of INT from (4-bit, K=4) to
(8-bit, K=16), and INT throughput/area 1.04x - 1.21x above HFINT.

Units: energies in fJ (per operation at 1 GHz), areas in mm².
"""

from __future__ import annotations

import dataclasses

__all__ = ["EnergyCoefficients", "AreaCoefficients", "SramParameters",
           "ENERGY_16NM", "AREA_16NM", "SRAM_16NM", "CLOCK_HZ"]

#: Nominal clock of the evaluated designs (paper Section 6.1).
CLOCK_HZ = 1.0e9


@dataclasses.dataclass(frozen=True)
class EnergyCoefficients:
    """Dynamic-energy coefficients (fJ)."""

    mult_per_bit2: float      # array multiplier, per operand-bit^2
    add_per_bit: float        # ripple/prefix adder, per result bit
    shift_per_bit: float      # barrel shifter, per datapath bit
    reg_per_bit: float        # clocked register, per bit per cycle
    sram_read_per_bit: float  # effective operand delivery, per bit
    ctrl_per_cycle: float     # PE-level sequencing/clocking per cycle


@dataclasses.dataclass(frozen=True)
class AreaCoefficients:
    """Layout-area coefficients (mm²)."""

    mult_per_bit2: float
    add_per_bit: float
    shift_per_bit: float
    reg_per_bit: float
    ctrl_fixed: float         # PE-level control/decode block


@dataclasses.dataclass(frozen=True)
class SramParameters:
    """On-chip SRAM macros (16 nm-class literature values)."""

    area_per_kib: float = 1.45e-3     # mm² per KiB (~1.45 mm²/MiB)
    read_fj_per_bit: float = 25.0     # fJ per bit read at the macro
    write_fj_per_bit: float = 30.0    # fJ per bit written
    leakage_mw_per_mib: float = 1.2   # static power per MiB


#: Fitted against paper Fig. 7 energies (tools/calibrate_hw.py).
ENERGY_16NM = EnergyCoefficients(
    mult_per_bit2=0.4355,
    add_per_bit=0.08,
    shift_per_bit=0.04,
    reg_per_bit=0.25,
    sram_read_per_bit=160.66,
    ctrl_per_cycle=1368.02,
)

#: Fitted against paper Fig. 7 throughput/area (tools/calibrate_hw.py).
AREA_16NM = AreaCoefficients(
    mult_per_bit2=1.0e-7,
    add_per_bit=1.0e-6,
    shift_per_bit=3.578e-6,
    reg_per_bit=8.302e-5,
    ctrl_fixed=9.557e-3,
)

SRAM_16NM = SramParameters()
