"""Compile quantized feed-forward networks into HFINT PE programs.

This module closes the co-design loop end to end: a trained
:class:`~repro.nn.models.mlp.MLP` (or any stack of Linear layers) is
compiled into a :class:`HardwareProgram` — per-layer packed AdaptivFloat
weight bitstreams, the 4-bit ``exp_bias`` register values, the
post-accumulation shift amounts and the activation selects — and then
*executed* on the bit-accurate :class:`~repro.hardware.datapath.HFIntVectorMac`,
i.e. the arithmetic the PE would really perform, bias add included (the
bias rides the wide accumulator in integer form, like the PE's bias
buffer).

``HardwareProgram.run`` therefore gives true quantized-hardware
inference; tests check it against the software fake-quantized model.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..formats import AdaptivFloat
from ..formats.bitpack import pack_words, packed_nbytes, unpack_words
from .datapath import HFIntVectorMac

__all__ = ["HardwareProgram", "LayerProgram", "compile_linear_stack"]

_ACTIVATIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "identity": lambda x: x,
    "relu": lambda x: np.maximum(x, 0.0),
    "tanh": np.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
}


@dataclasses.dataclass
class LayerProgram:
    """One Linear layer lowered to PE state."""

    out_features: int
    in_features: int
    weight_stream: bytes          # packed AdaptivFloat words
    weight_bias: int              # exp_bias register for the weights
    act_bias_in: int              # exp_bias register for input activations
    act_bias_out: int             # exp_bias register for the outputs
    shift: int                    # post-accumulation shift amount
    bias_ints: np.ndarray         # bias in accumulator units (pre-shift)
    activation: str

    def weight_words(self, bits: int) -> np.ndarray:
        count = self.out_features * self.in_features
        return unpack_words(self.weight_stream, bits, count).reshape(
            self.out_features, self.in_features)


@dataclasses.dataclass
class HardwareProgram:
    """A compiled network plus the datapath configuration to run it."""

    bits: int
    exp_bits: int
    accum_length: int
    input_bias: int
    layers: List[LayerProgram]

    # ------------------------------------------------------------ running
    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute one input vector (or a batch) on the bit-accurate PE
        pipeline.  Returns the dequantized output activations."""
        mac = HFIntVectorMac(self.bits, self.exp_bits, self.accum_length)
        fmt = AdaptivFloat(self.bits, self.exp_bits)
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        batch = x[None, :] if single else x
        outputs = []
        for row in batch:
            act = fmt.quantize_with_params(row, {"exp_bias": self.input_bias})
            act_words = fmt.encode(act, self.input_bias)
            act_bias = self.input_bias
            values: Optional[np.ndarray] = None
            for layer in self.layers:
                w_words = layer.weight_words(self.bits)
                acc = self._accumulate_tiled(mac, w_words, act_words)
                acc = acc + layer.bias_ints  # bias joins the wide accumulator
                half = 1 << (layer.shift - 1) if layer.shift > 0 else 0
                ints = np.clip((acc + half) >> layer.shift,
                               -(1 << (self.bits - 1)),
                               (1 << (self.bits - 1)) - 1)
                step = 2.0 ** (layer.weight_bias + act_bias
                               - 2 * mac.mant_bits + layer.shift)
                pre = ints.astype(np.float64) * step
                values = _ACTIVATIONS[layer.activation](pre)
                quant = fmt.quantize_with_params(
                    values, {"exp_bias": layer.act_bias_out})
                act_words = fmt.encode(quant, layer.act_bias_out)
                act_bias = layer.act_bias_out
                values = quant
            outputs.append(values)
        out = np.stack(outputs)
        return out[0] if single else out

    def _accumulate_tiled(self, mac: HFIntVectorMac, w_words: np.ndarray,
                          a_words: np.ndarray) -> np.ndarray:
        length = w_words.shape[1]
        if length <= self.accum_length:
            return mac.accumulate(w_words, a_words)
        total = np.zeros(w_words.shape[0], dtype=np.int64)
        for start in range(0, length, self.accum_length):
            stop = min(start + self.accum_length, length)
            total += mac.accumulate(w_words[:, start:stop],
                                    a_words[start:stop])
        return total

    # ------------------------------------------------------ serialization
    def to_manifest(self) -> Tuple[Dict, bytes]:
        """(JSON-able manifest, concatenated weight blob)."""
        blob = bytearray()
        layers = []
        for layer in self.layers:
            layers.append({
                "out": layer.out_features, "in": layer.in_features,
                "offset": len(blob),
                "weight_bias": layer.weight_bias,
                "act_bias_in": layer.act_bias_in,
                "act_bias_out": layer.act_bias_out,
                "shift": layer.shift,
                "bias_ints": layer.bias_ints.tolist(),
                "activation": layer.activation,
            })
            blob.extend(layer.weight_stream)
        manifest = {"bits": self.bits, "exp_bits": self.exp_bits,
                    "accum_length": self.accum_length,
                    "input_bias": self.input_bias, "layers": layers}
        return manifest, bytes(blob)

    @classmethod
    def from_manifest(cls, manifest: Dict, blob: bytes) -> "HardwareProgram":
        bits = int(manifest["bits"])
        layers = []
        for meta in manifest["layers"]:
            count = meta["out"] * meta["in"]
            nbytes = packed_nbytes(count, bits)
            stream = blob[meta["offset"]:meta["offset"] + nbytes]
            layers.append(LayerProgram(
                out_features=meta["out"], in_features=meta["in"],
                weight_stream=stream, weight_bias=meta["weight_bias"],
                act_bias_in=meta["act_bias_in"],
                act_bias_out=meta["act_bias_out"], shift=meta["shift"],
                bias_ints=np.asarray(meta["bias_ints"], dtype=np.int64),
                activation=meta["activation"]))
        return cls(bits=bits, exp_bits=int(manifest["exp_bits"]),
                   accum_length=int(manifest["accum_length"]),
                   input_bias=int(manifest["input_bias"]), layers=layers)


def compile_linear_stack(weights: Sequence[np.ndarray],
                         biases: Sequence[Optional[np.ndarray]],
                         activations: Sequence[str],
                         calibration_inputs: np.ndarray,
                         bits: int = 8, exp_bits: int = 3,
                         accum_length: int = 256) -> HardwareProgram:
    """Lower a stack of Linear layers to a :class:`HardwareProgram`.

    ``weights[i]`` is (out, in); ``biases[i]`` is (out,) or None;
    ``activations[i]`` names the pointwise function after layer ``i``.
    ``calibration_inputs`` (batch, in) drive the offline activation-range
    calibration that programs the exp_bias registers and shift amounts
    (paper Section 5.2).
    """
    if not (len(weights) == len(biases) == len(activations)):
        raise ValueError("weights/biases/activations length mismatch")
    for name in activations:
        if name not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {name!r}; "
                             f"known: {sorted(_ACTIVATIONS)}")
    fmt = AdaptivFloat(bits, exp_bits)
    mant_bits = bits - exp_bits - 1
    x = np.asarray(calibration_inputs, dtype=np.float64)
    input_bias = int(fmt.fit(x)["exp_bias"])

    layers: List[LayerProgram] = []
    act = fmt.quantize_with_params(x, {"exp_bias": input_bias})
    act_bias = input_bias
    for w, b, act_name in zip(weights, biases, activations):
        w = np.asarray(w, dtype=np.float64)
        weight_bias = int(fmt.fit(w)["exp_bias"])
        w_q = fmt.quantize_with_params(w, {"exp_bias": weight_bias})
        pre = act @ w_q.T
        if b is not None:
            pre = pre + np.asarray(b, dtype=np.float64)
        post = _ACTIVATIONS[act_name](pre)
        out_bias = int(fmt.fit(post)["exp_bias"])
        # shift: align the accumulator to an n-bit integer covering the
        # calibrated pre-activation range.
        unit = 2.0 ** (weight_bias + act_bias - 2 * mant_bits)
        acc_units = np.abs(pre).max() / unit if np.abs(pre).max() > 0 else 0.0
        level_max = 2 ** (bits - 1) - 1
        shift = max(0, math.ceil(math.log2(acc_units / level_max))
                    if acc_units > level_max else 0)
        bias_ints = np.zeros(w.shape[0], dtype=np.int64) if b is None else \
            np.rint(np.asarray(b, dtype=np.float64) / unit).astype(np.int64)
        words = fmt.encode(w_q, weight_bias).ravel()
        layers.append(LayerProgram(
            out_features=w.shape[0], in_features=w.shape[1],
            weight_stream=pack_words(words, bits),
            weight_bias=weight_bias, act_bias_in=act_bias,
            act_bias_out=out_bias, shift=shift,
            bias_ints=bias_ints, activation=act_name))
        act = fmt.quantize_with_params(post, {"exp_bias": out_bias})
        act_bias = out_bias
    return HardwareProgram(bits=bits, exp_bits=exp_bits,
                           accum_length=accum_length,
                           input_bias=input_bias, layers=layers)
