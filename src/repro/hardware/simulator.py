"""Cycle-level discrete-event simulation of the 4-PE accelerator.

The analytical model in :mod:`repro.hardware.accelerator` *counts*
cycles; this simulator *executes* them.  It models the paper's Fig. 6
system — PEs with weight-stationary MAC arrays and activation units, an
arbitrated crossbar collecting hidden-state words into the global
buffer, and a broadcast bus returning them — as interacting state
machines.  Because every phase drains fixed work at a fixed rate, the
per-cycle machines reduce exactly to ``ceil(work / rate)`` arithmetic:
:meth:`EventSimulator.run` executes that closed form, and
:meth:`EventSimulator.run_reference` keeps the cycle-by-cycle loops as
the semantic spec.  Tests assert the two traces are identical and
cross-validate both against the analytical schedule in
:mod:`repro.hardware.accelerator` (and therefore Table 4's 81.2 µs).

The simulator is behavioural (it moves *counts* of work, not numerical
values — numerical fidelity is the job of :mod:`repro.hardware.datapath`),
but the phase structure, arbitration serialization and bus widths are
explicit, so schedule variants (more PEs, wider crossbars, overlapped
phases) can be explored.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from .accelerator import AcceleratorConfig
from .constants import CLOCK_HZ
from .workload import LSTMWorkload, PAPER_WORKLOAD

__all__ = ["EventSimulator", "SimulationTrace", "PhaseRecord"]


@dataclasses.dataclass
class PhaseRecord:
    """One phase of one time step, as executed."""

    step: int
    phase: str
    start_cycle: int
    end_cycle: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


@dataclasses.dataclass
class SimulationTrace:
    """Full execution record."""

    phases: List[PhaseRecord]
    total_cycles: int
    busy_mac_cycles: int

    @property
    def runtime_us(self) -> float:
        return self.total_cycles / CLOCK_HZ * 1e6

    def cycles_by_phase(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.phases:
            out[record.phase] = out.get(record.phase, 0) + record.cycles
        return out

    def mac_utilization(self) -> float:
        return self.busy_mac_cycles / self.total_cycles if self.total_cycles else 0.0


class _PE:
    """A weight-stationary PE: consumes MAC work, then pointwise work."""

    def __init__(self, vector_size: int, mac_share: int, act_share: int,
                 act_rate: int) -> None:
        self.macs_per_cycle = vector_size * vector_size
        self.mac_share = mac_share        # MACs this PE owns per step
        self.act_share = act_share        # gate outputs this PE owns
        self.act_rate = act_rate          # pointwise ops per cycle
        self.reset()

    def reset(self) -> None:
        self.mac_remaining = self.mac_share
        self.act_remaining = self.act_share
        self.outputs_ready = 0

    def tick_compute(self) -> bool:
        """One compute cycle; True while busy."""
        if self.mac_remaining <= 0:
            return False
        self.mac_remaining -= min(self.macs_per_cycle, self.mac_remaining)
        return True

    def tick_activation(self) -> bool:
        if self.act_remaining <= 0:
            return False
        done = min(self.act_rate, self.act_remaining)
        self.act_remaining -= done
        self.outputs_ready += done
        return True


#: Phase execution order within one LSTM time step.
_PHASE_ORDER = ("compute", "activation", "collect", "broadcast", "pipeline")


class EventSimulator:
    """Executes the weight-stationary LSTM schedule.

    Every phase advances deterministically (fixed work, fixed per-cycle
    rates, no data-dependent stalls), so the per-cycle state machines
    admit an exact closed form: a phase that consumes ``work`` units at
    ``rate`` units/cycle runs ``ceil(work / rate)`` cycles.  :meth:`run`
    uses that arithmetic directly — O(timesteps) instead of
    O(total cycles) — while :meth:`run_reference` keeps the original
    cycle-by-cycle loops.  The two produce *identical* traces (every
    ``PhaseRecord``, the busy-MAC count, the total), which the test
    suite asserts; the reference is the semantic spec, the closed form
    is what everything else calls.
    """

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        self.config = config or AcceleratorConfig()

    # ------------------------------------------------------------ building
    def _build_pes(self, workload: LSTMWorkload) -> List[_PE]:
        cfg = self.config
        macs_each = math.ceil(workload.macs_per_step / cfg.num_pes)
        gates_each = math.ceil(workload.gate_outputs_per_step / cfg.num_pes)
        return [_PE(cfg.vector_size, macs_each, gates_each,
                    cfg.crossbar_lanes) for _ in range(cfg.num_pes)]

    # --------------------------------------------------------- closed form
    def _phase_cycles(self, workload: LSTMWorkload) -> Dict[str, int]:
        """Exact per-step phase durations, in cycles.

        * ``compute`` — every PE owns ``ceil(macs_per_step / num_pes)``
          MACs and retires ``vector_size**2`` per cycle; the phase ends
          when the slowest (= every, shares are identical) PE drains.
        * ``activation`` — pointwise gate math at ``crossbar_lanes``
          ops/cycle per PE over each PE's gate share.
        * ``collect``/``broadcast`` — the arbitrated crossbar and the
          shared bus both move ``crossbar_lanes`` words/cycle, over the
          ``hidden`` state words.
        * ``pipeline`` — the calibrated HLS ramp constant.
        """
        cfg = self.config
        macs_each = math.ceil(workload.macs_per_step / cfg.num_pes)
        gates_each = math.ceil(workload.gate_outputs_per_step / cfg.num_pes)
        transfer = math.ceil(workload.hidden / cfg.crossbar_lanes)
        return {
            "compute": math.ceil(macs_each / cfg.vector_size ** 2),
            "activation": math.ceil(gates_each / cfg.crossbar_lanes),
            "collect": transfer,
            "broadcast": transfer,
            "pipeline": cfg.pipeline_ramp_cycles,
        }

    def run(self, workload: LSTMWorkload = PAPER_WORKLOAD) -> SimulationTrace:
        """Closed-form execution: identical trace, O(timesteps) work."""
        durations = self._phase_cycles(workload)
        # each of the num_pes PEs is busy for every compute cycle (equal
        # shares), exactly what the reference counts per cycle
        busy_per_step = self.config.num_pes * durations["compute"]
        phases: List[PhaseRecord] = []
        cycle = 0
        for step in range(workload.timesteps):
            for phase in _PHASE_ORDER:
                end = cycle + durations[phase]
                phases.append(PhaseRecord(step, phase, cycle, end))
                cycle = end
        return SimulationTrace(phases=phases, total_cycles=cycle,
                               busy_mac_cycles=busy_per_step
                               * workload.timesteps)

    # ---------------------------------------------------- cycle-loop spec
    def run_reference(self,
                      workload: LSTMWorkload = PAPER_WORKLOAD
                      ) -> SimulationTrace:
        """The original cycle-by-cycle state machines (semantic spec)."""
        cfg = self.config
        pes = self._build_pes(workload)
        phases: List[PhaseRecord] = []
        cycle = 0
        busy_macs = 0

        for step in range(workload.timesteps):
            # ---- phase 1: gate GEMMs on all PEs in parallel
            start = cycle
            for pe in pes:
                pe.reset()
            while any(pe.mac_remaining > 0 for pe in pes):
                active = sum(pe.tick_compute() for pe in pes)
                busy_macs += active
                cycle += 1
            phases.append(PhaseRecord(step, "compute", start, cycle))

            # ---- phase 2: LSTM pointwise math in the activation units
            start = cycle
            while any(pe.act_remaining > 0 for pe in pes):
                for pe in pes:
                    pe.tick_activation()
                cycle += 1
            phases.append(PhaseRecord(step, "activation", start, cycle))

            # ---- phase 3: crossbar collection of h into the GB.
            # The arbitrated crossbar moves `crossbar_lanes` words per
            # cycle in total (arbitration serializes the PEs).
            start = cycle
            words = workload.hidden
            while words > 0:
                words -= min(cfg.crossbar_lanes, words)
                cycle += 1
            phases.append(PhaseRecord(step, "collect", start, cycle))

            # ---- phase 4: broadcast back to every PE (shared bus).
            start = cycle
            words = workload.hidden
            while words > 0:
                words -= min(cfg.crossbar_lanes, words)
                cycle += 1
            phases.append(PhaseRecord(step, "broadcast", start, cycle))

            # ---- phase 5: HLS pipeline ramp (lumped, calibrated).
            start = cycle
            cycle += cfg.pipeline_ramp_cycles
            phases.append(PhaseRecord(step, "pipeline", start, cycle))

        return SimulationTrace(phases=phases, total_cycles=cycle,
                               busy_mac_cycles=busy_macs)
