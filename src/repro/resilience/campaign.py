"""Fault-injection campaigns: per-(model, format, field) resilience cells.

A campaign fans a grid of injection cells over the parallel cell runner
(:mod:`repro.experiments.runner`), one cell per (model, format, bits,
field | BER, seed) combination.  Each cell:

1. loads the cached FP32 checkpoint and post-training-quantizes every
   target weight tensor (float64 grid values + fitted adaptive params,
   so the bit codec round-trips exactly);
2. records the clean quantized probe logits and task score;
3. runs ``trials`` seeded injection events — each picks a weight tensor
   (probability proportional to its stored bit count, i.e. flips land
   uniformly over the weight memory), flips bits via
   :mod:`repro.resilience.inject`, decodes, and swaps the faulty tensor
   in through ``load_state_dict``;
4. scores each trial: **detection** (a :func:`repro.nn.scan_parameters`
   sweep plus a :class:`repro.nn.Sanitizer`-instrumented probe forward),
   **corruption** (any probe argmax changed, or non-finite logits),
   **SDC** = corrupted and *not* detected (the silent data corruptions
   of the fault-tolerance literature), logit RMS drift, and the task
   metric.

Every metric in the cell payload is a finite float, an int, or ``None``
— never NaN/Inf — so results are strict-JSON cacheable and the committed
``BENCH_resilience.json`` is byte-stable across warm re-runs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..analysis import format_table, save_result
from ..cache import content_key
from ..formats import FORMAT_NAMES, make_quantizer
from ..formats.base import AdaptiveQuantizer
from ..nn.quantize import DEFAULT_QUANTIZED_LAYERS, _target_modules
from ..experiments.common import MODEL_NAMES, PROFILES, get_bundle, trained_model
from ..experiments.runner import run_cells
from .inject import FIELDS, REGISTER_FIELD, inject_tensor, register_spec

__all__ = ["DEFAULT_FIELDS", "run", "run_cell", "render", "cell_fields"]

#: Fields a full campaign sweeps (word-level classes + the register).
DEFAULT_FIELDS = ("any", "sign", "exponent", "mantissa", REGISTER_FIELD)

#: Bump when the cell computation changes, to invalidate cached cells.
_CACHE_SALT = "resilience-v1"

#: How many eval-set samples the logit probe uses (kept small: the probe
#: runs once per trial on top of the task-metric evaluation).
_PROBE_SIZE = 16


def cell_fields(format_name: str, bits: int) -> Tuple[str, ...]:
    """The injectable fields for one format (skips undefined cells).

    Uniform/BFP words carry no exponent bits, and float/posit carry no
    adaptive register, so those (format, field) cells do not exist.
    """
    quantizer = make_quantizer(format_name, bits)
    classes = set(quantizer.bit_fields())
    fields: List[str] = []
    for field in DEFAULT_FIELDS:
        if field == "any":
            fields.append(field)
        elif field == REGISTER_FIELD:
            if register_spec(format_name) is not None:
                fields.append(field)
        elif field in classes:
            fields.append(field)
    return tuple(fields)


# ------------------------------------------------------------- cell plumbing
def _quantize_targets(model: nn.Module, format_name: str,
                      bits: int) -> Dict[str, Tuple[np.ndarray, Dict]]:
    """PTQ every target weight: name -> (float64 grid values, params).

    Mirrors :func:`repro.nn.quantize_weights_inplace`'s target selection
    but keeps the float64 grid values (the in-place variant casts to
    float32, off the exact grid the bit codec validates against).
    """
    quantized: Dict[str, Tuple[np.ndarray, Dict]] = {}
    for mname, module in _target_modules(model, DEFAULT_QUANTIZED_LAYERS):
        for pname, param in module._parameters.items():
            if pname.startswith("bias") or pname == "bias":
                continue
            quantizer = make_quantizer(format_name, bits)
            data = np.asarray(param.data, dtype=np.float64)
            if isinstance(quantizer, AdaptiveQuantizer):
                params = quantizer.fit(data)
                values = quantizer.quantize_with_params(data, params)
            else:
                params = {}
                values = quantizer.quantize(data)
            quantized[f"{mname}.{pname}"] = (values, params)
    if not quantized:
        raise ValueError("no quantizable weights found in model")
    return quantized


def _probe_logits(model_name: str, model: nn.Module, batch: Any) -> np.ndarray:
    """Raw output logits on the fixed probe batch (no sampling/decoding)."""
    model.eval()
    if model_name == "transformer":
        out = model(batch.src, batch.tgt_in)
    elif model_name == "seq2seq":
        out = model(batch.frames, batch.tgt_in)
    else:
        out = model(batch.images)
    return np.asarray(out.data, dtype=np.float64)


def _finite(value: float) -> Optional[float]:
    """JSON-safe scalar: finite floats pass, NaN/Inf become ``None``."""
    value = float(value)
    return value if np.isfinite(value) else None


def run_cell(cell: Dict) -> Dict:
    """Compute one (model, format, bits, field/BER) injection cell.

    Deterministic function of the descriptor: every injection event uses
    ``default_rng([seed, cell-hash, trial])``, the probe batch and eval
    set are seeded, and the FP32 checkpoint comes from the on-disk cache
    (warmed by :func:`run` before dispatch).
    """
    prof = PROFILES[cell["profile"]]
    bundle = get_bundle(cell["model"])
    base_model, task, fp32_score = trained_model(cell["model"], cell["profile"])
    base_state = base_model.state_dict()

    quantized = _quantize_targets(base_model, cell["format"],
                                  int(cell["bits"]))
    clean_state = dict(base_state)
    for name, (values, _params) in quantized.items():
        clean_state[name] = np.asarray(values, dtype=np.float32)
    bounds = {name: float(np.abs(values).max()) if values.size else 0.0
              for name, (values, _params) in quantized.items()}

    model, _ = bundle.build()
    model.load_state_dict(clean_state)
    probe_batch = task.eval_set(_PROBE_SIZE)
    clean_logits = _probe_logits(cell["model"], model, probe_batch)
    clean_argmax = np.argmax(clean_logits, axis=-1)
    clean_score = bundle.evaluate(model, task, prof.eval_size)

    names = list(quantized)
    # Flips land uniformly over the stored weight memory: weight each
    # tensor by its element count (all words in a cell are `bits` wide).
    sizes = np.array([quantized[n][0].size for n in names], dtype=np.float64)
    word_weights = sizes / sizes.sum()
    register_weights = np.full(len(names), 1.0 / len(names))

    quantizer = make_quantizer(cell["format"], int(cell["bits"]))
    cell_hash = int(content_key({k: cell[k] for k in sorted(cell)})[:12], 16)
    field = cell["field"]
    ber = cell.get("ber")

    trials = int(cell["trials"])
    detected = corrupted = sdc = nonfinite = 0
    detected_kinds: Dict[str, int] = {}
    drifts: List[float] = []
    scores: List[float] = []
    score_failures = 0
    flips_total = 0
    for trial in range(trials):
        rng = np.random.default_rng([int(cell["seed"]), cell_hash, trial])
        weights = (register_weights if field == REGISTER_FIELD
                   else word_weights)
        target = names[int(rng.choice(len(names), p=weights))]
        values, params = quantized[target]
        result = inject_tensor(quantizer, values, params, rng, field=field,
                               n_flips=int(cell.get("n_flips", 1)), ber=ber)
        flips_total += result.n_flips
        faulty_state = dict(clean_state)
        # An injected fault is *supposed* to be able to overflow float32
        # and poison the forward pass — suppress numpy's FP warnings here
        # and let the sanitizer report the damage semantically instead.
        with np.errstate(all="ignore"):
            faulty_state[target] = np.asarray(result.values,
                                              dtype=np.float32)
            model.load_state_dict(faulty_state)
            findings = nn.scan_parameters(model, bounds=bounds,
                                          range_slack=2.0)
            with nn.Sanitizer(model) as report:
                logits = _probe_logits(cell["model"], model, probe_batch)
        findings = findings + list(report.findings)
        trial_detected = bool(findings)
        for finding in findings:
            detected_kinds[finding.kind] = detected_kinds.get(finding.kind,
                                                              0) + 1

        logits_finite = bool(np.isfinite(logits).all())
        mismatch = float(np.mean(np.argmax(logits, axis=-1) != clean_argmax))
        trial_corrupted = (not logits_finite) or mismatch > 0.0
        if logits_finite:
            drift = float(np.sqrt(np.mean((logits - clean_logits) ** 2)))
            drifts.append(drift)
        else:
            nonfinite += 1
        with np.errstate(all="ignore"):
            score = float(bundle.evaluate(model, task, prof.eval_size))
        if np.isfinite(score):
            scores.append(score)
        else:
            score_failures += 1

        detected += trial_detected
        corrupted += trial_corrupted
        sdc += trial_corrupted and not trial_detected

    higher = bundle.higher_is_better
    mean_score = float(np.mean(scores)) if scores else None
    if mean_score is None:
        degradation = None
    else:
        degradation = (clean_score - mean_score if higher
                       else mean_score - clean_score)
    return {
        "fp32_score": _finite(fp32_score),
        "clean_score": _finite(clean_score),
        "trials": trials,
        "flips_total": flips_total,
        "sdc_rate": sdc / trials,
        "detection_rate": detected / trials,
        "corrupt_rate": corrupted / trials,
        "nonfinite_logit_rate": nonfinite / trials,
        "mean_logit_rms_drift": _finite(np.mean(drifts)) if drifts else None,
        "max_logit_rms_drift": _finite(np.max(drifts)) if drifts else None,
        "mean_score": _finite(mean_score) if mean_score is not None else None,
        "worst_score": _finite(min(scores) if higher else max(scores))
        if scores else None,
        "score_failures": score_failures,
        "mean_degradation": _finite(degradation)
        if degradation is not None else None,
        "detected_kinds": detected_kinds,
    }


# ------------------------------------------------------------------ campaign
def run(profile: str = "fast", models: Sequence[str] = ("transformer",),
        formats: Sequence[str] = FORMAT_NAMES, bits: int = 8,
        fields: Sequence[str] = DEFAULT_FIELDS,
        ber: Sequence[float] = (), n_flips: int = 1, trials: int = 8,
        seed: int = 0, jobs: int = 1) -> Dict:
    """Run a full injection campaign; returns (and persists) the grid.

    ``fields`` cells that do not exist for a format (no exponent bits,
    no adaptive register) are recorded as ``None`` in the grid rather
    than silently dropped, so reports show the structural gap.  Each
    ``ber`` value adds one whole-word multi-flip cell per (model,
    format) on top of the single-flip field cells.
    """
    PROFILES[profile]  # validate before any work
    for name in models:
        if name not in MODEL_NAMES:
            raise ValueError(f"unknown model {name!r}; known: {MODEL_NAMES}")
    for field in fields:
        if field not in FIELDS + (REGISTER_FIELD,):
            raise ValueError(f"unknown field {field!r}; known: "
                             f"{FIELDS + (REGISTER_FIELD,)}")
    # Warm the FP32 checkpoints serially so workers only ever load them.
    baselines = {name: trained_model(name, profile)[2] for name in models}

    def _cell(model: str, fmt: str, field: str,
              cell_ber: Optional[float]) -> Dict:
        return {"table": "resilience", "profile": profile, "model": model,
                "format": fmt, "bits": int(bits), "field": field,
                "ber": cell_ber, "n_flips": int(n_flips),
                "trials": int(trials), "seed": int(seed)}

    cells: List[Dict] = []
    slots: List[Tuple[str, str, str]] = []  # (model, format, field-or-ber key)
    for model in models:
        for fmt in formats:
            supported = cell_fields(fmt, bits)
            for field in fields:
                if field not in supported:
                    continue
                cells.append(_cell(model, fmt, field, None))
                slots.append((model, fmt, field))
            for rate in ber:
                cells.append(_cell(model, fmt, "any", float(rate)))
                slots.append((model, fmt, f"ber:{float(rate):g}"))

    results = run_cells(run_cell, cells, jobs=jobs,
                        cache_namespace=f"resilience_{profile}",
                        cache_salt=_CACHE_SALT)

    grid: Dict = {}
    for (model, fmt, key), payload in zip(slots, results):
        grid.setdefault(model, {}).setdefault(fmt, {})[key] = payload
    out: Dict = {"profile": profile, "bits": int(bits), "seed": int(seed),
                 "trials": int(trials), "n_flips": int(n_flips),
                 "fields": list(fields), "ber": [float(b) for b in ber],
                 "models": {}}
    for model in models:
        bundle = get_bundle(model)
        per_fmt: Dict = {}
        for fmt in formats:
            cells_by_key = grid.get(model, {}).get(fmt, {})
            per_fmt[fmt] = {field: cells_by_key.get(field)
                            for field in fields}
            for rate in ber:
                key = f"ber:{float(rate):g}"
                per_fmt[fmt][key] = cells_by_key.get(key)
        out["models"][model] = {
            "fp32_score": float(baselines[model]), "metric": bundle.metric,
            "higher_is_better": bundle.higher_is_better, "formats": per_fmt,
        }
    save_result(f"resilience_{profile}", out)
    return out


def render(result: Dict) -> str:
    """Text tables: per model, formats x fields, ``SDC | detect | drift``."""
    keys = list(result["fields"]) + [f"ber:{b:g}" for b in result["ber"]]
    blocks = []
    for model, payload in result["models"].items():
        rows = []
        for fmt, per_field in payload["formats"].items():
            row = [fmt]
            for key in keys:
                cell = per_field.get(key)
                if cell is None:
                    row.append("-")
                    continue
                drift = cell["mean_logit_rms_drift"]
                row.append(f"{cell['sdc_rate']:.2f}|{cell['detection_rate']:.2f}"
                           f"|{drift:.2g}" if drift is not None
                           else f"{cell['sdc_rate']:.2f}"
                                f"|{cell['detection_rate']:.2f}|nf")
            rows.append(row)
        blocks.append(format_table(
            ["format"] + keys, rows,
            title=(f"Resilience - {model} at {result['bits']} bits "
                   f"(SDC rate | sanitizer detection | logit RMS drift; "
                   f"{result['trials']} trials/cell)")))
    return "\n\n".join(blocks)
