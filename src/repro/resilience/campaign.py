"""Fault-injection campaigns: per-(model, format, field) resilience cells.

A campaign fans a grid of injection cells over the parallel cell runner
(:mod:`repro.experiments.runner`), one cell per (model, format, bits,
field | BER, seed) combination.  Each cell:

1. loads the cached FP32 checkpoint and post-training-quantizes every
   target weight tensor (float64 grid values + fitted adaptive params,
   so the bit codec round-trips exactly);
2. records the clean quantized probe logits and task score;
3. runs ``trials`` seeded injection events — each picks a weight tensor
   (probability proportional to its stored bit count, i.e. flips land
   uniformly over the weight memory), produces the corrupted tensor, and
   installs it in the model;
4. scores each trial: **detection** (a :func:`repro.nn.scan_parameters`
   sweep plus a :class:`repro.nn.Sanitizer`-instrumented probe forward),
   **corruption** (any probe argmax changed, or non-finite logits),
   **SDC** = corrupted and *not* detected (the silent data corruptions
   of the fault-tolerance literature), logit RMS drift, and the task
   metric.

Two trial-loop implementations produce the fault/detection/drift
counters **bit-identically** (both consume the per-trial RNG stream
through the same draws):

* the **naive** loop (``engine=False``) re-encodes the target, flips,
  re-decodes the whole tensor, and round-trips the full state dict per
  trial — the reference semantics;
* the **engine** loop (default) uses :class:`repro.resilience.engine.
  TrialEngine` (encode once per cell, sparse patch-decode of only the
  flipped words), installs the fault via
  :meth:`repro.nn.Module.swap_parameter`, rescans only the corrupted
  tensor (clean findings for the untouched ones are cached), and — when
  the faulty probe logits are bit-identical to the clean ones — reuses
  the clean task score instead of re-running the evaluation (*masked
  faults score as clean*; see ``docs/resilience.md``).  Only score
  aggregates can differ from the naive loop, and only on masked trials.

A cell's trials are additionally **sharded**: ``run`` splits them into
contiguous seeded chunks dispatched through
:func:`repro.experiments.runner.run_cells`, so ``jobs`` parallelism
applies *within* a cell.  Each trial's generator is
``default_rng([seed, cell-hash, trial])`` with the cell hash taken over
the logical cell keys only, so any sharding layout merges back to the
serial result exactly (chunk-order concatenation reproduces serial
insertion order, including ``detected_kinds``).

Every metric in the cell payload is a finite float, an int, or ``None``
— never NaN/Inf — so results are strict-JSON cacheable and the committed
``BENCH_resilience.json`` is byte-stable across warm re-runs (per-cell
wall times live inside the cached chunk payloads, so even the ``timing``
blocks reload stably).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn, obs
from ..obs import clock
from ..analysis import format_table, save_result
from ..cache import content_key
from ..formats import FORMAT_NAMES, make_quantizer
from ..formats.base import AdaptiveQuantizer
from ..nn.quantize import DEFAULT_QUANTIZED_LAYERS, _target_modules
from ..rng import fresh_rng
from ..experiments.common import MODEL_NAMES, PROFILES, get_bundle, trained_model
from ..experiments.runner import run_cells, shard_ranges
from .engine import TrialEngine
from .inject import FIELDS, REGISTER_FIELD, inject_tensor, register_spec

__all__ = ["DEFAULT_FIELDS", "run", "run_cell", "run_chunk", "render",
           "cell_fields", "measure_injection_throughput"]

#: Fields a full campaign sweeps (word-level classes + the register).
DEFAULT_FIELDS = ("any", "sign", "exponent", "mantissa", REGISTER_FIELD)

#: Bump when the cell computation changes, to invalidate cached cells.
_CACHE_SALT = "resilience-v2"

#: How many eval-set samples the logit probe uses (kept small: the probe
#: runs once per trial on top of the task-metric evaluation).
_PROBE_SIZE = 16

#: Campaign-level metrics, emitted by :func:`run` in the parent process
#: after the (possibly multi-process, possibly cache-served) chunk
#: results merge: per-cell wall time lands in a wide-bucket histogram so
#: one scrape shows how cell cost is distributed across the grid.
_CELLS = obs.counter(
    "repro_campaign_cells_total", "Injection cells merged by campaign "
    "runs.")
_TRIALS = obs.counter(
    "repro_campaign_trials_total", "Injection trials covered by merged "
    "cells.")
_CELL_SECONDS = obs.histogram(
    "repro_campaign_cell_seconds", "Per-cell wall time (summed over the "
    "cell's shards).", buckets=obs.WIDE_SECONDS_BUCKETS)

#: Descriptor keys that define a cell's *faults* — the per-trial RNG
#: stream hashes exactly these, so execution-layout keys (``engine``,
#: ``trial_start``, ``trial_count``) never perturb which bits flip.
#: The set matches the complete descriptors of earlier releases, so the
#: streams (and cached fault sequences) are unchanged.
_LOGICAL_KEYS = ("table", "profile", "model", "format", "bits", "field",
                 "ber", "n_flips", "trials", "seed")


def cell_fields(format_name: str, bits: int) -> Tuple[str, ...]:
    """The injectable fields for one format (skips undefined cells).

    Uniform/BFP words carry no exponent bits, and float/posit carry no
    adaptive register, so those (format, field) cells do not exist.
    """
    quantizer = make_quantizer(format_name, bits)
    classes = set(quantizer.bit_fields())
    fields: List[str] = []
    for field in DEFAULT_FIELDS:
        if field == "any":
            fields.append(field)
        elif field == REGISTER_FIELD:
            if register_spec(format_name) is not None:
                fields.append(field)
        elif field in classes:
            fields.append(field)
    return tuple(fields)


# ------------------------------------------------------------- cell plumbing
def _quantize_targets(model: nn.Module, format_name: str,
                      bits: int) -> Dict[str, Tuple[np.ndarray, Dict]]:
    """PTQ every target weight: name -> (float64 grid values, params).

    Mirrors :func:`repro.nn.quantize_weights_inplace`'s target selection
    but keeps the float64 grid values (the in-place variant casts to
    float32, off the exact grid the bit codec validates against).
    """
    quantized: Dict[str, Tuple[np.ndarray, Dict]] = {}
    for mname, module in _target_modules(model, DEFAULT_QUANTIZED_LAYERS):
        for pname, param in module._parameters.items():
            if pname.startswith("bias") or pname == "bias":
                continue
            quantizer = make_quantizer(format_name, bits)
            data = np.asarray(param.data, dtype=np.float64)
            if isinstance(quantizer, AdaptiveQuantizer):
                params = quantizer.fit(data)
                values = quantizer.quantize_with_params(data, params)
            else:
                params = {}
                values = quantizer.quantize(data)
            quantized[f"{mname}.{pname}"] = (values, params)
    if not quantized:
        raise ValueError("no quantizable weights found in model")
    return quantized


def _probe_logits(model_name: str, model: nn.Module, batch: Any) -> np.ndarray:
    """Raw output logits on the fixed probe batch (no sampling/decoding)."""
    model.eval()
    with nn.no_grad():
        if model_name == "transformer":
            out = model(batch.src, batch.tgt_in)
        elif model_name == "seq2seq":
            out = model(batch.frames, batch.tgt_in)
        else:
            out = model(batch.images)
    return np.asarray(out.data, dtype=np.float64)


def _finite(value: float) -> Optional[float]:
    """JSON-safe scalar: finite floats pass, NaN/Inf become ``None``."""
    value = float(value)
    return value if np.isfinite(value) else None


def _cell_hash(cell: Dict) -> int:
    """Hash of the logical cell keys — the trial RNG stream selector."""
    return int(content_key({k: cell[k] for k in _LOGICAL_KEYS})[:12], 16)


class _SingleParameter:
    """Minimal ``named_parameters()`` shim: rescan one tensor by name."""

    __slots__ = ("_items",)

    def __init__(self, name: str, param: nn.Parameter) -> None:
        self._items = ((name, param),)

    def named_parameters(self):
        return iter(self._items)


class _CellContext:
    """Everything a trial loop needs, built once per cell/chunk/process.

    The engine variant additionally carries the :class:`TrialEngine`
    (packed words + clean decoded basis per target), the clean
    :func:`repro.nn.scan_parameters` findings per parameter, and
    single-parameter scan views — so a trial rescans only the corrupted
    tensor yet reproduces the full-scan findings list exactly (findings
    concatenate in ``named_parameters`` order either way).
    """

    def __init__(self, cell: Dict, engine: bool, scoring: bool = True) -> None:
        self.cell = cell
        self.prof = PROFILES[cell["profile"]]
        self.bundle = get_bundle(cell["model"])
        base_model, self.task, self.fp32_score = trained_model(
            cell["model"], cell["profile"])
        base_state = base_model.state_dict()

        self.quantized = _quantize_targets(base_model, cell["format"],
                                           int(cell["bits"]))
        self.clean_state = dict(base_state)
        for name, (values, _params) in self.quantized.items():
            self.clean_state[name] = np.asarray(values, dtype=np.float32)
        self.bounds = {
            name: float(np.abs(values).max()) if values.size else 0.0
            for name, (values, _params) in self.quantized.items()}

        self.model, _ = self.bundle.build()
        self.model.load_state_dict(self.clean_state)
        if scoring:
            self.probe_batch = self.task.eval_set(_PROBE_SIZE)
            self.clean_logits = _probe_logits(cell["model"], self.model,
                                              self.probe_batch)
            self.clean_argmax = np.argmax(self.clean_logits, axis=-1)
            self.clean_score = self.bundle.evaluate(self.model, self.task,
                                                    self.prof.eval_size)
        else:
            self.probe_batch = None
            self.clean_logits = self.clean_argmax = None
            self.clean_score = None

        self.names = list(self.quantized)
        # Flips land uniformly over the stored weight memory: weight each
        # tensor by its element count (all words in a cell are `bits` wide).
        sizes = np.array([self.quantized[n][0].size for n in self.names],
                         dtype=np.float64)
        self.word_weights = sizes / sizes.sum()
        self.register_weights = np.full(len(self.names),
                                        1.0 / len(self.names))

        self.quantizer = make_quantizer(cell["format"], int(cell["bits"]))
        self.hash = _cell_hash(cell)
        self.field = cell["field"]
        self.ber = cell.get("ber")
        self.n_flips = int(cell.get("n_flips", 1))
        self.seed = int(cell["seed"])

        self.engine: Optional[TrialEngine] = None
        if engine:
            self.engine = TrialEngine(self.quantizer, self.quantized)
            self.param_order = [n for n, _ in self.model.named_parameters()]
            self.clean_findings: Dict[str, List] = {
                n: [] for n in self.param_order}
            for finding in nn.scan_parameters(self.model, bounds=self.bounds,
                                              range_slack=2.0):
                self.clean_findings[finding.layer].append(finding)
            self.scan_views = {
                name: _SingleParameter(name, self.model.get_parameter(name))
                for name in self.names}

    def pick_target(self, rng: np.random.Generator) -> str:
        weights = (self.register_weights if self.field == REGISTER_FIELD
                   else self.word_weights)
        return self.names[int(rng.choice(len(self.names), p=weights))]

    def scan_with_fault(self, target: str) -> List:
        """Full-model scan findings with only ``target`` corrupted.

        Rescans just the corrupted tensor and splices the cached clean
        findings for every other parameter, preserving the exact order a
        full :func:`repro.nn.scan_parameters` sweep would emit.
        """
        findings: List = []
        for pname in self.param_order:
            if pname == target:
                findings.extend(nn.scan_parameters(
                    self.scan_views[pname], bounds=self.bounds,
                    range_slack=2.0))
            else:
                findings.extend(self.clean_findings[pname])
        return findings


# ---------------------------------------------------------------- trial loops
def run_chunk(cell: Dict) -> Dict:
    """Compute one shard of a cell's trials (the ``run_cells`` worker).

    ``cell`` is a logical descriptor plus optional execution keys:
    ``trial_start``/``trial_count`` select the shard (default: all
    trials) and ``engine`` picks the loop implementation (default on).
    Deterministic function of the *logical* keys: every injection event
    uses ``default_rng([seed, cell-hash, trial])`` over global trial
    indices, the probe batch and eval set are seeded, and the FP32
    checkpoint comes from the on-disk cache (warmed by :func:`run`
    before dispatch).
    """
    trials = int(cell["trials"])
    start = int(cell.get("trial_start", 0))
    count = int(cell.get("trial_count", trials - start))
    use_engine = bool(cell.get("engine", True))
    ctx = _CellContext(cell, engine=use_engine)

    detected = corrupted = sdc = nonfinite = masked = 0
    detected_kinds: Dict[str, int] = {}
    drifts: List[float] = []
    scores: List[float] = []
    score_failures = 0
    flips_total = 0
    t0 = clock.now()
    for trial in range(start, start + count):
        rng = fresh_rng([ctx.seed, ctx.hash, trial])
        target = ctx.pick_target(rng)
        restore = None
        # An injected fault is *supposed* to be able to overflow float32
        # and poison the forward pass — suppress numpy's FP warnings here
        # and let the sanitizer report the damage semantically instead.
        try:
            if use_engine:
                with np.errstate(all="ignore"):
                    faulty, n_flips = ctx.engine.faulty_tensor(
                        target, rng, ctx.field, n_flips=ctx.n_flips,
                        ber=ctx.ber)
                flips_total += n_flips
                restore = ctx.model.swap_parameter(target, faulty)
                with np.errstate(all="ignore"):
                    findings = ctx.scan_with_fault(target)
                    with nn.Sanitizer(ctx.model) as report:
                        logits = _probe_logits(cell["model"], ctx.model,
                                               ctx.probe_batch)
            else:
                values, params = ctx.quantized[target]
                result = inject_tensor(ctx.quantizer, values, params, rng,
                                       field=ctx.field, n_flips=ctx.n_flips,
                                       ber=ctx.ber)
                flips_total += result.n_flips
                faulty_state = dict(ctx.clean_state)
                with np.errstate(all="ignore"):
                    faulty_state[target] = np.asarray(result.values,
                                                      dtype=np.float32)
                    ctx.model.load_state_dict(faulty_state)
                    findings = nn.scan_parameters(ctx.model,
                                                  bounds=ctx.bounds,
                                                  range_slack=2.0)
                    with nn.Sanitizer(ctx.model) as report:
                        logits = _probe_logits(cell["model"], ctx.model,
                                               ctx.probe_batch)
            findings = findings + list(report.findings)
            trial_detected = bool(findings)
            for finding in findings:
                detected_kinds[finding.kind] = detected_kinds.get(
                    finding.kind, 0) + 1

            logits_finite = bool(np.isfinite(logits).all())
            mismatch = float(np.mean(np.argmax(logits, axis=-1)
                                     != ctx.clean_argmax))
            trial_corrupted = (not logits_finite) or mismatch > 0.0
            if logits_finite:
                drift = float(np.sqrt(np.mean((logits
                                               - ctx.clean_logits) ** 2)))
                drifts.append(drift)
            else:
                nonfinite += 1
            trial_masked = bool(np.array_equal(logits, ctx.clean_logits))
            masked += trial_masked
            if use_engine and trial_masked:
                # Bit-identical probe logits: the fault is masked on the
                # probe, so score it as clean instead of re-evaluating.
                score = float(ctx.clean_score)
            else:
                with np.errstate(all="ignore"):
                    score = float(ctx.bundle.evaluate(ctx.model, ctx.task,
                                                      ctx.prof.eval_size))
            if np.isfinite(score):
                scores.append(score)
            else:
                score_failures += 1

            detected += trial_detected
            corrupted += trial_corrupted
            sdc += trial_corrupted and not trial_detected
        finally:
            if restore is not None:
                ctx.model.swap_parameter(target, restore)
    wall = clock.now() - t0

    return {
        "trial_start": start,
        "trial_count": count,
        "flips_total": flips_total,
        "detected": detected,
        "corrupted": corrupted,
        "sdc": sdc,
        "nonfinite": nonfinite,
        "masked": masked,
        "score_failures": score_failures,
        "detected_kinds": detected_kinds,
        "drifts": drifts,
        "scores": scores,
        "fp32_score": _finite(ctx.fp32_score),
        "clean_score": _finite(ctx.clean_score),
        "timing": {"wall_time_s": wall,
                   "trials_per_sec": count / wall if wall > 0 else None},
    }


def _merge_chunks(cell: Dict, chunks: Sequence[Dict]) -> Dict:
    """Fold a cell's chunk payloads (in shard order) into the cell payload.

    Counter sums, list concatenation, and ``detected_kinds`` key
    first-occurrence all run in chunk order, so any shard layout
    reproduces the serial single-chunk payload except for ``timing``.
    """
    trials = int(cell["trials"])
    flips_total = sum(c["flips_total"] for c in chunks)
    detected = sum(c["detected"] for c in chunks)
    corrupted = sum(c["corrupted"] for c in chunks)
    sdc = sum(c["sdc"] for c in chunks)
    nonfinite = sum(c["nonfinite"] for c in chunks)
    masked = sum(c["masked"] for c in chunks)
    score_failures = sum(c["score_failures"] for c in chunks)
    detected_kinds: Dict[str, int] = {}
    for chunk in chunks:
        for kind, n in chunk["detected_kinds"].items():
            detected_kinds[kind] = detected_kinds.get(kind, 0) + int(n)
    drifts = [d for chunk in chunks for d in chunk["drifts"]]
    scores = [s for chunk in chunks for s in chunk["scores"]]
    clean_score = chunks[0]["clean_score"]
    wall = sum(c["timing"]["wall_time_s"] for c in chunks)

    bundle = get_bundle(cell["model"])
    higher = bundle.higher_is_better
    mean_score = float(np.mean(scores)) if scores else None
    if mean_score is None or clean_score is None:
        degradation = None
    else:
        degradation = (clean_score - mean_score if higher
                       else mean_score - clean_score)
    return {
        "fp32_score": chunks[0]["fp32_score"],
        "clean_score": clean_score,
        "trials": trials,
        "flips_total": flips_total,
        "sdc_rate": sdc / trials,
        "detection_rate": detected / trials,
        "corrupt_rate": corrupted / trials,
        "nonfinite_logit_rate": nonfinite / trials,
        "masked_probe_rate": masked / trials,
        "mean_logit_rms_drift": _finite(np.mean(drifts)) if drifts else None,
        "max_logit_rms_drift": _finite(np.max(drifts)) if drifts else None,
        "mean_score": _finite(mean_score) if mean_score is not None else None,
        "worst_score": _finite(min(scores) if higher else max(scores))
        if scores else None,
        "score_failures": score_failures,
        "mean_degradation": _finite(degradation)
        if degradation is not None else None,
        "detected_kinds": detected_kinds,
        "timing": {"wall_time_s": wall,
                   "trials_per_sec": trials / wall if wall > 0 else None},
    }


def run_cell(cell: Dict) -> Dict:
    """Compute one full injection cell in-process (all trials, one chunk).

    Honors the descriptor's ``engine`` key (default: engine on); the
    fault/detection/drift counters are identical either way.
    """
    whole = dict(cell)
    whole.pop("trial_start", None)
    whole.pop("trial_count", None)
    return _merge_chunks(whole, [run_chunk(whole)])


# ------------------------------------------------------------------ campaign
def run(profile: str = "fast", models: Sequence[str] = ("transformer",),
        formats: Sequence[str] = FORMAT_NAMES, bits: int = 8,
        fields: Sequence[str] = DEFAULT_FIELDS,
        ber: Sequence[float] = (), n_flips: int = 1, trials: int = 8,
        seed: int = 0, jobs: int = 1, engine: bool = True,
        shards: Optional[int] = None) -> Dict:
    """Run a full injection campaign; returns (and persists) the grid.

    ``fields`` cells that do not exist for a format (no exponent bits,
    no adaptive register) are recorded as ``None`` in the grid rather
    than silently dropped, so reports show the structural gap.  Each
    ``ber`` value adds one whole-word multi-flip cell per (model,
    format) on top of the single-flip field cells.

    ``engine=False`` selects the naive reference trial loop (per-trial
    re-encode + full state-dict round trip).  ``shards`` splits every
    cell's trials into that many seeded chunks dispatched through the
    cell runner, so ``jobs`` parallelism applies within a cell; it
    defaults to ``jobs``, and any layout merges to the same counters.
    """
    PROFILES[profile]  # validate before any work
    for name in models:
        if name not in MODEL_NAMES:
            raise ValueError(f"unknown model {name!r}; known: {MODEL_NAMES}")
    for field in fields:
        if field not in FIELDS + (REGISTER_FIELD,):
            raise ValueError(f"unknown field {field!r}; known: "
                             f"{FIELDS + (REGISTER_FIELD,)}")
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    n_shards = int(shards) if shards else max(1, int(jobs))
    # Warm the FP32 checkpoints serially so workers only ever load them.
    baselines = {name: trained_model(name, profile)[2] for name in models}

    def _cell(model: str, fmt: str, field: str,
              cell_ber: Optional[float]) -> Dict:
        return {"table": "resilience", "profile": profile, "model": model,
                "format": fmt, "bits": int(bits), "field": field,
                "ber": cell_ber, "n_flips": int(n_flips),
                "trials": int(trials), "seed": int(seed)}

    cells: List[Dict] = []
    slots: List[Tuple[str, str, str]] = []  # (model, format, field-or-ber key)
    for model in models:
        for fmt in formats:
            supported = cell_fields(fmt, bits)
            for field in fields:
                if field not in supported:
                    continue
                cells.append(_cell(model, fmt, field, None))
                slots.append((model, fmt, field))
            for rate in ber:
                cells.append(_cell(model, fmt, "any", float(rate)))
                slots.append((model, fmt, f"ber:{float(rate):g}"))

    ranges = shard_ranges(int(trials), n_shards)
    chunk_cells = [dict(cell, engine=bool(engine), trial_start=s,
                        trial_count=c)
                   for cell in cells for (s, c) in ranges]
    chunk_results = run_cells(run_chunk, chunk_cells, jobs=jobs,
                              cache_namespace=f"resilience_{profile}",
                              cache_salt=_CACHE_SALT)
    per_cell = len(ranges)
    results = [_merge_chunks(cell, chunk_results[i * per_cell:
                                                 (i + 1) * per_cell])
               for i, cell in enumerate(cells)]
    for payload in results:
        _CELLS.inc()
        _TRIALS.inc(int(payload["trials"]))
        _CELL_SECONDS.observe(payload["timing"]["wall_time_s"])

    grid: Dict = {}
    for (model, fmt, key), payload in zip(slots, results):
        grid.setdefault(model, {}).setdefault(fmt, {})[key] = payload
    out: Dict = {"profile": profile, "bits": int(bits), "seed": int(seed),
                 "trials": int(trials), "n_flips": int(n_flips),
                 "fields": list(fields), "ber": [float(b) for b in ber],
                 "engine": bool(engine), "models": {}}
    for model in models:
        bundle = get_bundle(model)
        per_fmt: Dict = {}
        for fmt in formats:
            cells_by_key = grid.get(model, {}).get(fmt, {})
            per_fmt[fmt] = {field: cells_by_key.get(field)
                            for field in fields}
            for rate in ber:
                key = f"ber:{float(rate):g}"
                per_fmt[fmt][key] = cells_by_key.get(key)
        out["models"][model] = {
            "fp32_score": float(baselines[model]), "metric": bundle.metric,
            "higher_is_better": bundle.higher_is_better, "formats": per_fmt,
        }
    total_wall = sum(p["timing"]["wall_time_s"] for p in results)
    out["timing"] = {
        "wall_time_s": total_wall,
        "trials_per_sec": (len(results) * int(trials) / total_wall
                           if total_wall > 0 else None),
        "cells": len(results),
    }
    save_result(f"resilience_{profile}", out)
    return out


# ---------------------------------------------------------------- throughput
def measure_injection_throughput(profile: str = "tiny",
                                 model: str = "transformer",
                                 format_name: str = "adaptivfloat",
                                 bits: int = 8, field: str = "any",
                                 n_flips: int = 1,
                                 ber: Optional[float] = None,
                                 trials: int = 200, seed: int = 0,
                                 engine: bool = True,
                                 checksums: bool = False) -> Dict:
    """Time the fault-generation + state-application + detection loop.

    Isolates the machinery the engine accelerates — target draw, fault
    synthesis, installing the corrupted tensor, and the parameter scan —
    from the scoring work (probe forward + task evaluation) that is
    byte-identical in both paths.  The reported trials/sec therefore
    measures the trial loop itself, which is what the committed
    benchmark's >= 3x gate checks.

    With ``checksums=True`` each trial's installed parameter bytes are
    hashed; engine and naive runs at equal arguments must produce equal
    digest lists (the equivalence half of the benchmark).
    """
    cell = {"table": "resilience", "profile": profile, "model": model,
            "format": format_name, "bits": int(bits), "field": field,
            "ber": ber, "n_flips": int(n_flips), "trials": int(trials),
            "seed": int(seed)}
    ctx = _CellContext(cell, engine=bool(engine), scoring=False)

    flips_total = 0
    findings_total = 0
    digests: List[str] = []
    t0 = clock.now()
    for trial in range(int(trials)):
        rng = fresh_rng([ctx.seed, ctx.hash, trial])
        target = ctx.pick_target(rng)
        if engine:
            with np.errstate(all="ignore"):
                faulty, n_flips_actual = ctx.engine.faulty_tensor(
                    target, rng, ctx.field, n_flips=ctx.n_flips, ber=ctx.ber)
            restore = ctx.model.swap_parameter(target, faulty)
            findings = ctx.scan_with_fault(target)
            if checksums:
                data = ctx.model.get_parameter(target).data
                digests.append(target + ":" + hashlib.sha1(
                    data.tobytes()).hexdigest()[:16])
            ctx.model.swap_parameter(target, restore)
        else:
            values, params = ctx.quantized[target]
            with np.errstate(all="ignore"):
                result = inject_tensor(ctx.quantizer, values, params, rng,
                                       field=ctx.field, n_flips=ctx.n_flips,
                                       ber=ctx.ber)
                faulty_state = dict(ctx.clean_state)
                faulty_state[target] = np.asarray(result.values,
                                                  dtype=np.float32)
                ctx.model.load_state_dict(faulty_state)
                findings = nn.scan_parameters(ctx.model, bounds=ctx.bounds,
                                              range_slack=2.0)
            n_flips_actual = result.n_flips
            if checksums:
                data = ctx.model.get_parameter(target).data
                digests.append(target + ":" + hashlib.sha1(
                    data.tobytes()).hexdigest()[:16])
        flips_total += n_flips_actual
        findings_total += len(findings)
    wall = clock.now() - t0

    return {
        "engine": bool(engine),
        "profile": profile, "model": model, "format": format_name,
        "bits": int(bits), "field": field, "n_flips": int(n_flips),
        "ber": ber, "seed": int(seed),
        "trials": int(trials),
        "wall_time_s": wall,
        "trials_per_sec": trials / wall if wall > 0 else None,
        "flips_total": flips_total,
        "findings_total": findings_total,
        "checksums": digests if checksums else None,
    }


def render(result: Dict) -> str:
    """Text tables: per model, formats x fields, ``SDC | detect | drift``."""
    keys = list(result["fields"]) + [f"ber:{b:g}" for b in result["ber"]]
    blocks = []
    for model, payload in result["models"].items():
        rows = []
        for fmt, per_field in payload["formats"].items():
            row = [fmt]
            for key in keys:
                cell = per_field.get(key)
                if cell is None:
                    row.append("-")
                    continue
                drift = cell["mean_logit_rms_drift"]
                row.append(f"{cell['sdc_rate']:.2f}|{cell['detection_rate']:.2f}"
                           f"|{drift:.2g}" if drift is not None
                           else f"{cell['sdc_rate']:.2f}"
                                f"|{cell['detection_rate']:.2f}|nf")
            rows.append(row)
        blocks.append(format_table(
            ["format"] + keys, rows,
            title=(f"Resilience - {model} at {result['bits']} bits "
                   f"(SDC rate | sanitizer detection | logit RMS drift; "
                   f"{result['trials']} trials/cell)")))
    return "\n\n".join(blocks)
