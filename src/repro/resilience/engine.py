"""Trial-vectorized fault generation: cached encode + sparse patch-decode.

The naive trial loop (what :func:`repro.resilience.inject.inject_tensor`
does when called once per trial) redoes O(tensor) work for a fault that
touches *k* bits: it re-encodes the whole target tensor, flips bits,
and re-decodes the whole word stream.  :class:`TrialEngine` exploits the
sparsity invariant:

* **encode caching** — every target tensor is encoded to its packed
  words exactly once, when the engine is built;
* **clean decoded basis** — the decoded float32 view of the clean words
  is cached once; a trial starts from a memcpy of it;
* **sparse patch-decode** — only the words whose bits flipped are
  re-decoded (through the shared word -> value LUT of
  :func:`repro.formats.codec.decode_words` for word sizes <= 16, or a
  vectorized slice decode above that) and patched into the copy;
* **register faults** decode the cached words once under the corrupted
  adaptive parameters — a single LUT gather instead of per-word field
  arithmetic.

The engine consumes the per-trial random stream *identically* to
``inject_tensor`` (same :func:`sample_flip_positions` /
``rng.integers`` calls in the same order), so a campaign built on it
reproduces the naive loop's faults bit for bit.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..formats.base import Quantizer
from ..formats.codec import decode_words, encode_tensor
from .inject import (REGISTER_FIELD, flip_float_register, flip_int_register,
                     register_spec, sample_flip_positions)

__all__ = ["TensorRecord", "TrialEngine"]


@dataclasses.dataclass
class TensorRecord:
    """Per-target cache: packed words plus the clean decoded basis."""

    name: str                 #: dotted parameter name
    shape: Tuple[int, ...]    #: original tensor shape
    params: Dict[str, Any]    #: fitted adaptive parameters
    words: np.ndarray         #: flat uint32 word stream (encoded once)
    clean32: np.ndarray       #: decoded clean words as stored float32


class TrialEngine:
    """Fault generator over a fixed set of quantized target tensors.

    Built once per campaign cell from the PTQ output (``name ->
    (grid values, params)``); :meth:`faulty_tensor` then produces each
    trial's corrupted float32 tensor in O(model-free) time for word
    faults — no re-encode, no full decode, no state-dict round trip.
    """

    def __init__(self, quantizer: Quantizer,
                 quantized: Dict[str, Tuple[np.ndarray, Dict]]) -> None:
        self.quantizer = quantizer
        self.bits = int(quantizer.bits)
        self.records: Dict[str, TensorRecord] = {}
        for name, (values, params) in quantized.items():
            v = np.asarray(values, dtype=np.float64)
            words = np.ascontiguousarray(
                encode_tensor(quantizer, v, params), dtype=np.uint32).ravel()
            # Decode the words back rather than trusting ``values``: the
            # clean basis is then *by construction* what the naive loop's
            # zero-flip decode would produce (codec round-trips are exact
            # for every registry format, but this removes the reliance).
            clean64 = np.asarray(decode_words(quantizer, words, params),
                                 dtype=np.float64)
            with np.errstate(all="ignore"):
                clean32 = np.ascontiguousarray(clean64.reshape(v.shape),
                                               dtype=np.float32)
            self.records[name] = TensorRecord(
                name=name, shape=v.shape, params=dict(params or {}),
                words=words, clean32=clean32)

    # ------------------------------------------------------------- trials
    def faulty_tensor(self, name: str, rng: np.random.Generator,
                      field: str = "any", n_flips: int = 1,
                      ber: Optional[float] = None
                      ) -> Tuple[np.ndarray, int]:
        """One injection event on target ``name``.

        Returns ``(faulty float32 tensor, bits actually flipped)`` —
        the array the naive loop would have produced via
        ``np.asarray(inject_tensor(...).values, dtype=np.float32)``,
        bit for bit.  The returned array is freshly allocated each call
        (safe to hand to :meth:`repro.nn.Module.swap_parameter`).
        """
        record = self.records[name]
        quantizer = self.quantizer
        if field == REGISTER_FIELD:
            spec = register_spec(quantizer.name)
            if spec is None:
                raise ValueError(
                    f"format {quantizer.name!r} has no adaptive register")
            key, kind, width = spec
            bit = int(rng.integers(width))
            params = dict(record.params)
            if kind == "int":
                params[key] = flip_int_register(int(params[key]), bit, width)
            else:
                params[key] = flip_float_register(float(params[key]), bit)
            with np.errstate(all="ignore"):
                faulty = np.asarray(
                    decode_words(quantizer, record.words, params),
                    dtype=np.float32).reshape(record.shape)
            return faulty, 1

        positions = sample_flip_positions(rng, quantizer, record.words.size,
                                          field=field, n_flips=n_flips,
                                          ber=ber)
        faulty = record.clean32.copy()
        if positions.size:
            word_idx = positions // self.bits
            hit, sub_idx = np.unique(word_idx, return_inverse=True)
            sub = record.words[hit].copy()
            masks = (np.uint32(1)
                     << (self.bits - 1 - (positions % self.bits)
                         ).astype(np.uint32))
            np.bitwise_xor.at(sub, sub_idx, masks)
            with np.errstate(all="ignore"):
                patch = decode_words(quantizer, sub, record.params)
                # float64 -> float32 element casts match the naive
                # loop's full-tensor cast (both elementwise IEEE).
                faulty.reshape(-1)[hit] = patch
        return faulty, int(positions.size)
