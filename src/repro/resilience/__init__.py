"""Bit-flip fault injection and resilience evaluation.

The paper's titular claim is *resilient* inference: AdaptivFloat's
bounded, per-tensor-shifted dynamic range degrades gracefully under
storage faults where IEEE-like floats explode (a flipped exponent MSB
multiplies a weight by ``2**(2**(e-1))``) and full-precision scale
registers are single points of catastrophic failure.  This package
measures that directly:

* :mod:`~repro.resilience.inject` — seeded single-flip / BER /
  field-targeted bit flips over the packed bitstreams of
  :mod:`repro.formats.bitpack`, decoded back through each format's bit
  codec, plus adaptive-register (``exp_bias`` / shared-exponent /
  scale) faults;
* :mod:`~repro.resilience.campaign` — an injection-campaign driver over
  the parallel cell runner scoring silent-data-corruption rate, logit
  drift, task-metric degradation, and runtime-sanitizer detection
  coverage;
* :mod:`~repro.resilience.scrub` — golden-stream weight-integrity
  scrubbing (per-tensor CRC32 verify + in-place restore) used by the
  self-healing serving path (:mod:`repro.serve.resilient`).

See ``docs/resilience.md`` for the injection model and metrics.
"""

from . import campaign, engine, inject, scrub
from .campaign import (DEFAULT_FIELDS, cell_fields,
                       measure_injection_throughput, render)
from .campaign import run as run_campaign
from .engine import TrialEngine
from .inject import (FIELDS, REGISTER_FIELD, InjectionResult, eligible_bits,
                     flip_float_register, flip_int_register, flip_packed,
                     flip_words, inject_tensor, register_spec,
                     sample_flip_positions)
from .scrub import ScrubReport, TensorGolden, WeightScrubber

__all__ = [
    "DEFAULT_FIELDS", "FIELDS", "REGISTER_FIELD", "InjectionResult",
    "ScrubReport", "TensorGolden", "TrialEngine", "WeightScrubber",
    "campaign", "cell_fields", "eligible_bits", "engine",
    "flip_float_register", "flip_int_register", "flip_packed", "flip_words",
    "inject", "inject_tensor", "measure_injection_throughput",
    "register_spec", "render", "run_campaign", "sample_flip_positions",
    "scrub",
]
