"""Seeded bit-flip fault injection over packed quantized bitstreams.

The injection model follows the transient-fault literature the paper's
resilience claim speaks to: a stored weight buffer (the packed ``n``-bit
words from :mod:`repro.formats.bitpack`) suffers single-event upsets —
individual bits invert — and the corrupted words flow through the
format's ``decode`` back into the datapath.  Because every registry
format now has a bit-level codec, the same flip applied at the same flat
bit offset is comparable across formats at matched word size, which is
exactly the sign/exponent/mantissa field-sensitivity measurement of
Johnson's "Rethinking floating point for deep learning".

Three targeting modes:

* **single/multi flip** (``n_flips``): exactly ``k`` distinct bit
  positions drawn uniformly from the eligible set;
* **BER** (``ber``): every eligible bit flips independently with the
  given bit-error rate;
* **field-targeted** (``field``): the eligible set is restricted to one
  bit class from the format's :meth:`~repro.formats.base.Quantizer.bit_fields`
  map — ``"sign"``, ``"exponent"``, ``"mantissa"`` — or to the
  per-tensor **register** (``"exp_bias"``): AdaptivFloat's integer
  exponent bias, BFP's shared exponent (both int8 two's complement), or
  uniform's float32 scale.  IEEE-like float and posit carry no adaptive
  register, so register cells are undefined for them.

All randomness flows through an explicit ``numpy.random.Generator``;
identical (generator state, arguments) produce identical faults.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..formats.base import Quantizer
from ..formats.bitpack import flip_word_bits
from ..formats.codec import decode_tensor, encode_tensor

__all__ = [
    "FIELDS",
    "REGISTER_FIELD",
    "InjectionResult",
    "register_spec",
    "eligible_bits",
    "sample_flip_positions",
    "flip_packed",
    "flip_words",
    "flip_int_register",
    "flip_float_register",
    "encode_tensor",
    "decode_tensor",
    "inject_tensor",
]

#: Word-level bit classes every codec labels (``"any"`` = all of them).
FIELDS = ("any", "sign", "exponent", "mantissa")

#: Name of the per-tensor adaptive-parameter register field.
REGISTER_FIELD = "exp_bias"

#: format name -> (params key, register kind, register width in bits).
_REGISTERS: Dict[str, Tuple[str, str, int]] = {
    "adaptivfloat": ("exp_bias", "int", 8),
    "bfp": ("shared_exp", "int", 8),
    "uniform": ("scale", "float", 32),
}


def register_spec(format_name: str) -> Optional[Tuple[str, str, int]]:
    """``(params key, kind, width)`` of a format's register, or ``None``.

    ``kind`` is ``"int"`` (int8 two's complement — the hardware register
    AdaptivFloat's Section 5 PE holds) or ``"float"`` (IEEE float32, the
    full-precision scale a uniform-quantized engine must store).
    """
    return _REGISTERS.get(format_name)


# ------------------------------------------------------------ bit targeting
def eligible_bits(quantizer: Quantizer, count: int,
                  field: str = "any") -> np.ndarray:
    """Flat bit offsets (into the packed stream) matching ``field``.

    Bit ``j`` (0 = MSB) of word ``i`` sits at flat offset
    ``i * bits + j`` in the MSB-first packed layout of
    :func:`repro.formats.bitpack.pack_words`.
    """
    if field == "any":
        per_word = np.arange(quantizer.bits, dtype=np.int64)
    else:
        labels = quantizer.bit_fields()
        per_word = np.flatnonzero(
            np.array([lab == field for lab in labels]))
        if per_word.size == 0:
            raise ValueError(
                f"format {quantizer.name!r} has no {field!r} bits "
                f"(fields: {sorted(set(labels))})")
    base = np.arange(count, dtype=np.int64) * quantizer.bits
    return (base[:, None] + per_word[None, :]).ravel()


def sample_flip_positions(rng: np.random.Generator, quantizer: Quantizer,
                          count: int, field: str = "any",
                          n_flips: int = 1,
                          ber: Optional[float] = None) -> np.ndarray:
    """Draw the flat bit offsets to flip for one injection event.

    With ``ber`` set, each eligible bit flips independently with that
    probability (``n_flips`` is ignored); otherwise exactly ``n_flips``
    distinct eligible offsets are drawn uniformly.
    """
    eligible = eligible_bits(quantizer, count, field)
    if ber is not None:
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"ber must be in [0, 1], got {ber}")
        return eligible[rng.random(eligible.size) < ber]
    if n_flips > eligible.size:
        raise ValueError(
            f"cannot flip {n_flips} distinct bits out of {eligible.size}")
    return np.sort(rng.choice(eligible, size=int(n_flips), replace=False))


# --------------------------------------------------------------- bit flipping
def flip_packed(packed: bytes, positions: np.ndarray) -> bytes:
    """XOR the bits at flat MSB-first offsets ``positions`` (involution)."""
    buf = np.frombuffer(packed, dtype=np.uint8).copy()
    pos = np.asarray(positions, dtype=np.int64)
    if pos.size == 0:
        return packed
    if np.any((pos < 0) | (pos >= buf.size * 8)):
        raise ValueError("bit position outside the packed buffer")
    masks = (np.uint8(1) << (7 - (pos % 8)).astype(np.uint8))
    # unbuffered XOR accumulate: repeated offsets toggle repeatedly
    np.bitwise_xor.at(buf, pos // 8, masks)
    return buf.tobytes()


def flip_words(words: np.ndarray, bits: int,
               positions: np.ndarray) -> np.ndarray:
    """Flip bits in an array of ``bits``-wide words (packed-layout offsets).

    Word-domain XOR via :func:`repro.formats.bitpack.flip_word_bits` —
    bit-identical to packing, flipping the stream, and unpacking, minus
    the stream round-trip.
    """
    return flip_word_bits(words, bits, positions)


def flip_int_register(value: int, bit_index: int, width: int = 8) -> int:
    """Flip one bit of a two's-complement ``width``-bit integer register.

    ``bit_index`` 0 is the MSB (the sign bit of the stored register).
    """
    if not 0 <= bit_index < width:
        raise ValueError(f"bit index {bit_index} outside {width}-bit register")
    mask = (1 << width) - 1
    stored = int(value) & mask
    if not -(1 << (width - 1)) <= int(value) < (1 << (width - 1)):
        raise ValueError(f"register value {value} does not fit {width} bits")
    stored ^= 1 << (width - 1 - bit_index)
    return stored - (1 << width) if stored >= (1 << (width - 1)) else stored


def flip_float_register(value: float, bit_index: int) -> float:
    """Flip one bit of an IEEE float32 register (0 = sign MSB).

    The result can be Inf/NaN — a flipped scale exponent is precisely
    the catastrophic fault mode full-precision scale registers expose.
    """
    if not 0 <= bit_index < 32:
        raise ValueError(f"bit index {bit_index} outside a float32 register")
    word = np.float32(value).view(np.uint32)
    word = word ^ np.uint32(1 << (31 - bit_index))
    return float(word.view(np.float32))


# ----------------------------------------------------------- tensor adapters
# encode_tensor / decode_tensor moved to repro.formats.codec (imported
# above) so the formats layer owns the parameter-dispatch convention;
# re-exported here unchanged for existing callers.


@dataclasses.dataclass(frozen=True)
class InjectionResult:
    """Outcome of one injection event on one tensor."""

    values: np.ndarray          #: decoded tensor after the fault
    n_flips: int                #: number of bits actually flipped
    positions: np.ndarray       #: flat bit offsets (empty for register hits)
    register_bit: Optional[int] #: register bit index, when field="exp_bias"
    params: Dict[str, Any]      #: adaptive params after the fault


def inject_tensor(quantizer: Quantizer, values: np.ndarray,
                  params: Optional[Dict[str, Any]],
                  rng: np.random.Generator, field: str = "any",
                  n_flips: int = 1,
                  ber: Optional[float] = None) -> InjectionResult:
    """Inject one fault event into a quantized tensor and decode it back.

    ``values`` must already lie on the quantizer's grid for ``params``
    (they are encoded to words first — off-grid values raise).  For
    ``field="exp_bias"`` the flip lands in the per-tensor register
    instead of the word stream; formats without a register raise
    ``ValueError``.
    """
    v = np.asarray(values, dtype=np.float64)
    if field == REGISTER_FIELD:
        spec = register_spec(quantizer.name)
        if spec is None:
            raise ValueError(
                f"format {quantizer.name!r} has no adaptive register")
        key, kind, width = spec
        words = encode_tensor(quantizer, v, params)
        bit = int(rng.integers(width))
        new_params = dict(params or {})
        if kind == "int":
            new_params[key] = flip_int_register(int(new_params[key]), bit,
                                                width)
        else:
            new_params[key] = flip_float_register(float(new_params[key]), bit)
        faulty = decode_tensor(quantizer, words, new_params)
        return InjectionResult(values=faulty, n_flips=1,
                               positions=np.empty(0, dtype=np.int64),
                               register_bit=bit, params=new_params)
    words = encode_tensor(quantizer, v, params)
    positions = sample_flip_positions(rng, quantizer, words.size,
                                      field=field, n_flips=n_flips, ber=ber)
    flipped = flip_words(words, quantizer.bits, positions)
    faulty = decode_tensor(quantizer, flipped, params)
    return InjectionResult(values=faulty, n_flips=int(positions.size),
                           positions=positions, register_bit=None,
                           params=dict(params or {}))
