"""Weight-integrity scrubbing: golden streams, CRC verification, repair.

A warm served model keeps its weights in DRAM/SRAM for the process
lifetime — exactly the residency window in which the bit-upset model of
:mod:`repro.resilience.inject` applies.  Memory scrubbing is the classic
hardware answer (periodically sweep the array against an ECC/golden
copy); this module implements its software analogue over the repo's own
encoding stack:

* :meth:`WeightScrubber.snapshot` records, per parameter tensor, a
  **golden encoded stream** (``formats.bitpack.pack_words``) plus two
  CRC32 checksums: ``value_crc`` over the canonical big-endian float32
  byte stream of the live weight (what :meth:`verify` recomputes), and
  ``stream_crc`` over the packed golden bytes themselves (so a corrupted
  *golden copy* is reported uncorrectable instead of being "restored"
  wrongly).  When the scrubber has a :class:`~repro.nn.quantize.QuantSpec`
  and the weight already sits on the format's grid (a PTQ'd model), the
  golden stream is the true ``n``-bit encoding — the same ``bits``-per-
  element cost the accelerator's weight buffer pays; otherwise it falls
  back to raw 32-bit words.  Either way the golden decodes bit-identically
  to the snapshot, which snapshot() asserts.
* :meth:`WeightScrubber.verify` CRCs the live tensors against the golden
  checksums — two orders of magnitude cheaper than a forward pass, cheap
  enough to run between micro-batches.
* :meth:`WeightScrubber.restore` decodes the golden stream and installs
  it via :meth:`~repro.nn.module.Module.swap_parameter`, bumping
  ``Parameter.version`` so the weight-quant memo invalidates, and
  bumping the scrubber's ``generation`` so in-flight work that read the
  corrupted weights knows to retry.
* :meth:`WeightScrubber.scrub` = verify + restore with a
  :class:`ScrubReport` of what happened, feeding the serving layer's
  fault counters.

All public methods are safe to call concurrently (one reentrant lock);
the serving engine calls them from worker threads and from the periodic
scrub daemon.
"""

from __future__ import annotations

import dataclasses
import threading
import zlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..formats import AdaptiveQuantizer
from ..formats.bitpack import crc32_stream, pack_words, unpack_words
from ..formats.codec import decode_tensor, encode_tensor
from ..obs import clock

__all__ = ["TensorGolden", "ScrubReport", "WeightScrubber",
           "float_stream_crc"]

# Process-wide scrub metrics, summed over every WeightScrubber (the
# per-instance lifetime counters below remain the per-model view).
_PASSES = obs.counter(
    "repro_scrub_passes_total", "Scrub passes by trigger reason.",
    ("reason",))
_TENSORS = obs.counter(
    "repro_scrub_tensors_checked_total", "Parameter tensors CRC-verified "
    "against their golden checksums.")
_FAULTS = obs.counter(
    "repro_scrub_faults_total", "Corrupted tensors detected by verify.")
_RESTORES = obs.counter(
    "repro_scrub_restores_total", "Tensors repaired from golden streams.")
_UNCORRECTABLE = obs.counter(
    "repro_scrub_uncorrectable_total", "Faults whose golden copy failed "
    "its self-checksum (restore impossible).")
_DURATION = obs.histogram(
    "repro_scrub_duration_seconds", "Wall time of scrub passes.")

#: Golden-stream encoding for weights not on a quantizer grid: the raw
#: IEEE-754 bit pattern as 32-bit words.
_RAW_FMT = "float32"


def _float_words(data: np.ndarray) -> np.ndarray:
    """The IEEE-754 bit patterns of a float32 array, as uint32 words."""
    return np.ascontiguousarray(data, dtype=np.float32).view(np.uint32)


def float_stream_crc(data: np.ndarray) -> int:
    """CRC32 of a tensor's canonical (big-endian float32) byte stream."""
    return crc32_stream(_float_words(data), 32)


@dataclasses.dataclass(frozen=True)
class TensorGolden:
    """One parameter's golden copy: packed stream + integrity checksums."""

    name: str
    shape: Tuple[int, ...]
    fmt: str                        # quant label ("adaptivfloat8") or raw
    bits: int
    count: int                      # number of words in the stream
    stream: bytes                   # packed golden words (MSB-first)
    params: Optional[Dict[str, Any]]  # fitted adaptive params (n-bit path)
    value_crc: int                  # CRC of the weight's float32 stream
    stream_crc: int                 # CRC of the packed golden bytes

    @property
    def nbytes(self) -> int:
        return len(self.stream)


@dataclasses.dataclass
class ScrubReport:
    """Outcome of one :meth:`WeightScrubber.scrub` pass."""

    checked: int = 0
    corrupted: List[str] = dataclasses.field(default_factory=list)
    restored: List[str] = dataclasses.field(default_factory=list)
    uncorrectable: List[str] = dataclasses.field(default_factory=list)
    duration_s: float = 0.0
    generation: int = 0
    reason: str = "on-demand"

    @property
    def clean(self) -> bool:
        return not self.corrupted


class WeightScrubber:
    """Golden-copy integrity scrubber for one model's parameters.

    Parameters
    ----------
    model:
        The :class:`~repro.nn.module.Module` to protect.  The scrubber
        holds it by reference and repairs tensors in place.
    quant:
        Optional :class:`~repro.nn.quantize.QuantSpec`.  When given,
        snapshot() *tries* the true ``n``-bit golden encoding per tensor
        and keeps it only if it decodes bit-identically (weights already
        on the grid, i.e. after PTQ); tensors off the grid fall back to
        raw 32-bit streams.
    snapshot:
        Take the initial snapshot in the constructor (default).  Pass
        ``False`` to defer — e.g. until after a warmup forward.
    """

    def __init__(self, model: Any, quant: Optional[Any] = None,
                 snapshot: bool = True) -> None:
        self.model = model
        self.quant = quant
        self._lock = threading.RLock()
        self._golden: Dict[str, TensorGolden] = {}
        #: bumped on every restore; a worker that saw the generation
        #: change across a batch knows its forward may have read
        #: corrupted (since-repaired) weights and must retry.
        self.generation = 0
        # lifetime counters (read by ServerStats integration)
        self.scrubs = 0
        self.tensors_checked = 0
        self.faults_found = 0
        self.restores = 0
        self.uncorrectable_faults = 0
        self.scrub_time_s = 0.0
        if snapshot:
            self.snapshot()

    # ------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, TensorGolden]:
        """(Re)record every parameter's golden stream from its live value.

        Call only when the weights are known-good (right after build or
        after an intentional update) — the golden *defines* correctness
        for every later verify.
        """
        with self._lock:
            self._golden = {
                name: self._encode_golden(name, param.data)
                for name, param in self.model.named_parameters()
            }
            return dict(self._golden)

    def _encode_golden(self, name: str, data: np.ndarray) -> TensorGolden:
        data = np.ascontiguousarray(data, dtype=np.float32)
        value_crc = float_stream_crc(data)
        if self.quant is not None and data.size:
            golden = self._try_grid_golden(name, data, value_crc)
            if golden is not None:
                return golden
        words = _float_words(data)
        stream = pack_words(words, 32)
        return TensorGolden(
            name=name, shape=tuple(data.shape), fmt=_RAW_FMT, bits=32,
            count=int(words.size), stream=stream, params=None,
            value_crc=value_crc,
            stream_crc=zlib.crc32(stream) & 0xFFFFFFFF)

    def _try_grid_golden(self, name: str, data: np.ndarray,
                         value_crc: int) -> Optional[TensorGolden]:
        """The n-bit golden, or None when the weight is off the grid."""
        quantizer = self.quant.build()
        try:
            params: Optional[Dict[str, Any]]
            if isinstance(quantizer, AdaptiveQuantizer):
                params = quantizer.fit(data)
            else:
                params = {}
            words = np.asarray(encode_tensor(quantizer, data, params),
                               dtype=np.uint32)
            decoded = np.asarray(decode_tensor(quantizer, words, params),
                                 dtype=np.float32).reshape(data.shape)
        except (ValueError, FloatingPointError):
            return None  # e.g. non-finite weights reject encoding
        if not np.array_equal(_float_words(decoded), _float_words(data)):
            return None
        stream = pack_words(words, quantizer.bits)
        return TensorGolden(
            name=name, shape=tuple(data.shape), fmt=self.quant.label,
            bits=int(quantizer.bits), count=int(words.size), stream=stream,
            params=params, value_crc=value_crc,
            stream_crc=zlib.crc32(stream) & 0xFFFFFFFF)

    # --------------------------------------------------------------- verify
    def verify(self, names: Optional[List[str]] = None) -> List[str]:
        """Names of parameters whose live CRC differs from the golden."""
        with self._lock:
            if not self._golden:
                raise RuntimeError("no golden snapshot; call snapshot()")
            targets = names if names is not None else list(self._golden)
            corrupted = []
            for name in targets:
                golden = self._golden[name]
                live = self.model.get_parameter(name).data
                self.tensors_checked += 1
                if float_stream_crc(live) != golden.value_crc:
                    corrupted.append(name)
            _TENSORS.inc(len(targets))
            return corrupted

    # -------------------------------------------------------------- restore
    def _decode_golden(self, golden: TensorGolden) -> Optional[np.ndarray]:
        """Decode a golden stream back to float32, or None if the golden
        itself fails its self-checksum (uncorrectable)."""
        if zlib.crc32(golden.stream) & 0xFFFFFFFF != golden.stream_crc:
            return None
        words = unpack_words(golden.stream, golden.bits, golden.count)
        if golden.fmt == _RAW_FMT:
            restored = words.astype(np.uint32).view(np.float32)
        else:
            quantizer = self.quant.build()
            restored = np.asarray(
                decode_tensor(quantizer, words, golden.params),
                dtype=np.float32)
        restored = restored.reshape(golden.shape)
        if float_stream_crc(restored) != golden.value_crc:
            return None  # decode disagrees with the recorded value
        return restored

    def restore(self, name: str) -> bool:
        """Repair one tensor from its golden stream.

        Returns True on success; False marks the fault uncorrectable
        (the golden copy itself is corrupted).  A successful restore
        bumps :attr:`generation` and the parameter's version (via
        ``swap_parameter``), invalidating the weight-quant memo.
        """
        with self._lock:
            golden = self._golden[name]
            restored = self._decode_golden(golden)
            if restored is None:
                self.uncorrectable_faults += 1
                _UNCORRECTABLE.inc()
                return False
            self.model.swap_parameter(name, restored)
            self.generation += 1
            self.restores += 1
            _RESTORES.inc()
            return True

    # ---------------------------------------------------------------- scrub
    def scrub(self, names: Optional[List[str]] = None,
              reason: str = "on-demand") -> ScrubReport:
        """Verify (all or ``names``) and restore whatever is corrupted."""
        t0 = clock.now()
        with self._lock:
            corrupted = self.verify(names)
            report = ScrubReport(
                checked=len(names if names is not None else self._golden),
                corrupted=corrupted, reason=reason)
            for name in corrupted:
                self.faults_found += 1
                if self.restore(name):
                    report.restored.append(name)
                else:
                    report.uncorrectable.append(name)
            self.scrubs += 1
            report.duration_s = clock.now() - t0
            self.scrub_time_s += report.duration_s
            report.generation = self.generation
        _PASSES.labels(reason=reason).inc()
        if corrupted:
            _FAULTS.inc(len(corrupted))
        _DURATION.observe(report.duration_s)
        return report

    # -------------------------------------------------------------- metrics
    def golden_nbytes(self) -> int:
        """Total bytes held in golden streams (the scrubber's memory cost)."""
        with self._lock:
            return sum(g.nbytes for g in self._golden.values())

    def golden_formats(self) -> Dict[str, int]:
        """Tensor count per golden encoding (n-bit grid vs raw float32)."""
        with self._lock:
            out: Dict[str, int] = {}
            for golden in self._golden.values():
                out[golden.fmt] = out.get(golden.fmt, 0) + 1
            return out

    def counters(self) -> Dict[str, Any]:
        """JSON-safe lifetime counters for stats/bench integration."""
        with self._lock:
            return {
                "scrubs": self.scrubs,
                "tensors_checked": self.tensors_checked,
                "faults_found": self.faults_found,
                "restores": self.restores,
                "uncorrectable": self.uncorrectable_faults,
                "scrub_time_s": round(self.scrub_time_s, 6),
                "generation": self.generation,
                "golden_nbytes": sum(g.nbytes
                                     for g in self._golden.values()),
            }
