"""Numerical-analysis helpers for the encodings.

First-principles quantities behind the paper's design choices: dynamic
range, worst-case relative error, and the exact accumulator widths a MAC
pipeline needs — derived symbolically here and compared, in the tests,
against the paper's ``2n + log2(H)`` / ``2(2^e−1) + 2m + log2(H)``
register formulas.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from .base import Quantizer

__all__ = [
    "dynamic_range_db", "decades_covered", "worst_case_relative_error",
    "adaptivfloat_product_bits", "int_accumulator_bits",
    "hfint_accumulator_bits", "format_summary",
]


def dynamic_range_db(quantizer: Quantizer, **params) -> float:
    """20·log10(max|x| / min nonzero |x|) over the codepoint set."""
    points = np.abs(quantizer.codepoints(**params))
    nonzero = points[points > 0]
    if nonzero.size == 0:
        raise ValueError("format has no nonzero codepoints")
    return 20.0 * math.log10(float(nonzero.max() / nonzero.min()))


def decades_covered(quantizer: Quantizer, **params) -> float:
    """Orders of magnitude between the smallest and largest magnitudes."""
    return dynamic_range_db(quantizer, **params) / 20.0


def worst_case_relative_error(quantizer: Quantizer, **params) -> float:
    """Largest relative rounding error *within* the covered range.

    Computed from adjacent codepoint gaps: a value at the midpoint of
    the widest relative gap incurs the worst error.
    """
    points = np.unique(np.abs(quantizer.codepoints(**params)))
    points = points[points > 0]
    if points.size < 2:
        raise ValueError("need at least two magnitudes")
    mids = 0.5 * (points[:-1] + points[1:])
    err = (mids - points[:-1]) / mids
    return float(err.max())


# ------------------------------------------------------- width derivations
def adaptivfloat_product_bits(exp_bits: int, mant_bits: int) -> int:
    """Bits to hold one exact AdaptivFloat x AdaptivFloat product
    (unsigned magnitude, in units of ``2^-(2m)`` before biases).

    Mantissas are in ``[2^m, 2^(m+1))`` so products need ``2m + 2`` bits;
    stored exponents add up to ``2 (2^e - 1)`` left shifts.
    """
    return (2 * mant_bits + 2) + 2 * (2 ** exp_bits - 1)


def int_accumulator_bits(bits: int, accum_length: int) -> int:
    """Exact signed width for ``H`` products of n-bit two's-complement
    operands (symmetric ±(2^(n-1)−1) values)."""
    level = 2 ** (bits - 1) - 1
    worst = accum_length * level * level
    return math.ceil(math.log2(worst + 1)) + 1  # +1 sign


def hfint_accumulator_bits(bits: int, exp_bits: int,
                           accum_length: int) -> int:
    """Exact signed width for ``H`` worst-case AdaptivFloat products."""
    mant_bits = bits - exp_bits - 1
    mant_max = 2 ** (mant_bits + 1) - 1          # (2 - 2^-m) * 2^m
    shift_max = 2 * (2 ** exp_bits - 1)
    worst = accum_length * mant_max * mant_max * (2 ** shift_max)
    return math.ceil(math.log2(worst + 1)) + 1  # +1 sign


def format_summary(quantizer: Quantizer, **params) -> Dict[str, float]:
    """One row of the CLI's format table: range and precision figures."""
    return {
        "codepoints": len(np.unique(quantizer.codepoints(**params))),
        "dynamic_range_db": dynamic_range_db(quantizer, **params),
        "decades": decades_covered(quantizer, **params),
        "worst_rel_error": worst_case_relative_error(quantizer, **params),
    }
