"""Block floating-point (BFP) quantizer (paper baseline, cf. Flexpoint).

A block of values shares one exponent — that of the block's largest
magnitude — and each element keeps an *n*-bit signed mantissa on the
fixed-point grid ``2**(shared_exp - (n - 2))``.  Elements much smaller
than the block maximum lose mantissa bits one-for-one, which is exactly
the failure mode the paper contrasts AdaptivFloat against (Section 2:
"elements with smaller magnitudes will be more prone to data loss").

The default block is the whole tensor (per-layer shared exponent, the
self-adaptive configuration evaluated in the paper).  A finite
``block_size`` groups the flattened tensor into chunks for the block-size
ablation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from .base import AdaptiveQuantizer, RoundMode, ulp_round

__all__ = ["BlockFloat"]

#: Floor for the fitted shared exponent.  Below roughly 2**-1000 the
#: mantissa quantum ``2**(shared_exp - (n - 2))`` underflows float64 to
#: zero and the grid division turns 0/0 -> NaN.  Clamping only affects
#: tensors whose max |value| is below ~1e-301 (cf. the identical
#: ``_MIN_EXP_BIAS`` guard in :mod:`repro.formats.adaptivfloat`).
_MIN_SHARED_EXP = -1000


class BlockFloat(AdaptiveQuantizer):
    """``n``-bit block floating point with a shared per-block exponent."""

    name = "bfp"

    def __init__(self, bits: int, block_size: Optional[int] = None,
                 round_mode: str = RoundMode.NEAREST_EVEN,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(bits)
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if round_mode not in RoundMode.ALL:
            raise ValueError(f"unknown round mode {round_mode!r}")
        self.block_size = block_size
        self.round_mode = round_mode
        self._rng = rng

    # ----------------------------------------------------------- structure
    @property
    def mant_max(self) -> int:
        """Largest signed mantissa magnitude (symmetric clamp)."""
        return 2 ** (self.bits - 1) - 1

    def _quantum(self, shared_exp: np.ndarray) -> np.ndarray:
        return np.exp2(np.asarray(shared_exp, dtype=np.float64) - (self.bits - 2))

    @staticmethod
    def _shared_exp(max_abs: np.ndarray) -> np.ndarray:
        safe = np.where(max_abs > 0.0, max_abs, 1.0)
        _, e = np.frexp(safe)
        return np.where(max_abs > 0.0, np.maximum(e - 1, _MIN_SHARED_EXP), 0)

    # ------------------------------------------------------------- fitting
    def fit(self, x: np.ndarray) -> Dict[str, Any]:
        x = np.asarray(x, dtype=np.float64)
        if self.block_size is None:
            # abs-max via two reductions: no |x| temporary.
            max_abs = max(float(x.max()), float(-x.min()), 0.0) if x.size else 0.0
            if not np.isfinite(max_abs):
                # Fit the shared exponent on the finite mass only;
                # quantize saturates the non-finite magnitudes to the
                # extreme mantissa instead of exploding the grid.
                finite = x[np.isfinite(x)]
                max_abs = float(np.abs(finite).max()) if finite.size else 0.0
            return {"shared_exp": int(self._shared_exp(np.asarray(max_abs)))}
        a = np.abs(x)
        if not np.isfinite(a).all():
            a = np.where(np.isfinite(a), a, 0.0)
        blocks = self._to_blocks(a)
        return {"shared_exp": self._shared_exp(blocks.max(axis=1)).astype(np.int64)}

    def _codebook_key(self, params):
        if self.block_size is not None:
            return None  # per-block shared exponents are vector params
        return super()._codebook_key(params)

    def _affine_grid(self, params):
        if self.block_size is not None or params is None:
            return None
        shared_exp = params.get("shared_exp")
        if not isinstance(shared_exp, (int, np.integer)):
            return None
        from .kernels import AffineGrid
        step = 2.0 ** (int(shared_exp) - (self.bits - 2))
        return AffineGrid(step=step, lo_level=-self.mant_max,
                          hi_level=self.mant_max)

    # ---------------------------------------------------------- quantizing
    def _quantize_with_params_analytic(self, x: np.ndarray,
                                       params: Dict[str, Any]) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        shared_exp = params["shared_exp"]
        if self.block_size is None:
            return self._quantize_flat(x, np.asarray(shared_exp))
        blocks = self._to_blocks(x)
        exp = np.asarray(shared_exp).reshape(-1, 1)
        out = self._quantize_flat(blocks, exp)
        return out.ravel()[: x.size].reshape(x.shape)

    def _quantize_flat(self, x: np.ndarray, shared_exp: np.ndarray) -> np.ndarray:
        quantum = self._quantum(shared_exp)
        # Value-domain pre-clamp: +/-Inf saturates to the extreme mantissa
        # before the division ever sees it (NaN propagates through clip).
        top = self.mant_max * quantum
        mant = ulp_round(np.clip(x, -top, top) / quantum,
                         self.round_mode, self._rng)
        mant = np.clip(mant, -self.mant_max, self.mant_max)
        return mant * quantum

    def _to_blocks(self, x: np.ndarray) -> np.ndarray:
        flat = np.ravel(x)
        size = int(self.block_size)
        pad = (-flat.size) % size
        if pad:
            flat = np.concatenate([flat, np.zeros(pad, dtype=flat.dtype)])
        return flat.reshape(-1, size)

    # ---------------------------------------------------------- bit codec
    def bit_fields(self):
        # Two's-complement mantissa; the shared exponent lives in a
        # separate per-tensor register (attacked via the register field).
        return ("sign",) + ("mantissa",) * (self.bits - 1)

    def encode(self, values: np.ndarray, shared_exp: int) -> np.ndarray:
        """Encode already-quantized ``values`` into two's-complement words.

        Only the per-tensor configuration (scalar ``shared_exp``) has a
        bit codec; per-block vectors carry one register per block and are
        out of scope here.
        """
        if self.block_size is not None:
            raise NotImplementedError(
                "bit codec requires per-tensor shared exponents")
        v = np.asarray(values, dtype=np.float64)
        if not np.isfinite(v).all():
            raise ValueError("only finite quantized values are encodable")
        quantum = float(self._quantum(np.asarray(float(int(shared_exp)))))
        mant = np.rint(v / quantum).astype(np.int64)
        if not np.array_equal(mant.astype(np.float64) * quantum, v):
            raise ValueError("value not on the block floating-point grid")
        if np.any(np.abs(mant) > self.mant_max):
            raise ValueError("mantissa outside the symmetric range")
        return (mant & np.int64(2 ** self.bits - 1)).astype(np.uint32)

    def decode(self, words: np.ndarray, shared_exp: int) -> np.ndarray:
        """Decode two's-complement mantissa words (total function)."""
        w = (np.asarray(words, dtype=np.int64)
             & np.int64(2 ** self.bits - 1))
        mant = np.where(w >= 2 ** (self.bits - 1), w - 2 ** self.bits, w)
        quantum = float(self._quantum(np.asarray(float(int(shared_exp)))))
        return mant.astype(np.float64) * quantum

    # -------------------------------------------------------- enumeration
    def codepoints(self, shared_exp: int = 0) -> np.ndarray:
        quantum = float(self._quantum(np.asarray(float(shared_exp))))
        mants = np.arange(-self.mant_max, self.mant_max + 1, dtype=np.float64)
        return mants * quantum

    def spec(self) -> Dict[str, Any]:
        spec = super().spec()
        spec.update(block_size=self.block_size)
        return spec
