"""Non-adaptive IEEE-like float quantizer (paper baseline "Float").

``FloatIEEE<n, e>`` follows the IEEE 754 layout — sign, ``e`` exponent
bits with the standard bias ``2**(e-1) - 1``, ``m = n - e - 1`` mantissa
bits — but, being a quantization grid rather than an arithmetic type, it
has no Inf/NaN codepoints: the top exponent is an ordinary binade and
out-of-range magnitudes saturate to the largest finite value.  Subnormals
are kept, which is what gives the format its zero representation and its
(fixed) tiny-value resolution.

Unlike AdaptivFloat the exponent range never moves; this is the paper's
non-adaptive float baseline whose dynamic range is whatever the IEEE bias
dictates.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from .base import Quantizer, RoundMode, ulp_round

__all__ = ["FloatIEEE"]


class FloatIEEE(Quantizer):
    """IEEE-like ``<n, e>`` float grid with subnormals and saturation."""

    name = "float"

    def __init__(self, bits: int, exp_bits: int = 4,
                 round_mode: str = RoundMode.NEAREST_EVEN,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(bits)
        if exp_bits < 1:
            raise ValueError(f"need at least 1 exponent bit, got {exp_bits}")
        if bits - exp_bits - 1 < 0:
            raise ValueError(f"Float<{bits},{exp_bits}> leaves no room for the sign bit")
        if round_mode not in RoundMode.ALL:
            raise ValueError(f"unknown round mode {round_mode!r}")
        self.exp_bits = int(exp_bits)
        self.mant_bits = int(bits - exp_bits - 1)
        self.round_mode = round_mode
        self._rng = rng

    # ----------------------------------------------------------- structure
    @property
    def exp_bias(self) -> int:
        """The fixed IEEE exponent bias ``2**(e-1) - 1``."""
        return 2 ** (self.exp_bits - 1) - 1

    @property
    def min_normal_exp(self) -> int:
        """Exponent of the smallest normal binade (stored exponent 1)."""
        return 1 - self.exp_bias

    @property
    def max_exp(self) -> int:
        """Exponent of the largest binade (stored exponent all-ones)."""
        return (2 ** self.exp_bits - 1) - self.exp_bias

    @property
    def value_max(self) -> float:
        return 2.0 ** self.max_exp * (2.0 - 2.0 ** (-self.mant_bits))

    # ---------------------------------------------------------- quantizing
    def _quantize_analytic(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        sign = np.sign(x)
        a = np.minimum(np.abs(x), self.value_max)

        safe = np.where(a > 0.0, a, 1.0)
        _, e = np.frexp(safe)
        exp = e - 1
        # Subnormal region shares the smallest normal binade's quantum.
        exp = np.maximum(exp, self.min_normal_exp)
        quantum = np.exp2(exp.astype(np.float64) - self.mant_bits)
        q = ulp_round(a / quantum, self.round_mode, self._rng) * quantum
        return sign * np.where(a > 0.0, q, 0.0)

    # -------------------------------------------------------- enumeration
    def codepoints(self) -> np.ndarray:
        ulp = 2.0 ** (-self.mant_bits)
        sub = np.arange(2 ** self.mant_bits, dtype=np.float64) \
            * ulp * 2.0 ** self.min_normal_exp
        mants = 1.0 + np.arange(2 ** self.mant_bits, dtype=np.float64) * ulp
        exps = np.arange(self.min_normal_exp, self.max_exp + 1, dtype=np.float64)
        normals = (np.exp2(exps)[:, None] * mants[None, :]).ravel()
        mags = np.concatenate([sub[1:], normals])
        return np.sort(np.concatenate([-mags, [0.0], mags]))

    def spec(self) -> Dict[str, Any]:
        spec = super().spec()
        spec.update(exp_bits=self.exp_bits, mant_bits=self.mant_bits)
        return spec
