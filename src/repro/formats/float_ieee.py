"""Non-adaptive IEEE-like float quantizer (paper baseline "Float").

``FloatIEEE<n, e>`` follows the IEEE 754 layout — sign, ``e`` exponent
bits with the standard bias ``2**(e-1) - 1``, ``m = n - e - 1`` mantissa
bits — but, being a quantization grid rather than an arithmetic type, it
has no Inf/NaN codepoints: the top exponent is an ordinary binade and
out-of-range magnitudes saturate to the largest finite value.  Subnormals
are kept, which is what gives the format its zero representation and its
(fixed) tiny-value resolution.

Unlike AdaptivFloat the exponent range never moves; this is the paper's
non-adaptive float baseline whose dynamic range is whatever the IEEE bias
dictates.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from .base import Quantizer, RoundMode, ulp_round

__all__ = ["FloatIEEE"]


class FloatIEEE(Quantizer):
    """IEEE-like ``<n, e>`` float grid with subnormals and saturation."""

    name = "float"

    def __init__(self, bits: int, exp_bits: int = 4,
                 round_mode: str = RoundMode.NEAREST_EVEN,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(bits)
        if exp_bits < 1:
            raise ValueError(f"need at least 1 exponent bit, got {exp_bits}")
        if bits - exp_bits - 1 < 0:
            raise ValueError(f"Float<{bits},{exp_bits}> leaves no room for the sign bit")
        if round_mode not in RoundMode.ALL:
            raise ValueError(f"unknown round mode {round_mode!r}")
        self.exp_bits = int(exp_bits)
        self.mant_bits = int(bits - exp_bits - 1)
        self.round_mode = round_mode
        self._rng = rng

    # ----------------------------------------------------------- structure
    @property
    def exp_bias(self) -> int:
        """The fixed IEEE exponent bias ``2**(e-1) - 1``."""
        return 2 ** (self.exp_bits - 1) - 1

    @property
    def min_normal_exp(self) -> int:
        """Exponent of the smallest normal binade (stored exponent 1)."""
        return 1 - self.exp_bias

    @property
    def max_exp(self) -> int:
        """Exponent of the largest binade (stored exponent all-ones)."""
        return (2 ** self.exp_bits - 1) - self.exp_bias

    @property
    def value_max(self) -> float:
        return 2.0 ** self.max_exp * (2.0 - 2.0 ** (-self.mant_bits))

    # ---------------------------------------------------------- quantizing
    def _quantize_analytic(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        sign = np.sign(x)
        a = np.minimum(np.abs(x), self.value_max)

        safe = np.where(a > 0.0, a, 1.0)
        _, e = np.frexp(safe)
        exp = e - 1
        # Subnormal region shares the smallest normal binade's quantum.
        exp = np.maximum(exp, self.min_normal_exp)
        quantum = np.exp2(exp.astype(np.float64) - self.mant_bits)
        q = ulp_round(a / quantum, self.round_mode, self._rng) * quantum
        return sign * np.where(a > 0.0, q, 0.0)

    # ---------------------------------------------------------- bit codec
    def bit_fields(self):
        return (("sign",) + ("exponent",) * self.exp_bits
                + ("mantissa",) * self.mant_bits)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode already-quantized ``values`` into raw bit words (uint32).

        IEEE layout, MSB to LSB: sign | exponent (``e`` bits, bias
        ``2**(e-1) - 1``, stored 0 = subnormal) | mantissa (``m`` bits).
        """
        v = np.asarray(values, dtype=np.float64)
        if not np.isfinite(v).all():
            raise ValueError("only finite quantized values are encodable")
        sign = np.signbit(v).astype(np.uint32)
        a = np.abs(v)
        is_sub = a < 2.0 ** self.min_normal_exp
        sub_quantum = 2.0 ** (self.min_normal_exp - self.mant_bits)
        sub_steps = np.where(is_sub, a / sub_quantum, 0.0)
        sub_code = np.rint(sub_steps).astype(np.int64)
        safe = np.where(is_sub, 1.0, a)
        _, e = np.frexp(safe)
        exp = e - 1
        stored_exp = exp.astype(np.int64) + self.exp_bias
        mant = safe / np.exp2(exp.astype(np.float64))
        mant_steps = (mant - 1.0) * 2.0 ** self.mant_bits
        mant_code = np.rint(mant_steps).astype(np.int64)
        if np.any(is_sub & (np.abs(sub_steps - sub_code) > 1e-9)):
            raise ValueError("value not on the subnormal grid")
        if np.any(~is_sub & ((stored_exp < 1)
                             | (stored_exp >= 2 ** self.exp_bits))):
            raise ValueError("value outside the representable exponent range")
        if np.any(~is_sub & (np.abs(mant_steps - mant_code) > 1e-9)):
            raise ValueError("value not on the mantissa grid")
        body = np.where(is_sub, sub_code,
                        (stored_exp << self.mant_bits) | mant_code)
        return ((sign << np.uint32(self.bits - 1))
                | body.astype(np.uint32)).astype(np.uint32)

    def decode(self, words: np.ndarray) -> np.ndarray:
        """Decode raw bit words back to float values (total function).

        Every ``n``-bit word decodes to a finite value: the grid has no
        Inf/NaN codepoints, so the all-ones exponent is an ordinary
        binade — the format's saturation behaviour under bit flips.
        """
        w = np.asarray(words, dtype=np.uint32) & np.uint32(2 ** self.bits - 1)
        sign = np.where((w >> np.uint32(self.bits - 1)) & np.uint32(1),
                        -1.0, 1.0)
        stored_exp = ((w >> np.uint32(self.mant_bits))
                      & np.uint32(2 ** self.exp_bits - 1)).astype(np.int64)
        mant_code = (w & np.uint32(2 ** self.mant_bits - 1)).astype(np.float64)
        is_sub = stored_exp == 0
        exp = np.where(is_sub, self.min_normal_exp, stored_exp - self.exp_bias)
        mant = np.where(is_sub, 0.0, 1.0) + mant_code * 2.0 ** (-self.mant_bits)
        return sign * np.exp2(exp.astype(np.float64)) * mant

    # -------------------------------------------------------- enumeration
    def codepoints(self) -> np.ndarray:
        ulp = 2.0 ** (-self.mant_bits)
        sub = np.arange(2 ** self.mant_bits, dtype=np.float64) \
            * ulp * 2.0 ** self.min_normal_exp
        mants = 1.0 + np.arange(2 ** self.mant_bits, dtype=np.float64) * ulp
        exps = np.arange(self.min_normal_exp, self.max_exp + 1, dtype=np.float64)
        normals = (np.exp2(exps)[:, None] * mants[None, :]).ravel()
        mags = np.concatenate([sub[1:], normals])
        return np.sort(np.concatenate([-mags, [0.0], mags]))

    def spec(self) -> Dict[str, Any]:
        spec = super().spec()
        spec.update(exp_bits=self.exp_bits, mant_bits=self.mant_bits)
        return spec
