"""Bit-packing of quantized tensors into real bitstreams.

The accuracy experiments only need the dequantized float view of a
tensor, but the hardware story rests on the claim that an ``n``-bit
format really stores ``n`` bits per element.  This module packs arrays
of ``n``-bit words (as produced by ``AdaptivFloat.encode``, or integer
levels from the uniform/BFP formats) into a contiguous ``uint8`` buffer,
MSB-first, and unpacks them again — the storage layout a weight buffer
in the PE would hold.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_words", "unpack_words", "packed_nbytes"]


def packed_nbytes(count: int, bits: int) -> int:
    """Bytes needed to store ``count`` words of ``bits`` bits each."""
    return (count * bits + 7) // 8


def pack_words(words: np.ndarray, bits: int) -> bytes:
    """Pack unsigned ``bits``-wide words into a MSB-first byte string."""
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    w = np.asarray(words, dtype=np.uint64).ravel()
    if np.any(w >= (1 << bits)):
        raise ValueError(f"word does not fit in {bits} bits")
    # Expand each word into its bits (MSB first), then pack.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    bit_matrix = ((w[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel()).tobytes()


def unpack_words(buffer: bytes, bits: int, count: int) -> np.ndarray:
    """Unpack ``count`` ``bits``-wide words from a MSB-first byte string."""
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    needed = packed_nbytes(count, bits)
    if len(buffer) < needed:
        raise ValueError(f"buffer too short: need {needed} bytes, got {len(buffer)}")
    flat = np.unpackbits(np.frombuffer(buffer, dtype=np.uint8),
                         count=count * bits).reshape(count, bits)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    return (flat.astype(np.uint64) << shifts[None, :]).sum(axis=1).astype(np.uint32)
