"""Bit-packing of quantized tensors into real bitstreams.

The accuracy experiments only need the dequantized float view of a
tensor, but the hardware story rests on the claim that an ``n``-bit
format really stores ``n`` bits per element.  This module packs arrays
of ``n``-bit words (as produced by ``AdaptivFloat.encode``, or integer
levels from the uniform/BFP formats) into a contiguous ``uint8`` buffer,
MSB-first, and unpacks them again — the storage layout a weight buffer
in the PE would hold.

Byte-aligned widths (8/16/32) skip the ``bits``-times-larger bit-matrix
intermediate entirely: MSB-first packing of a byte-aligned word is
exactly its big-endian byte representation, so packing is a single dtype
view/cast and unpacking a single ``frombuffer``.

:func:`flip_word_bits` applies bit flips in the *word* domain at the
flat MSB-first offsets of the packed layout — the same fault the packed
stream would suffer, without materializing the stream.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["pack_words", "unpack_words", "packed_nbytes", "flip_word_bits",
           "crc32_stream"]

#: Byte-aligned word widths whose MSB-first packing is plain big-endian.
_ALIGNED_DTYPES = {8: ">u1", 16: ">u2", 32: ">u4"}


def packed_nbytes(count: int, bits: int) -> int:
    """Bytes needed to store ``count`` words of ``bits`` bits each."""
    return (count * bits + 7) // 8


def pack_words(words: np.ndarray, bits: int) -> bytes:
    """Pack unsigned ``bits``-wide words into a MSB-first byte string."""
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    w = np.asarray(words, dtype=np.uint64).ravel()
    if np.any(w >= (1 << bits)):
        raise ValueError(f"word does not fit in {bits} bits")
    aligned = _ALIGNED_DTYPES.get(bits)
    if aligned is not None:
        return w.astype(aligned).tobytes()
    # Expand each word into its bits (MSB first), then pack.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    bit_matrix = ((w[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel()).tobytes()


def unpack_words(buffer: bytes, bits: int, count: int) -> np.ndarray:
    """Unpack ``count`` ``bits``-wide words from a MSB-first byte string."""
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    needed = packed_nbytes(count, bits)
    if len(buffer) < needed:
        raise ValueError(f"buffer too short: need {needed} bytes, got {len(buffer)}")
    aligned = _ALIGNED_DTYPES.get(bits)
    if aligned is not None:
        return np.frombuffer(buffer, dtype=aligned,
                             count=count).astype(np.uint32)
    flat = np.unpackbits(np.frombuffer(buffer, dtype=np.uint8),
                         count=count * bits).reshape(count, bits)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    return (flat.astype(np.uint64) << shifts[None, :]).sum(axis=1).astype(np.uint32)


def crc32_stream(words: np.ndarray, bits: int) -> int:
    """CRC32 of the packed MSB-first byte stream of ``words``.

    The checksum a weight-SRAM scrubber would keep per tensor: computed
    over the *canonical packed layout* (so it is independent of the
    in-memory word dtype/shape) and cheap enough to verify between
    micro-batches.  Returns the unsigned 32-bit CRC.
    """
    return zlib.crc32(pack_words(words, bits)) & 0xFFFFFFFF


def flip_word_bits(words: np.ndarray, bits: int,
                   positions: np.ndarray) -> np.ndarray:
    """XOR bits at flat MSB-first offsets, directly in the word domain.

    Equivalent to packing ``words``, flipping the packed stream at
    ``positions``, and unpacking again: flat offset ``p`` toggles bit
    ``p % bits`` (0 = MSB) of word ``p // bits``.  Repeated offsets
    toggle repeatedly (involution per occurrence).  Returns a new
    ``uint32`` array of the input's shape; offsets outside the stream's
    ``size * bits`` payload bits raise (the packed layout's final pad
    bits hold no word data).
    """
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must be in [1, 32], got {bits}")
    w = np.asarray(words, dtype=np.uint32).ravel().copy()
    pos = np.asarray(positions, dtype=np.int64).ravel()
    if pos.size == 0:
        return w.reshape(np.shape(words))
    if np.any((pos < 0) | (pos >= w.size * bits)):
        raise ValueError("bit position outside the word stream")
    masks = np.uint32(1) << (bits - 1 - (pos % bits)).astype(np.uint32)
    # unbuffered XOR accumulate: repeated offsets toggle repeatedly
    np.bitwise_xor.at(w, pos // bits, masks)
    return w.reshape(np.shape(words))
