"""Logarithmic (power-of-two) quantization (LogNet [19] / [12]).

The paper's introduction cites logarithmic number systems as one of the
float-inspired families motivating AdaptivFloat.  This extension format
represents values as ``sign * 2**e`` with an integer exponent in an
adaptive window anchored at the tensor maximum — i.e. AdaptivFloat with
zero mantissa bits but a *larger* exponent field.  Hardware-wise a
log-quantized multiply is a shift, which is why it remains attractive;
accuracy-wise its ~2x relative error gap to the next codepoint is the
cost AdaptivFloat's mantissa bits pay down.

``LogQuant<n>`` uses 1 sign bit and ``n-1`` exponent bits; one exponent
code is reserved for zero, mirroring AdaptivFloat's zero trick.
"""

from __future__ import annotations

from typing import Any, Dict, Union

import numpy as np

from .base import AdaptiveQuantizer

__all__ = ["LogQuant"]


class LogQuant(AdaptiveQuantizer):
    """Adaptive power-of-two quantizer."""

    name = "logquant"

    def __init__(self, bits: int) -> None:
        super().__init__(bits)
        self.exp_bits = bits - 1
        # codes 1..2^(n-1)-1 are exponents; code 0 is zero.
        self.exp_levels = 2 ** self.exp_bits - 1

    # ------------------------------------------------------------- fitting
    def fit(self, x: np.ndarray) -> Dict[str, Any]:
        a = np.abs(np.asarray(x, dtype=np.float64))
        max_abs = a.max() if a.size else 0.0
        if max_abs == 0.0:
            return {"exp_max": -self.exp_levels}
        # Round max to the *nearest* power of two (log-domain rounding).
        exp_max = int(np.rint(np.log2(max_abs)))
        return {"exp_max": exp_max}

    # ---------------------------------------------------------- quantizing
    def _quantize_with_params_analytic(self, x: np.ndarray,
                                       params: Dict[str, Any]) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        exp_max = int(params["exp_max"])
        exp_min = exp_max - (self.exp_levels - 1)
        sign = np.sign(x)
        a = np.abs(x)
        safe = np.where(a > 0.0, a, 1.0)
        exp = np.rint(np.log2(safe))
        exp = np.clip(exp, exp_min, exp_max)
        mag = np.exp2(exp)
        # below half the smallest representable magnitude -> zero
        # (the same halfway rule AdaptivFloat uses for its value_min)
        zero_threshold = 2.0 ** exp_min * 0.5
        out = np.where(a < zero_threshold, 0.0, mag)
        return sign * np.where(a > 0.0, out, 0.0)

    # -------------------------------------------------------- enumeration
    def codepoints(self, exp_max: int = 0) -> np.ndarray:
        exps = np.arange(exp_max - (self.exp_levels - 1), exp_max + 1,
                         dtype=np.float64)
        mags = np.exp2(exps)
        return np.sort(np.concatenate([-mags, [0.0], mags]))

    def spec(self) -> Dict[str, Any]:
        spec = super().spec()
        spec.update(exp_bits=self.exp_bits)
        return spec
