"""AdaptivFloat — the paper's adaptive floating-point format (Algorithm 1).

``AdaptivFloat<n, e>`` is an *n*-bit float-like format with ``e`` exponent
bits and ``m = n - e - 1`` mantissa bits whose exponent range is shifted,
per tensor, by an integer ``exp_bias`` derived from the tensor's maximum
absolute value:

    ``exp_max  = floor(log2(max|W|))``
    ``exp_bias = exp_max - (2**e - 1)``

There are no denormals.  The bottom codepoint (exponent bits == 0 and
mantissa bits == 0) is re-purposed as +/-0, sacrificing the +/-minimum
value (paper Fig. 2), so:

    ``value_min = 2**exp_bias * (1 + 2**-m)``
    ``value_max = 2**exp_max  * (2 - 2**-m)``

Quantization (paper Algorithm 1): magnitudes below ``value_min`` round to
0 or ``value_min`` at the halfway threshold, magnitudes above ``value_max``
clamp, and everything else rounds to the nearest point on the mantissa
grid ``2**(exp - m)``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from .base import AdaptiveQuantizer, RoundMode, ulp_round

__all__ = [
    "AdaptivFloat",
    "adaptivfloat_quantize",
    "exponent_bias_for",
]

_BiasLike = Union[int, np.ndarray]

#: Floor for the fitted ``exp_bias``.  Below roughly 2**-1000 the grid
#: arithmetic (``2**exp_bias``, the mantissa quantum) underflows float64
#: and quantization would manufacture Inf/NaN from finite subnormal
#: inputs.  Clamping only affects tensors whose max |value| is below
#: ~1e-301 — far outside any real weight/activation distribution.
_MIN_EXP_BIAS = -1000


def _frexp_exponent(a: np.ndarray) -> np.ndarray:
    """Exact floor(log2(a)) for positive ``a`` via frexp (no log rounding)."""
    _, e = np.frexp(a)
    return e - 1


def exponent_bias_for(x: np.ndarray, exp_bits: int,
                      axis: Optional[int] = None) -> _BiasLike:
    """Derive the AdaptivFloat ``exp_bias`` for tensor ``x``.

    With ``axis=None`` (the paper's per-layer granularity) a scalar bias is
    returned.  With an integer ``axis`` a per-channel bias is computed by
    reducing over all *other* axes (per-channel ablation, DESIGN.md §7).

    An all-zero tensor has no defined exponent; we return the most negative
    bias so that the (empty) grid sits harmlessly below any future data.
    """
    a = np.abs(np.asarray(x, dtype=np.float64))
    if not np.isfinite(a).all():
        # Fit on the finite mass only: a single bit-flipped Inf/NaN must
        # not drag the whole tensor's exponent range with it (quantize
        # saturates the non-finite magnitudes to value_max instead).
        a = np.where(np.isfinite(a), a, 0.0)
    if axis is None:
        max_abs = a.max() if a.size else 0.0
        if max_abs == 0.0:
            return -(2 ** exp_bits - 1)
        exp_max = int(_frexp_exponent(np.asarray(max_abs)))
        return max(exp_max - (2 ** exp_bits - 1), _MIN_EXP_BIAS)

    reduce_axes = tuple(i for i in range(a.ndim) if i != (axis % a.ndim))
    max_abs = a.max(axis=reduce_axes, keepdims=True)
    exp_max = np.where(max_abs > 0.0, _frexp_exponent(max_abs),
                       -(2 ** exp_bits - 1))
    bias = np.maximum(exp_max - (2 ** exp_bits - 1), _MIN_EXP_BIAS)
    return bias.astype(np.int64)


class AdaptivFloat(AdaptiveQuantizer):
    """``AdaptivFloat<n, e>`` quantizer (paper Section 3, Algorithm 1).

    Parameters
    ----------
    bits:
        Total word size *n* (sign + exponent + mantissa).
    exp_bits:
        Exponent field width *e*.  The paper finds ``e = 3`` the best
        setting across its models (Section 4), so that is the default.
    round_mode:
        Mantissa rounding mode; the hardware-faithful default is
        round-to-nearest-even.
    channel_axis:
        ``None`` for the paper's per-layer granularity, or an axis index
        for the per-channel ablation.
    """

    name = "adaptivfloat"

    def __init__(self, bits: int, exp_bits: int = 3,
                 round_mode: str = RoundMode.NEAREST_EVEN,
                 channel_axis: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(bits)
        if exp_bits < 1:
            raise ValueError(f"need at least 1 exponent bit, got {exp_bits}")
        if bits - exp_bits - 1 < 0:
            raise ValueError(
                f"AdaptivFloat<{bits},{exp_bits}> leaves no room for the sign bit")
        if round_mode not in RoundMode.ALL:
            raise ValueError(f"unknown round mode {round_mode!r}")
        self.exp_bits = int(exp_bits)
        self.mant_bits = int(bits - exp_bits - 1)
        self.round_mode = round_mode
        self.channel_axis = channel_axis
        self._rng = rng

    # ----------------------------------------------------------- structure
    @property
    def exp_levels(self) -> int:
        """Number of distinct stored exponent values (``2**e``)."""
        return 2 ** self.exp_bits

    def range_for_bias(self, exp_bias: _BiasLike) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(value_min, value_max)`` for a given ``exp_bias``."""
        exp_bias = np.asarray(exp_bias, dtype=np.float64)
        exp_max = exp_bias + (self.exp_levels - 1)
        ulp = 2.0 ** (-self.mant_bits)
        value_min = np.exp2(exp_bias) * (1.0 + ulp)
        value_max = np.exp2(exp_max) * (2.0 - ulp)
        return value_min, value_max

    # ------------------------------------------------------------- fitting
    def fit(self, x: np.ndarray) -> Dict[str, Any]:
        return {"exp_bias": exponent_bias_for(x, self.exp_bits, self.channel_axis)}

    # ---------------------------------------------------------- quantizing
    def _quantize_with_params_analytic(self, x: np.ndarray,
                                       params: Dict[str, Any]) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        exp_bias = params["exp_bias"]
        value_min, value_max = self.range_for_bias(exp_bias)

        sign = np.sign(x)
        a = np.abs(x)

        # Clamp overflow first so the grid rounding below never needs an
        # exponent above exp_max (Algorithm 1, "handle unrepresentable").
        a = np.minimum(a, value_max)

        # Round-to-nearest on the mantissa grid 2**(exp - m).  frexp gives
        # the exact exponent; rounding a mantissa up to 2.0 lands exactly on
        # the next binade, which is representable because overflow was
        # clamped above.
        # sub-value_min magnitudes take the `small` branch below; masking
        # them out of the grid math keeps subnormal inputs from driving
        # `quantum` to underflow (0 -> inf/NaN intermediates).
        safe = np.where(a >= value_min, a, 1.0)
        exp = _frexp_exponent(safe)
        quantum = np.exp2(exp.astype(np.float64) - self.mant_bits)
        on_grid = ulp_round(a / quantum, self.round_mode, self._rng) * quantum

        # Below value_min the only codepoints are 0 and +/-value_min
        # (the +/-2**exp_bias slot is the zero encoding): round at the
        # halfway threshold.
        halfway = 0.5 * value_min
        small = np.where(a > halfway, value_min, 0.0)

        out = np.where(a < value_min, small, on_grid)
        return sign * out

    # -------------------------------------------------------- enumeration
    def codepoints(self, exp_bias: int = 0) -> np.ndarray:
        """Every representable value for a scalar ``exp_bias`` (sorted)."""
        exp_bias = int(exp_bias)
        mant_codes = np.arange(2 ** self.mant_bits, dtype=np.float64)
        mantissas = 1.0 + mant_codes * 2.0 ** (-self.mant_bits)
        exps = exp_bias + np.arange(self.exp_levels, dtype=np.float64)
        mags = (np.exp2(exps)[:, None] * mantissas[None, :]).ravel()
        mags = mags[1:]  # drop the (exp=0, mant=0) slot: it encodes zero
        values = np.concatenate([-mags, [0.0], mags])
        return np.sort(values)

    def _codebook_key(self, params):
        if self.channel_axis is not None:
            return None
        return super()._codebook_key(params)

    # ---------------------------------------------------------- bit codec
    def bit_fields(self):
        return (("sign",) + ("exponent",) * self.exp_bits
                + ("mantissa",) * self.mant_bits)

    def encode(self, values: np.ndarray, exp_bias: int) -> np.ndarray:
        """Encode already-quantized ``values`` into raw bit words (uint32).

        Layout (MSB to LSB): sign | exponent (e bits) | mantissa (m bits).
        For n <= 8 bits the hot path is table-driven: the shared codebook
        resolves each magnitude to its codepoint index and a cached
        index->word table supplies the bit pattern; values that fail the
        exact-codepoint check fall back to the analytic encoder, which
        raises the usual errors.
        """
        from . import kernels
        v = np.asarray(values, dtype=np.float64)
        if not np.isfinite(v).all():
            # NaN fails every comparison below and would silently take
            # the zero branch of the analytic encoder.
            raise ValueError("only finite quantized values are encodable")
        if (self.channel_axis is None
                and isinstance(exp_bias, (int, np.integer))
                and self.bits <= kernels.max_table_bits()):
            codebook = kernels.get_codebook(
                self, {"exp_bias": int(exp_bias)})
            if isinstance(codebook, kernels.LutCodebook):
                mag_words, _ = _codec_tables(
                    self.bits, self.exp_bits, int(exp_bias))
                flat = np.ascontiguousarray(v).reshape(-1)
                idx = codebook.magnitude_indices(flat)
                if np.array_equal(codebook.mag_table[idx], np.abs(flat)):
                    word = mag_words[idx]
                    word = word | ((flat < 0).astype(np.uint32)
                                   << np.uint32(self.bits - 1))
                    return word.reshape(v.shape)
                # off-grid values: analytic path raises the right error
        return self._encode_analytic(v, exp_bias)

    def _encode_analytic(self, values: np.ndarray, exp_bias: int) -> np.ndarray:
        """Reference bit encoder (exact field extraction + validation)."""
        v = np.asarray(values, dtype=np.float64)
        sign = (v < 0).astype(np.uint32)
        a = np.abs(v)
        nonzero = a > 0.0
        safe = np.where(nonzero, a, 1.0)
        exp = _frexp_exponent(safe)
        stored_exp = exp - int(exp_bias)
        mant = safe / np.exp2(exp.astype(np.float64))
        mant_steps = (mant - 1.0) * 2.0 ** self.mant_bits
        mant_code = np.rint(mant_steps).astype(np.int64)
        if np.any(nonzero & ((stored_exp < 0) | (stored_exp >= self.exp_levels))):
            raise ValueError("value outside the representable exponent range")
        off_grid = np.abs(mant_steps - mant_code) > 1e-9
        if np.any(nonzero & (off_grid
                             | (mant_code < 0)
                             | (mant_code >= 2 ** self.mant_bits))):
            raise ValueError("value not on the mantissa grid")
        if np.any(nonzero & (stored_exp == 0) & (mant_code == 0)):
            raise ValueError(
                "+/-2**exp_bias is the sacrificed minimum (its codepoint "
                "encodes zero) and cannot be represented")
        word = (sign << (self.bits - 1)) \
            | (stored_exp.astype(np.uint32) << self.mant_bits) \
            | mant_code.astype(np.uint32)
        return np.where(nonzero, word, np.uint32(0)).astype(np.uint32)

    def decode(self, words: np.ndarray, exp_bias: int) -> np.ndarray:
        """Decode raw bit words back to float values.

        For n <= 8 bits this is a single gather from a cached
        ``2**n``-entry word->value table.
        """
        from . import kernels
        if (isinstance(exp_bias, (int, np.integer))
                and self.bits <= kernels.max_table_bits()):
            _, decode_lut = _codec_tables(
                self.bits, self.exp_bits, int(exp_bias))
            w = np.asarray(words, dtype=np.uint32)
            return decode_lut[w & np.uint32(2 ** self.bits - 1)]
        return self._decode_analytic(words, exp_bias)

    def _decode_analytic(self, words: np.ndarray, exp_bias: int) -> np.ndarray:
        """Reference bit decoder (exact field extraction)."""
        w = np.asarray(words, dtype=np.uint32)
        mant_mask = np.uint32(2 ** self.mant_bits - 1)
        exp_mask = np.uint32(self.exp_levels - 1)
        sign = np.where((w >> (self.bits - 1)) & np.uint32(1), -1.0, 1.0)
        stored_exp = (w >> self.mant_bits) & exp_mask
        mant_code = w & mant_mask
        is_zero = (stored_exp == 0) & (mant_code == 0)
        mant = 1.0 + mant_code.astype(np.float64) * 2.0 ** (-self.mant_bits)
        mag = np.exp2(stored_exp.astype(np.float64) + int(exp_bias)) * mant
        return np.where(is_zero, 0.0, sign * mag)

    # --------------------------------------------------------------- misc
    def spec(self) -> Dict[str, Any]:
        spec = super().spec()
        spec.update(exp_bits=self.exp_bits, mant_bits=self.mant_bits,
                    round_mode=self.round_mode)
        return spec


@lru_cache(maxsize=64)
def _codec_tables(bits: int, exp_bits: int,
                  exp_bias: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached codec tables for ``AdaptivFloat<bits, exp_bits>`` at a bias.

    Returns ``(mag_words, decode_lut)``: the bit word of every
    non-negative codepoint (aligned with the codebook's magnitude table)
    and the decoded value of every possible ``bits``-wide word.
    """
    fmt = AdaptivFloat(bits, exp_bits)
    table = fmt.codepoints(exp_bias)
    mag_table = table[table.size // 2:]  # 0 and the positive magnitudes
    mag_words = fmt._encode_analytic(mag_table, exp_bias)
    decode_lut = fmt._decode_analytic(
        np.arange(2 ** bits, dtype=np.uint32), exp_bias)
    mag_words.flags.writeable = False
    decode_lut.flags.writeable = False
    return mag_words, decode_lut


def adaptivfloat_quantize(x: np.ndarray, bits: int, exp_bits: int = 3,
                          exp_bias: Optional[int] = None,
                          round_mode: str = RoundMode.NEAREST_EVEN) -> np.ndarray:
    """One-shot functional form of AdaptivFloat quantization.

    When ``exp_bias`` is ``None`` it is derived from ``x`` (self-adaptive,
    the paper's weight path); otherwise the provided bias is used (the
    calibrated activation path).
    """
    quantizer = AdaptivFloat(bits, exp_bits, round_mode=round_mode)
    if exp_bias is None:
        return quantizer.quantize(x)
    return quantizer.quantize_with_params(
        np.asarray(x, dtype=np.float64), {"exp_bias": exp_bias})
