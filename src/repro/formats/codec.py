"""Format-generic bit-codec adapters: parameter dispatch and decode LUTs.

Every registry format exposes a bit-level codec, but the ``encode`` /
``decode`` signatures differ: AdaptivFloat takes its ``exp_bias``, BFP
its ``shared_exp``, uniform its ``scale`` (and optional ``zero_point``),
while IEEE-like float and posit take nothing.  :func:`encode_tensor` and
:func:`decode_tensor` give callers one calling convention keyed on the
format's adaptive-parameter dict — the convention the fault-injection
subsystem (:mod:`repro.resilience`) standardized on.

:func:`decode_lut` materializes the complete word -> value decode table
of a (format, bits, params) combination.  Two properties make this
well-defined:

* every codec's ``decode`` is **total** — all ``2**bits`` words decode
  to a value (possibly NaN/Inf for a corrupted float32 scale register),
  which is exactly the behaviour a datapath reading a flipped word
  exhibits;
* ``decode`` is **elementwise** — decoding a word inside ``arange(2**n)``
  yields bit-identically the same value as decoding it inside any other
  array.

:func:`decode_words` routes through the cached LUT when one exists
(word sizes up to :data:`MAX_DECODE_LUT_BITS`) and falls back to the
format's vectorized ``decode`` otherwise, so callers get the fast path
without caring whether a table fits in memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .. import obs
from .base import Quantizer

__all__ = [
    "MAX_DECODE_LUT_BITS",
    "encode_tensor",
    "decode_tensor",
    "decode_lut",
    "decode_words",
    "decode_lut_cache_stats",
    "clear_decode_lut_cache",
]

#: Largest word size for which a full word -> value decode table is
#: materialized (a 16-bit table is 65536 float64s = 512 KiB; 2**17 and
#: above fall back to vectorized slice decode).
MAX_DECODE_LUT_BITS = 16

#: Bounded LRU over decode tables.  Register-fault sweeps that flip a
#: float32 ``scale`` walk through many parameter values; the bound keeps
#: a pathological sweep from accumulating tables without limit.
_LUT_CACHE_SIZE = 128

_LUT_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
_LUT_HITS = 0
_LUT_MISSES = 0


def encode_tensor(quantizer: Quantizer, values: np.ndarray,
                  params: Optional[Dict[str, Any]]) -> np.ndarray:
    """Dispatch to the format's ``encode`` with its adaptive parameters."""
    params = params or {}
    name = quantizer.name
    if name == "adaptivfloat":
        return quantizer.encode(values, params["exp_bias"])
    if name == "bfp":
        return quantizer.encode(values, params["shared_exp"])
    if name == "uniform":
        return quantizer.encode(values, params["scale"],
                                params.get("zero_point", 0))
    return quantizer.encode(values)


def decode_tensor(quantizer: Quantizer, words: np.ndarray,
                  params: Optional[Dict[str, Any]]) -> np.ndarray:
    """Dispatch to the format's ``decode`` with its adaptive parameters."""
    params = params or {}
    name = quantizer.name
    if name == "adaptivfloat":
        return quantizer.decode(words, params["exp_bias"])
    if name == "bfp":
        return quantizer.decode(words, params["shared_exp"])
    if name == "uniform":
        return quantizer.decode(words, params["scale"],
                                params.get("zero_point", 0))
    return quantizer.decode(words)


def _lut_key(quantizer: Quantizer,
             params: Optional[Dict[str, Any]]) -> Optional[Tuple]:
    """Hashable identity of a (format, bits, params) decode table.

    ``None`` marks the combination ineligible: word sizes above the
    table cap, or non-scalar (per-channel / per-block) parameters whose
    decode is not a single shared table.
    """
    if quantizer.bits > MAX_DECODE_LUT_BITS:
        return None
    normalized = []
    for key in sorted(params or {}):
        value = params[key]
        if isinstance(value, (bool, np.bool_)):
            normalized.append((key, bool(value)))
        elif isinstance(value, (int, np.integer)):
            normalized.append((key, int(value)))
        elif isinstance(value, (float, np.floating)):
            normalized.append((key, float(value)))
        else:
            return None
    spec_items = tuple(sorted(quantizer.spec().items()))
    return (type(quantizer).__name__, spec_items, tuple(normalized))


def decode_lut(quantizer: Quantizer,
               params: Optional[Dict[str, Any]]) -> Optional[np.ndarray]:
    """The cached ``2**bits``-entry word -> value table, or ``None``.

    The returned array is read-only and owned by the cache.  A NaN
    parameter value (a float32 scale register whose exponent was
    poisoned by a flip) never compares equal to itself, so such tables
    always miss; the LRU bound keeps them from accumulating.
    """
    global _LUT_HITS, _LUT_MISSES
    key = _lut_key(quantizer, params)
    if key is None:
        return None
    table = _LUT_CACHE.get(key)
    if table is not None:
        _LUT_CACHE.move_to_end(key)
        _LUT_HITS += 1
        return table
    _LUT_MISSES += 1
    words = np.arange(2 ** quantizer.bits, dtype=np.uint32)
    # A corrupted register (Inf/NaN scale) legitimately decodes to
    # non-finite values; suppress numpy's FP warnings while building.
    with np.errstate(all="ignore"):
        table = np.asarray(decode_tensor(quantizer, words, params),
                           dtype=np.float64)
    table.flags.writeable = False
    _LUT_CACHE[key] = table
    while len(_LUT_CACHE) > _LUT_CACHE_SIZE:
        _LUT_CACHE.popitem(last=False)
    return table


def decode_words(quantizer: Quantizer, words: np.ndarray,
                 params: Optional[Dict[str, Any]]) -> np.ndarray:
    """Decode words through the cached LUT when one exists.

    Bit-identical to :func:`decode_tensor` (the LUT *is* ``decode`` over
    ``arange(2**bits)`` and ``decode`` is elementwise); a single gather
    instead of per-word field extraction.
    """
    table = decode_lut(quantizer, params)
    if table is not None:
        return table[np.asarray(words, dtype=np.uint32)]
    with np.errstate(all="ignore"):
        return decode_tensor(quantizer, words, params)


def decode_lut_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the decode-table cache (for tests)."""
    return {"hits": _LUT_HITS, "misses": _LUT_MISSES,
            "size": len(_LUT_CACHE)}


def clear_decode_lut_cache() -> None:
    """Drop every cached decode table and reset the counters."""
    global _LUT_HITS, _LUT_MISSES
    _LUT_CACHE.clear()
    _LUT_HITS = 0
    _LUT_MISSES = 0


# ------------------------------------------------------------ observability
# Pull collector mirroring the legacy counters into gauges at
# snapshot/render time; the module-global ints stay the source of truth.
_OBS_GAUGE = obs.gauge(
    "repro_decode_lut_cache", "Decode-LUT cache state "
    "(hits/misses/size).", ("stat",))


def _collect_lut_stats(_registry) -> None:
    for stat, value in decode_lut_cache_stats().items():
        _OBS_GAUGE.labels(stat=stat).set(float(value))


obs.register_collector(_collect_lut_stats)
